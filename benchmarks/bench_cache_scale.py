"""Cache at scale: 100k entries, sharded layout, O(shards) index reads.

The sharded cache exists so that million-point sweeps don't drown in
filesystem metadata: entry files fan out under ``<sweep>/<key[:2]>/``
(256 shard directories at most), each shard keeps its own journal, and
index reads fold only the shards a query touches.  This module fills a
sweep with 100k entries through the bulk ``put_many`` path and asserts
the acceptance surface:

* the directory fan-out stays bounded (<= 256 shard dirs, ~400
  entries/shard at 100k — no directory ever holds the whole sweep);
* ``stats()`` (the ``cache info`` read path) answers from the shard
  journals in a bounded wall-clock budget, without opening entry files;
* a warm re-read answers from the fold memo — no journal re-reads;
* resume semantics survive scale: deleting K entry files and re-running
  recomputes exactly those K points, nothing else.

The wall-clock budget is deliberately loose (CI runners are noisy);
the *shape* assertions (fan-out, exact recompute set) are the real
regression net.
"""

from __future__ import annotations

import time

from repro.runner import ResultCache, Sweep, point_key, run_sweep

#: Entry count for the scale smoke.  100k is the ISSUE's acceptance
#: number: big enough that a flat directory or an O(entries) info read
#: would visibly blow the budget, small enough for a CI smoke job.
N_ENTRIES = 100_000

#: Wall-clock budget for one cold ``stats()`` over the full store.
#: Locally this reads ~256 shard journals in well under a second; the
#: budget allows a contended CI runner an order of magnitude of slack.
INFO_BUDGET_S = 10.0


def _fill(cache: ResultCache, n: int = N_ENTRIES) -> list:
    """Bulk-load ``n`` synthetic entries; returns the keys."""
    keys = []
    batch = []
    for i in range(n):
        key = point_key("scale", {"i": i}, code="bench")
        keys.append(key)
        batch.append((key, {"i": i}, {"i": i, "v": i * 3}))
        if len(batch) == 4096:
            cache.put_many("scale", batch, batch=True)
            batch = []
    if batch:
        cache.put_many("scale", batch, batch=True)
    return keys


def test_cache_scale_100k(tmp_path, benchmark):
    cache = ResultCache(tmp_path)
    t0 = time.perf_counter()
    keys = _fill(cache)
    fill_s = time.perf_counter() - t0

    # Bounded fan-out: 2-hex-char shards cap the directory count at 256
    # and spread 100k entries to ~400 per directory.
    shard_dirs = [p for p in (tmp_path / "scale").iterdir() if p.is_dir()]
    assert 0 < len(shard_dirs) <= 256
    per_shard = [len(list(d.glob("*.json"))) for d in shard_dirs]
    assert sum(per_shard) == N_ENTRIES
    assert max(per_shard) < 4 * (N_ENTRIES // len(shard_dirs))

    # Cold info read: O(shards-touched) journal folds, no entry files.
    fresh = ResultCache(tmp_path)
    stats = benchmark.pedantic(
        fresh.stats, rounds=1, iterations=1, warmup_rounds=0
    )
    t0 = time.perf_counter()
    fresh.stats()
    warm_s = time.perf_counter() - t0
    assert stats.entries == N_ENTRIES
    assert dict(stats.shards_per_sweep)["scale"] == len(shard_dirs)
    cold_s = benchmark.stats.stats.min
    assert cold_s < INFO_BUDGET_S, (
        f"cold stats() took {cold_s:.2f}s over {N_ENTRIES} entries "
        f"(budget {INFO_BUDGET_S:g}s) — index read is no longer O(shards)"
    )
    # The memoized re-read must be dramatically cheaper than the fold.
    assert warm_s < max(cold_s, 1e-3), (
        f"warm stats() ({warm_s:.4f}s) not served from the fold memo "
        f"(cold {cold_s:.4f}s)"
    )

    # Bulk read-back: one get_many resolves a full resume wave.
    sample = keys[:: max(1, N_ENTRIES // 500)]
    hits = fresh.get_many("scale", sample)
    assert len(hits) == len(sample)

    benchmark.extra_info["fill_s"] = fill_s
    benchmark.extra_info["entries_per_s"] = N_ENTRIES / fill_s
    benchmark.extra_info["shard_dirs"] = len(shard_dirs)
    benchmark.extra_info["warm_stats_s"] = warm_s
    print(
        f"\ncache scale: {N_ENTRIES:,} entries in {fill_s:.1f}s "
        f"({N_ENTRIES / fill_s:,.0f} entries/s) across "
        f"{len(shard_dirs)} shards; cold stats {cold_s * 1e3:.0f} ms, "
        f"warm {warm_s * 1e6:.0f} us"
    )


def _cheap_point(params: dict) -> dict:
    return {"x": params["x"], "y": params["x"] * 2}


def test_resume_recomputes_exactly_deleted(tmp_path):
    """Resume at (reduced) scale: drop K entry files from a completed
    sweep and a resumed run recomputes exactly those K points."""
    n, k = 2_000, 7
    sweep = Sweep(
        name="resume-scale",
        run_fn=_cheap_point,
        points=tuple({"x": x} for x in range(n)),
    )
    cache = ResultCache(tmp_path)
    cold = run_sweep(sweep, cache=cache, code="bench")
    assert cold.misses == n

    victims = [o.key for o in cold.outcomes[:: n // k]][:k]
    for key in victims:
        cache.path_for(sweep.name, key).unlink()

    resumed = run_sweep(
        sweep, cache=ResultCache(tmp_path), code="bench", resume=True
    )
    assert resumed.misses == len(victims)
    assert resumed.hits == n - len(victims)
    assert resumed.rows == cold.rows
