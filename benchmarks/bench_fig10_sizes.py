"""Figure 10 — the seven algorithms on the three Section 8.3 workloads."""

from conftest import at_paper_scale, one_shot

from repro.analysis import format_table
from repro.experiments import fig10


def test_fig10_full_scale(benchmark):
    rows = one_shot(benchmark, fig10.run, scale=1)
    print()
    print(format_table(rows, title="Figure 10: makespans on the UT cluster"))
    assert len(rows) == 21
    if not at_paper_scale():
        return  # the Section 8.4 claims below hold at publication scale
    by_workload: dict = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["algorithm"]] = row
    for workload, algos in by_workload.items():
        # Optimized layout beats Toledo's layout (the paper's headline).
        for name in ("HoLM", "ORROML", "ODDOML", "DDOML"):
            assert algos[name]["makespan_s"] < algos["BMM"]["makespan_s"], workload
        # OMMOML is the laggard of the optimized-layout group.
        assert algos["OMMOML"]["makespan_s"] > algos["HoLM"]["makespan_s"]
        # HoLM keeps up while enrolling only 4 of 8 workers.
        assert algos["HoLM"]["workers"] == 4
        assert algos["ORROML"]["workers"] == 8
        assert (
            algos["HoLM"]["makespan_s"]
            <= algos["ORROML"]["makespan_s"] * 1.06
        )
