"""Figure 10 — the seven algorithms on the three Section 8.3 workloads."""

import time

import conftest
import pytest
from conftest import at_paper_scale, one_shot

from repro.analysis import format_table
from repro.engine import run_scheduler
from repro.experiments import fig10
from repro.platform import ut_cluster_platform
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
from repro.workloads import fig10_workloads


def test_fig10_full_scale(benchmark):
    rows = one_shot(benchmark, fig10.run, scale=1)
    print()
    print(format_table(rows, title="Figure 10: makespans on the UT cluster"))
    assert len(rows) == 21
    if not at_paper_scale():
        return  # the Section 8.4 claims below hold at publication scale
    by_workload: dict = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["algorithm"]] = row
    for workload, algos in by_workload.items():
        # Optimized layout beats Toledo's layout (the paper's headline).
        for name in ("HoLM", "ORROML", "ODDOML", "DDOML"):
            assert algos[name]["makespan_s"] < algos["BMM"]["makespan_s"], workload
        # OMMOML is the laggard of the optimized-layout group.
        assert algos["OMMOML"]["makespan_s"] > algos["HoLM"]["makespan_s"]
        # HoLM keeps up while enrolling only 4 of 8 workers.
        assert algos["HoLM"]["workers"] == 4
        assert algos["ORROML"]["workers"] == 8
        assert (
            algos["HoLM"]["makespan_s"]
            <= algos["ORROML"]["makespan_s"] * 1.06
        )


def _evaluate_paper_points(engine: str) -> int:
    """Evaluate every Figure 10 (workload, algorithm) pair directly.

    No sweep runner, no cache, no table building — the raw per-point
    engine cost the capacity-planning workflow pays a million times.
    """
    platform = ut_cluster_platform(p=8)
    count = 0
    for workload in fig10_workloads():
        shape = workload.shape(80)
        for name in SECTION8_SCHEDULERS:
            run_scheduler(
                section8_scheduler(name), platform, shape, engine=engine
            )
            count += 1
    return count


def test_fig10_point_throughput(benchmark):
    """Per-point engine throughput on the 21 publication-size points.

    Deliberately ignores ``--scale``: the model-vs-fast throughput gate
    (``check_engine_speedup.py --model-json``) compares engines on the
    paper's own workload, where per-point cost — not fixed overhead —
    dominates.  ``--engine`` is honoured, so one suite run per engine
    produces comparable JSON entries.
    """
    engine = conftest._engine or "fast"
    # Five measured rounds (not the suite's usual single round): the
    # 100x gate divides the two engines' round *minima* — the
    # least-noise estimator, since scheduling jitter only ever adds
    # time — and a min needs a few samples to converge.  Even under
    # the DES this stays a few seconds.
    count = benchmark.pedantic(
        _evaluate_paper_points, args=(engine,),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert count == 21


def _bandwidth_axis_points(group: int) -> list:
    """A fig10 point-group the batch layer can fully vectorize: one
    (workload, algorithm) pair crossed with ``group`` nearby link-speed
    scalings (the ``sweep(bandwidth_scales=...)`` axis shape)."""
    workload = fig10_workloads()[0]
    return [
        {
            "workload": workload.name,
            "n_a": workload.n_a,
            "n_ab": workload.n_ab,
            "n_b": workload.n_b,
            "algorithm": "HoLM",
            "p": 8,
            "memory_mb": 512.0,
            "q": 80,
            "bandwidth_scale": 1.0 + 0.002 * i,
        }
        for i in range(group)
    ]


def test_fig10_batch_point_throughput(benchmark):
    """Batched fig10 evaluation is >=5x the scalar fast path.

    This is the experiment-level counterpart of bench_batch.py's
    engine-level gate: the same 64-point bandwidth axis, but evaluated
    through ``fig10._batch_points`` — platform rebuild, trace
    summarisation and row formatting included — exactly what
    ``run_sweep(..., batch=True)`` hands a backend.  Paper scale only
    (see ``test_fig10_point_throughput``); fast engine only.
    """
    if conftest._engine not in (None, "fast"):
        pytest.skip("batched evaluation is a fast-engine path")
    points = _bandwidth_axis_points(64)

    def scalar() -> list:
        return [fig10._point(p) for p in points]

    def best_of(fn, rounds: int = 3) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar_s = best_of(scalar)
    batch_s = best_of(lambda: fig10._batch_points(points))
    rows = benchmark.pedantic(
        fig10._batch_points, args=(points,),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert rows == scalar()  # byte-identical tables, measured path

    speedup = scalar_s / batch_s
    benchmark.extra_info["scalar_points_per_s"] = len(points) / scalar_s
    benchmark.extra_info["batch_points_per_s"] = len(points) / batch_s
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nfig10 batch throughput: {len(points) / batch_s:,.0f} points/s "
        f"vs {len(points) / scalar_s:,.0f} scalar ({speedup:.2f}x)"
    )
    assert speedup >= 5.0, (
        f"fig10 batched throughput only {speedup:.2f}x scalar (gate 5x)"
    )
