"""Benchmark regression ledger: trimmed history + >20% slowdown gate.

``check_engine_speedup.py`` gates *ratios within one run* (fast vs DES,
model vs fast) and is immune to machine speed.  This script gates
*absolute drift across runs*: every CI run appends one trimmed record
per gate benchmark to ``benchmarks/history/ledger.jsonl`` (committed,
so the history travels with the repo), and the ``check`` subcommand
fails when a gate is more than ``--tolerance`` (default 20%) slower
than the median of its recent ledger baseline.

Records carry a ``runner`` label and ``check`` only compares
like-with-like: CI runs label themselves ``--runner github-ci`` and are
never judged against the (differently-provisioned) machine that seeded
the ledger.  A gate with no same-runner baseline passes with a note —
the first run on a new runner class *is* the baseline.

Usage::

    python benchmarks/check_regression.py check  BENCH.json [--runner L]
        [--tolerance 0.20] [--window 10] [--ledger PATH]
    python benchmarks/check_regression.py append BENCH.json [--runner L]
        [--commit SHA] [--ledger PATH]

Both subcommands silently skip gates absent from ``BENCH.json`` (the
DES/model suite runs skip the batch benchmarks, and bench_serve runs in
a separate job), so any gate subset can be checked or appended.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Gate benchmark -> pytest-benchmark stat to track.  Means for the
#: single-round full-scale run; round minima for throughput gates
#: (timing noise is strictly additive, so the min is the least-noise
#: estimator of true cost).
GATES = {
    # engine tower (bench_fig10_sizes.py, bench_batch.py)
    "test_fig10_full_scale": "mean",
    "test_fig10_point_throughput": "min",
    "test_fig10_batch_point_throughput": "min",
    "test_batch_point_throughput": "min",
    "test_model_batch_point_throughput": "min",
    # sharded cache (bench_cache_scale.py): the single recorded round
    # is the cold stats() fold over 100k entries / 256 shard journals.
    "test_cache_scale_100k": "min",
    # runner backends (bench_runner.py).  The warm-campaign, retry-
    # overhead and serve-budget gates time themselves in-test (no
    # fixture record lands in the JSON) and enforce their ratios by
    # assertion, so the ledger tracks the recorded backend sweeps.
    "test_backend_serial": "min",
    "test_backend_process": "min",
    "test_backend_persistent": "min",
}

DEFAULT_LEDGER = Path(__file__).parent / "history" / "ledger.jsonl"


def _gate_seconds(bench_json: str) -> dict:
    """Extract {gate name: seconds} for every gate present in the file."""
    with open(bench_json) as fh:
        data = json.load(fh)
    found = {}
    for bench in data.get("benchmarks", []):
        stat = GATES.get(bench["name"])
        if stat is not None:
            found[bench["name"]] = float(bench["stats"][stat])
    return found


def _load_ledger(path: Path) -> list:
    if not path.exists():
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _append(args: argparse.Namespace) -> int:
    with open(args.bench_json) as fh:
        data = json.load(fh)
    gates = _gate_seconds(args.bench_json)
    if not gates:
        print(f"{args.bench_json}: no gate benchmarks found; nothing to append")
        return 0
    commit = args.commit or (data.get("commit_info") or {}).get("id") or "unknown"
    record = {
        "recorded": data.get("datetime"),
        "commit": commit,
        "runner": args.runner,
        "machine": (data.get("machine_info") or {}).get("node"),
        "gates": gates,
    }
    ledger = Path(args.ledger)
    ledger.parent.mkdir(parents=True, exist_ok=True)
    with open(ledger, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {len(gates)} gate(s) for {commit[:12]} to {ledger}")
    return 0


def _check(args: argparse.Namespace) -> int:
    current = _gate_seconds(args.bench_json)
    if not current:
        print(f"{args.bench_json}: no gate benchmarks found; nothing to check")
        return 0
    history = [
        r for r in _load_ledger(Path(args.ledger))
        if r.get("runner") == args.runner
    ]
    failures = 0
    for name, seconds in sorted(current.items()):
        baseline_values = [
            r["gates"][name] for r in history if name in r.get("gates", {})
        ][-args.window:]
        if not baseline_values:
            print(
                f"{name}: {seconds * 1000:.1f} ms — no {args.runner!r} "
                f"baseline in ledger, skipping (this run seeds it)"
            )
            continue
        baseline = statistics.median(baseline_values)
        limit = baseline * (1.0 + args.tolerance)
        verdict = "OK" if seconds <= limit else "FAIL"
        print(
            f"{name}: {seconds * 1000:.1f} ms vs baseline median "
            f"{baseline * 1000:.1f} ms over {len(baseline_values)} run(s) "
            f"(limit {limit * 1000:.1f} ms) {verdict}"
        )
        if seconds > limit:
            failures += 1
    if failures:
        print(
            f"FAIL: {failures} gate(s) regressed more than "
            f"{args.tolerance:.0%} vs the ledger baseline"
        )
        return 1
    print("OK")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (("check", _check), ("append", _append)):
        p = sub.add_parser(name)
        p.add_argument("bench_json", help="pytest-benchmark JSON file")
        p.add_argument(
            "--ledger", default=str(DEFAULT_LEDGER),
            help="ledger path (default benchmarks/history/ledger.jsonl)",
        )
        p.add_argument(
            "--runner", default="local",
            help="runner-class label; check compares only same-label records",
        )
        p.set_defaults(fn=fn)
    sub.choices["check"].add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed slowdown vs the baseline median (default 0.20)",
    )
    sub.choices["check"].add_argument(
        "--window", type=int, default=10,
        help="number of most-recent baseline records to median (default 10)",
    )
    sub.choices["append"].add_argument(
        "--commit", default=None,
        help="commit id to record (default: the JSON's commit_info)",
    )
    args = parser.parse_args(argv[1:])
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
