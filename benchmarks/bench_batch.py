"""Batched fast-engine throughput: ``run_batch`` vs per-point dispatch.

The batched evaluator amortises the fast engine's per-call Python
overhead (scheduler replay, interval bookkeeping, trace assembly)
across a structurally-uniform point group by advancing all group
members through the steady-state recurrence as numpy rows.  This
benchmark measures the points/second of both paths on the sweep shape
the batch layer was built for — one algorithm, one workload, a dense
axis of nearby bandwidth scalings — and enforces the ISSUE's >=5x
throughput gate both locally and in CI.

Like ``test_fig10_point_throughput``, it deliberately ignores
``--scale``: at reduced scale the fixed per-group cost dominates and
the ratio says nothing about the paper-size workloads the gate is
about.  ``--engine des``/``--engine model`` suite runs skip it — the
batched path only exists for the fast engine.
"""

import time

import conftest
import pytest

from repro.engine import BatchItem, BatchTrace, run_batch, run_scheduler
from repro.platform import scaled_bandwidth, ut_cluster_platform
from repro.schedulers import section8_scheduler
from repro.workloads import fig10_workloads

#: Group size for the throughput gate.  The amortisation curve is
#: steep: measured ~1.2x at G=8, ~4.6x at G=32, ~8x at G=64 — so the
#: 5x gate needs the group sizes a real axis sweep produces, not toys.
GROUP = 64

SPEEDUP_GATE = 5.0


def _items(group: int = GROUP) -> list:
    """A structurally-uniform paper-scale group: HoLM on the first
    Section 8.3 workload under ``group`` nearby link-speed scalings."""
    platform = ut_cluster_platform(p=8)
    shape = fig10_workloads()[0].shape(80)
    return [
        BatchItem(
            scheduler=lambda: section8_scheduler("HoLM"),
            platform=scaled_bandwidth(platform, 1.0 + 0.002 * i),
            shape=shape,
        )
        for i in range(group)
    ]


def _best_of(fn, rounds: int = 3) -> float:
    """Round minimum — scheduling jitter only ever adds time."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_point_throughput(benchmark):
    """>=5x points/second over the scalar fast path (the ISSUE gate)."""
    if conftest._engine not in (None, "fast"):
        pytest.skip("batched evaluation is a fast-engine path")
    items = _items()

    def scalar():
        for item in items:
            run_scheduler(item.scheduler(), item.platform, item.shape)

    scalar_s = _best_of(scalar)
    batch_s = _best_of(lambda: run_batch(items))
    speedup = scalar_s / batch_s

    # Recorded round: the batched path, so the ledger tracks the time
    # the gate's numerator is compared against.
    traces = benchmark.pedantic(
        run_batch, args=(items,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert all(isinstance(t, BatchTrace) for t in traces), (
        "group no longer fully vectorizes — gate is measuring fallback"
    )

    benchmark.extra_info["scalar_points_per_s"] = len(items) / scalar_s
    benchmark.extra_info["batch_points_per_s"] = len(items) / batch_s
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nbatch throughput: {len(items) / batch_s:,.0f} points/s vs "
        f"{len(items) / scalar_s:,.0f} scalar ({speedup:.2f}x, gate "
        f">={SPEEDUP_GATE:g}x)"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched evaluation only {speedup:.2f}x faster than scalar "
        f"(gate {SPEEDUP_GATE:g}x) over {len(items)} uniform points"
    )
