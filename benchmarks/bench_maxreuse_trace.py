"""Figures 5/6 — the maximum re-use layout walk-through (m=21, µ=4)."""

from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import maxreuse_trace


def test_maxreuse_m21(benchmark):
    row = one_shot(benchmark, maxreuse_trace.run, m=21, t=4)
    print()
    print(format_table([row], title="Figures 5/6: maximum re-use on m=21"))
    assert row["mu"] == 4
    assert (row["a_buffers"], row["b_buffers"], row["c_buffers"]) == (1, 4, 16)
    assert row["peak_measured"] == 21
    assert abs(row["ccr"] - row["ccr_formula"]) < 1e-12
