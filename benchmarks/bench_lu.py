"""Section 7 — LU cost model, worker counts, pivot search, numeric LU."""

import numpy as np
from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import lu as lu_exp
from repro.lu import block_lu, verify_lu


def test_lu_cost_model(benchmark):
    rows = one_shot(benchmark, lu_exp.run_costs, mu=8, r_values=(16, 32, 64, 128))
    print()
    print(format_table(rows, title="Section 7.1: LU costs (block units)"))
    for row in rows:
        assert abs(row["comp_exact"] - row["comp_paper"]) < 1e-6
        assert abs(
            (row["comm_exact"] - row["comm_paper"]) - row["comm_panel_terms"]
        ) < 1e-6


def test_lu_homogeneous_selection(benchmark):
    rows = one_shot(benchmark, lu_exp.run_homogeneous, r=196, p=8)
    print()
    print(format_table(rows, title="Section 7.2: homogeneous LU"))
    # Larger pivots need more workers (P = ceil(mu w / 3c)).
    ps = [r["P=ceil(mu*w/3c)"] for r in rows]
    assert ps == sorted(ps)


def test_lu_hetero_policies(benchmark):
    rows = one_shot(benchmark, lu_exp.run_hetero_policies, r=36)
    print()
    print(format_table(rows, title="Section 7.3: heterogeneous LU policies"))
    assert len(rows) == 3


def test_lu_parallel_simulation(benchmark):
    rows = one_shot(benchmark, lu_exp.run_simulation, r=56, p=8)
    print()
    print(format_table(rows, title="Section 7.2: simulated parallel LU"))
    for row in rows:
        # Simulation and estimate agree within the estimate's slack.
        assert abs(row["sim_makespan_s"] - row["estimate_s"]) < 0.4 * row["estimate_s"]


def test_block_lu_numeric(benchmark):
    """Numeric block LU at a realistic panel ratio, verified."""
    rng = np.random.default_rng(0)
    n = 256
    a = rng.uniform(-1, 1, (n, n)) + n * np.eye(n)

    packed = one_shot(benchmark, lambda: block_lu(a.copy(), panel=32))
    assert verify_lu(a, packed)
