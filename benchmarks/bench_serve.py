"""Remote-dispatch overhead — ``repro serve`` vs an in-process pool.

The ``remote`` backend trades one length-prefixed JSON round-trip per
point (plus daemon-side scheduling) for a pool that is *already warm*
when the client starts.  This module measures what that transport
costs once both sides are warm, on the same 6-sweep × 32-point
micro-point campaign as ``bench_runner.py``.

``test_remote_overhead_within_budget`` is the acceptance gate: a warm
remote campaign must stay within **2×** of the warm in-process
persistent backend — the dispatch tax of the daemon hop, not a change
in asymptotics.  Identical result rows are asserted along the way.

Run with ``pytest benchmarks/bench_serve.py -s`` for the numbers.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.runner import Campaign, Sweep, create_backend, run_campaign
from repro.runner.backends.remote import RemoteBackend
from repro.service.client import DaemonUnreachable, ServeClient

N_SWEEPS = 6
N_POINTS = 32
JOBS = 2

REPO = Path(__file__).resolve().parent.parent
#: The daemon must import this module to resolve the point-function
#: token, so its PYTHONPATH carries the benchmarks directory too.
DAEMON_PYTHONPATH = os.pathsep.join(
    [str(REPO / "src"), str(Path(__file__).resolve().parent)]
)


def _micro_point(params: dict) -> dict:
    x = params["x"]
    acc = 0.0
    for i in range(1, 200):
        acc += (x * i) % 7 / i
    return {"x": x, "acc": acc}


def _campaign() -> Campaign:
    return Campaign(
        "bench-serve",
        tuple(
            Sweep(
                name=f"bench-serve-{s}",
                run_fn=_micro_point,
                points=tuple({"s": s, "x": x} for x in range(N_POINTS)),
            )
            for s in range(N_SWEEPS)
        ),
    )


@pytest.fixture(scope="module")
def daemon_socket():
    """A warm ``repro serve`` daemon on a short-path unix socket."""
    # mkdtemp under /tmp keeps the socket path well under the ~108-char
    # AF_UNIX limit regardless of where pytest's tmp roots live.
    workdir = tempfile.mkdtemp(dir="/tmp", prefix="repro-bench-serve-")
    socket_path = os.path.join(workdir, "s.sock")
    env = {**os.environ, "PYTHONPATH": DAEMON_PYTHONPATH}
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--jobs", str(JOBS),
            "--cache-dir", os.path.join(workdir, "cache"), "--quiet",
        ],
        env=env,
    )
    deadline = time.monotonic() + 20.0
    while True:
        try:
            client = ServeClient(socket_path, connect_retries=1)
            client.connect()
            client.close()
            break
        except DaemonUnreachable:
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("serve daemon never came up")
            time.sleep(0.1)
    try:
        yield socket_path
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
        shutil.rmtree(workdir, ignore_errors=True)


def _measure(daemon_socket):
    """Best-of-3 warm campaign per side; returns seconds + results."""
    campaign = _campaign()
    rounds = 3
    warmup = Campaign(
        "warmup",
        (Sweep(name="warmup", run_fn=_micro_point,
               points=({"s": -1, "x": 0},)),),
    )

    persistent_s = float("inf")
    with create_backend("persistent", jobs=JOBS) as backend:
        run_campaign(warmup, jobs=JOBS, backend=backend)
        for _ in range(rounds):
            t0 = time.perf_counter()
            persistent_r = run_campaign(campaign, jobs=JOBS, backend=backend)
            persistent_s = min(persistent_s, time.perf_counter() - t0)

    remote_s = float("inf")
    with RemoteBackend(jobs=JOBS, socket_path=daemon_socket) as backend:
        run_campaign(warmup, jobs=JOBS, backend=backend)
        for _ in range(rounds):
            t0 = time.perf_counter()
            remote_r = run_campaign(campaign, jobs=JOBS, backend=backend)
            remote_s = min(remote_s, time.perf_counter() - t0)

    return persistent_s, remote_s, persistent_r, remote_r


def test_remote_overhead_within_budget(daemon_socket):
    """Acceptance gate: the daemon hop costs ≤ 2× warm in-process
    dispatch on the warm micro-point campaign.

    Retries up to three attempts for the same noisy-runner reasons as
    the bench_runner gates: a descheduled daemon thread can lose one
    tens-of-milliseconds measurement, a real regression loses them all.
    """
    budget = 2.0
    attempts = []
    for _ in range(3):
        persistent_s, remote_s, persistent_r, remote_r = _measure(
            daemon_socket
        )
        assert remote_r.tables == persistent_r.tables
        assert remote_r.errors == 0
        attempts.append((persistent_s, remote_s))
        print(
            f"\nwarm campaign ({N_SWEEPS} sweeps x {N_POINTS} points, "
            f"jobs={JOBS}): persistent {persistent_s * 1e3:.1f} ms, "
            f"remote {remote_s * 1e3:.1f} ms "
            f"({remote_s / persistent_s:.2f}x)"
        )
        if remote_s <= persistent_s * budget:
            return
    raise AssertionError(
        "remote dispatch exceeded its 2x warm-overhead budget on every "
        "attempt: "
        + ", ".join(f"{p * 1e3:.1f}ms vs {r * 1e3:.1f}ms" for p, r in attempts)
    )
