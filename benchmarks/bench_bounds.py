"""Section 4 — CCR of maximum re-use vs the lower bounds."""

import math

from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import bounds


def test_bounds_sweep(benchmark):
    rows = one_shot(benchmark, bounds.run)
    print()
    print(format_table(rows, title="Section 4: CCR vs lower bounds"))
    for row in rows:
        # bound ordering: prev-best < refined Toledo < Loomis-Whitney <= achieved
        assert row["bound_prev_best"] < row["bound_toledo_refined"]
        assert row["bound_toledo_refined"] < row["bound_loomis_whitney"]
        assert row["bound_loomis_whitney"] <= row["ccr_maxreuse_inf"]
        # simulation agrees with the closed form
        assert abs(row["ccr_simulated(t)"] - row["ccr_maxreuse(t)"]) < 1e-9
    # the asymptotic gap approaches sqrt(32/27) ~ 1.089
    assert abs(rows[-1]["gap_vs_LW"] - math.sqrt(32 / 27)) < 0.02
