"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper:
it runs the corresponding :mod:`repro.experiments` module under
pytest-benchmark (so regressions in simulation speed are visible),
prints the same rows/series the paper reports, and asserts the paper's
qualitative claims on the output.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the reproduced tables.
"""

from __future__ import annotations

import pytest


def one_shot(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round.

    The experiment simulations are deterministic; a single round gives
    a stable wall-clock figure without multiplying multi-second
    simulations.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
