"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper:
it runs the corresponding :mod:`repro.experiments` module under
pytest-benchmark (so regressions in simulation speed are visible),
prints the same rows/series the paper reports, and asserts the paper's
qualitative claims on the output.

Results are memoized in the sweep result cache (the same one
``python -m repro sweep`` uses), so a repeated benchmark run is warm:
every experiment row is served from disk instead of re-simulated.
Pass ``--repro-no-cache`` to force cold measurements, or point
``$REPRO_CACHE_DIR`` somewhere else.  Any code change invalidates the
cache automatically (keys embed a digest of the package sources).

Two suite-wide knobs forward into every experiment entry point whose
signature accepts them:

* ``--engine {fast,des}`` — simulation backend (the event-free fast
  timeline engine vs the discrete-event reference kernel).  The CI
  bench-smoke job runs the suite under both and asserts the fast
  engine wins on the Figure 10 size sweep.
* ``--scale K`` — divide matrix dimensions by ``K`` where supported
  (smoke runs).  Paper-claim assertions that only hold at publication
  scale are guarded by :func:`at_paper_scale`.
* ``--backend {serial,process,persistent}`` — execution backend
  forwarded to every experiment entry point that accepts it (stamped
  into the sweep points, so each backend keeps its own cache entries).
  Pair it with ``--jobs N``: without worker processes the pooled
  backends deliberately degrade to inline execution, so a backend
  comparison at ``--jobs 1`` measures three identical serial runs.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the reproduced tables.
"""

from __future__ import annotations

import inspect

from repro.runner import cached_call

_use_cache = True
_engine: str | None = None
_scale: int | None = None
_backend: str | None = None
_jobs: int | None = None


def pytest_addoption(parser):
    parser.addoption(
        "--repro-no-cache",
        action="store_true",
        default=False,
        help="bypass the sweep result cache (force cold benchmark runs)",
    )
    parser.addoption(
        "--engine",
        choices=("fast", "des", "model"),
        default=None,
        help="simulation backend forwarded to every experiment that "
        "accepts it (default: each experiment's own default, i.e. fast); "
        "'model' runs the analytic estimator (no trace, estimates only)",
    )
    parser.addoption(
        "--scale",
        type=int,
        default=None,
        metavar="K",
        help="divide matrix dimensions by K where supported; "
        "paper-claim assertions are skipped off paper scale",
    )
    parser.addoption(
        "--backend",
        choices=("serial", "process", "persistent"),
        default=None,
        help="execution backend forwarded to every experiment that "
        "accepts it (default: each experiment's own default, i.e. the "
        "runner's auto choice); combine with --jobs for real fan-out",
    )
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes forwarded to every experiment entry "
        "point that accepts them (default: each experiment's own "
        "default, i.e. serial)",
    )


def pytest_configure(config):
    global _use_cache, _engine, _scale, _backend, _jobs
    _use_cache = not config.getoption("--repro-no-cache")
    _engine = config.getoption("--engine")
    _scale = config.getoption("--scale")
    _backend = config.getoption("--backend")
    _jobs = config.getoption("--jobs")


def at_paper_scale() -> bool:
    """True unless ``--scale``/``--engine model`` override the benches'
    paper-scale runs.

    Quantitative claims of the paper (worker counts, spread bands,
    ranking margins) are asserted only when the suite runs the
    publication-size instances (no override, or an explicit
    ``--scale 1``) on a real simulator — the model engine's estimates
    live inside a validated error envelope, not on the claims' margins.
    """
    return _scale in (None, 1) and _engine != "model"


def one_shot(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round, cache-backed.

    The experiment simulations are deterministic; a single round gives
    a stable wall-clock figure without multiplying multi-second
    simulations.  With the cache enabled (default) the round serves
    previously computed results from disk; results that are not
    JSON-serialisable (e.g. trace objects) are computed fresh each run.
    With ``--repro-no-cache`` (the measurement mode the CI engine
    comparison uses) one warmup round precedes the measured round, so
    the figure reflects steady-state sweep throughput — in-process memo
    caches primed, exactly as a real multi-point sweep runs — rather
    than interpreter cold-start.

    The suite-wide ``--engine`` / ``--scale`` overrides are injected
    into ``kwargs`` whenever ``fn``'s signature accepts the parameter.
    """
    try:
        accepted = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        accepted = {}
    if _engine is not None and "engine" in accepted:
        kwargs["engine"] = _engine
    if _scale is not None and "scale" in accepted:
        kwargs["scale"] = _scale
    if _backend is not None and "backend" in accepted:
        kwargs["backend"] = _backend
    if _jobs is not None and "jobs" in accepted:
        kwargs["jobs"] = _jobs
    qualname = getattr(fn, "__qualname__", fn.__name__)
    # Closures/lambdas capture state invisible to the cache key (only the
    # qualname and call arguments are hashed) — never serve them stale.
    if _use_cache and "<" not in qualname:
        tag = f"{fn.__module__}.{qualname}"
        target = lambda *a, **kw: cached_call(tag, fn, *a, **kw)  # noqa: E731
    else:
        target = fn
    return benchmark.pedantic(
        target, args=args, kwargs=kwargs,
        rounds=1, iterations=1,
        # Warming up a cache-enabled run would write the cache entry and
        # then measure a disk hit; warm up only true cold measurements.
        warmup_rounds=0 if _use_cache else 1,
    )
