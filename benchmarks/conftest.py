"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper:
it runs the corresponding :mod:`repro.experiments` module under
pytest-benchmark (so regressions in simulation speed are visible),
prints the same rows/series the paper reports, and asserts the paper's
qualitative claims on the output.

Results are memoized in the sweep result cache (the same one
``python -m repro sweep`` uses), so a repeated benchmark run is warm:
every experiment row is served from disk instead of re-simulated.
Pass ``--repro-no-cache`` to force cold measurements, or point
``$REPRO_CACHE_DIR`` somewhere else.  Any code change invalidates the
cache automatically (keys embed a digest of the package sources).

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the reproduced tables.
"""

from __future__ import annotations

from repro.runner import cached_call

_use_cache = True


def pytest_addoption(parser):
    parser.addoption(
        "--repro-no-cache",
        action="store_true",
        default=False,
        help="bypass the sweep result cache (force cold benchmark runs)",
    )


def pytest_configure(config):
    global _use_cache
    _use_cache = not config.getoption("--repro-no-cache")


def one_shot(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round, cache-backed.

    The experiment simulations are deterministic; a single round gives
    a stable wall-clock figure without multiplying multi-second
    simulations.  With the cache enabled (default) the round serves
    previously computed results from disk; results that are not
    JSON-serialisable (e.g. trace objects) are computed fresh each run.
    """
    qualname = getattr(fn, "__qualname__", fn.__name__)
    # Closures/lambdas capture state invisible to the cache key (only the
    # qualname and call arguments are hashed) — never serve them stale.
    if _use_cache and "<" not in qualname:
        tag = f"{fn.__module__}.{qualname}"
        target = lambda *a, **kw: cached_call(tag, fn, *a, **kw)  # noqa: E731
    else:
        target = fn
    return benchmark.pedantic(target, args=args, kwargs=kwargs, rounds=1, iterations=1)
