"""Figure 11 — run-to-run variation under platform jitter."""

from conftest import at_paper_scale, one_shot

from repro.analysis import format_table
from repro.experiments import fig11


def test_fig11_spread(benchmark):
    rows = one_shot(benchmark, fig11.run, runs=5, scale=4)
    print()
    print(format_table(rows, title="Figure 11: run-to-run variation"))
    worst = max(r["spread_pct"] for r in rows)
    assert len(rows) == 7
    assert worst > 0.0
    # The paper observes ~6% between extreme runs; the calibrated jitter
    # lands in the same band (anything under ~15% supports the paper's
    # "within 6% counts as similar" methodology).  Tiny smoke instances
    # amplify discreteness, so the band is asserted at bench scale only.
    if at_paper_scale():
        assert worst < 15.0
