"""Figure 4 — Thrifty vs Min-min counterexamples."""

from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import fig04


def test_fig04_counterexamples(benchmark):
    rows = one_shot(benchmark, fig04.run, brute_force=True)
    print()
    print(format_table(rows, title="Figure 4: Thrifty vs Min-min (makespans)"))
    a, b = rows
    assert a["winner"] == "Min-min"
    assert b["winner"] == "Thrifty"
    assert a["optimal"] < a["thrifty"]  # neither greedy is optimal
