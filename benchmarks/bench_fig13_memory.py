"""Figure 13 — impact of the worker memory size (132–512 MB)."""

from conftest import at_paper_scale, one_shot

from repro.analysis import format_table
from repro.experiments import fig13


def test_fig13_memory_sweep(benchmark):
    rows = one_shot(benchmark, fig13.run, scale=1)
    print()
    print(format_table(rows, title="Figure 13: impact of worker memory"))
    assert len(rows) % 7 == 0 and rows  # one row per (memory, algorithm)
    if not at_paper_scale():
        return  # the Section 8.4 claims below hold at publication scale
    by_algo: dict = {}
    for row in rows:
        by_algo.setdefault(row["algorithm"], []).append(row)
    for algo, series in by_algo.items():
        series.sort(key=lambda r: r["memory_mb"])
        # More memory never hurts (monotone within rounding).
        assert series[-1]["makespan_s"] <= series[0]["makespan_s"] * 1.001, algo
    holm = {r["memory_mb"]: r for r in by_algo["HoLM"]}
    # "HoLM will use respectively two and four workers when the memory
    #  available increases" (Section 8.4).
    assert holm[132.0]["workers"] == 2
    assert holm[512.0]["workers"] == 4
    # HoLM stays competitive with the 8-worker algorithms at every point.
    by_mem: dict = {}
    for row in rows:
        by_mem.setdefault(row["memory_mb"], {})[row["algorithm"]] = row
    for algos in by_mem.values():
        best = min(r["makespan_s"] for r in algos.values())
        assert algos["HoLM"]["makespan_s"] <= best * 1.08
