"""Robustness sweep — scheduler degradation under non-stationary platforms."""

import conftest
from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import robustness


def test_robustness_sweep(benchmark):
    rows = one_shot(benchmark, robustness.run)
    print()
    print(format_table(rows, title="Robustness under non-stationary platforms"))
    by_key = {(r["scenario"], r["severity"], r["algorithm"]): r for r in rows}
    for row in rows:
        assert row["base_makespan_s"] > 0
        assert row["makespan_s"] > 0
        # Every preset family only degrades rates / adds contention, so a
        # scenario run is never materially faster than its baseline (small
        # slack: brownout recovery rounds off, and demand-driven queue
        # reshuffles can exhibit benign Graham-style anomalies).  The
        # model engine's per-regime error envelope is wider than this
        # bound (a scenario estimate can undershoot its stationary
        # baseline's overshoot), so the claim is simulator-only.
        if conftest._engine != "model":
            assert row["degradation"] >= 0.99, row
    # Dropping out half the cluster hurts more than a late single-worker
    # wobble: severity must bite within each family.
    for algorithm in robustness.ALGORITHMS:
        low = by_key[("dropout", 0.25, algorithm)]["degradation"]
        high = by_key[("dropout", 1.0, algorithm)]["degradation"]
        assert high >= low, (algorithm, low, high)
    assert max(r["degradation"] for r in rows) > 1.5
