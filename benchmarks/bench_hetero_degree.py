"""Heterogeneity-degree sweep — the study Section 8 announces."""

from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import hetero


def test_hetero_degree_sweep(benchmark):
    rows = one_shot(benchmark, hetero.run)
    print()
    print(format_table(rows, title="Heterogeneity-degree sweep"))
    for row in rows:
        assert row["makespan"] > 0
        # Incremental selection never claims more than the steady bound.
        assert row["selection_ratio"] <= row["steady_bound"] * 1.01
