"""Table 2 + Figures 7/8 — incremental selection ratios and Gantts."""

from conftest import one_shot

from repro.analysis import format_table, gantt_selection
from repro.core.heterogeneous import global_selection, local_selection
from repro.experiments import table2
from repro.platform import table2_platform


def test_table2_ratios(benchmark):
    rows = one_shot(benchmark, table2.run, steps=2000)
    print()
    print(format_table(rows, title="Table 2: selection ratios"))
    by_name = {r["algorithm"]: r["ratio"] for r in rows}
    assert abs(by_name["steady-state bound"] - 25 / 18) < 1e-9
    assert abs(by_name["global (Algorithm 3)"] - 1.17) < 0.01
    assert abs(by_name["local"] - 1.21) < 0.01
    assert abs(by_name["lookahead depth=2"] - 1.30) < 0.015


def test_fig7_fig8_gantts(benchmark):
    plat = table2_platform()

    def render():
        g = global_selection(plat, 10**6, 10**7, 10**6, max_steps=40)
        l = local_selection(plat, 10**6, 10**7, 10**6, max_steps=40)
        horizon = min(g.completion_time, l.completion_time)
        return (
            g,
            l,
            gantt_selection(g, 3, width=100, max_time=horizon),
            gantt_selection(l, 3, width=100, max_time=horizon),
        )

    g, l, chart_g, chart_l = one_shot(benchmark, render)
    print("\nFigure 7 (global):\n" + chart_g)
    print("\nFigure 8 (local):\n" + chart_l)
    # Same first 13 decisions; divergence at the 14th (paper's walkthrough).
    assert g.sequence[:13] == l.sequence[:13]
    assert g.sequence[13] == 2 and l.sequence[13] == 1
