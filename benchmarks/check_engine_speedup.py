"""Gates on the engine tower's speed ordering, from benchmark JSON.

Two gates, both over pytest-benchmark JSON files produced by per-engine
runs of the benchmark suite:

1. **fast vs DES** (always): the fast engine must beat the DES on the
   Figure 10 size sweep — the paper's headline experiment and the
   ISSUE's reference workload.
2. **model vs fast** (with ``--model-json``): the analytic model engine
   must deliver at least ``--model-min`` (default 100×) the fast
   engine's per-point throughput on the paper-scale Figure 10 points
   (the ``test_fig10_point_throughput`` benchmark, which pins paper
   scale regardless of ``--scale`` so the ratio reflects per-point
   cost, not fixed overhead).

Exits non-zero when either gate fails.

Usage::

    python benchmarks/check_engine_speedup.py FAST.json DES.json [MIN_SPEEDUP]
        [--model-json MODEL.json] [--model-min RATIO]

``MIN_SPEEDUP`` defaults to 1.0; the gates require strict inequality,
so a tie fails.  The CI bench-smoke job runs the suite at the smallest
scale, where fixed per-run overheads weigh heaviest; the measured
fast-vs-DES margin there is still ~4×, so the single-measured-round
comparison has ample headroom over CI runner noise.  At the paper's
default scale the measured speedup is substantially higher (≥5× — see
docs/performance.md).  The model-vs-fast margin is measured ~130× on
the paper-scale points (docs/engines.md).
"""

from __future__ import annotations

import argparse
import json
import sys

BENCH = "test_fig10_full_scale"
THROUGHPUT_BENCH = "test_fig10_point_throughput"


def _stat_seconds(path: str, name: str, stat: str) -> float:
    with open(path) as fh:
        data = json.load(fh)
    for bench in data["benchmarks"]:
        if bench["name"] == name:
            return float(bench["stats"][stat])
    raise SystemExit(f"{path}: no benchmark named {name!r}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "fast_json", help="benchmark JSON of the --engine fast run"
    )
    parser.add_argument(
        "des_json", help="benchmark JSON of the --engine des run"
    )
    parser.add_argument(
        "min_speedup", nargs="?", type=float, default=1.0,
        help="required fast-vs-DES speedup (strict; default 1.0)",
    )
    parser.add_argument(
        "--model-json", default=None,
        help="benchmark JSON of the --engine model run; enables the "
        "model-vs-fast per-point-throughput gate",
    )
    parser.add_argument(
        "--model-min", type=float, default=100.0,
        help="required model-vs-fast throughput ratio (strict; default 100)",
    )
    args = parser.parse_args(argv[1:])

    fast = _stat_seconds(args.fast_json, BENCH, "mean")
    des = _stat_seconds(args.des_json, BENCH, "mean")
    speedup = des / fast if fast > 0 else float("inf")
    print(
        f"{BENCH}: fast={fast * 1000:.1f} ms  des={des * 1000:.1f} ms  "
        f"speedup={speedup:.2f}x (required > {args.min_speedup:g}x)"
    )
    if speedup <= args.min_speedup:
        print("FAIL: the fast engine is not faster than the DES")
        return 1

    if args.model_json is not None:
        # Round minima, not means: timing noise is strictly additive,
        # so the min over rounds is the least-noise estimator of the
        # true per-point cost — and a ratio of two means would double
        # up on jitter from both runs.
        fast_pt = _stat_seconds(args.fast_json, THROUGHPUT_BENCH, "min")
        model_pt = _stat_seconds(args.model_json, THROUGHPUT_BENCH, "min")
        ratio = fast_pt / model_pt if model_pt > 0 else float("inf")
        print(
            f"{THROUGHPUT_BENCH}: fast={fast_pt * 1000:.1f} ms  "
            f"model={model_pt * 1000:.2f} ms  "
            f"throughput ratio={ratio:.1f}x (required > {args.model_min:g}x)"
        )
        if ratio <= args.model_min:
            print(
                "FAIL: the model engine does not deliver the required "
                "per-point throughput over the fast engine"
            )
            return 1

    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
