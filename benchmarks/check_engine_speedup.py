"""Gate: the fast engine must beat the DES on the Figure 10 size sweep.

Consumes two pytest-benchmark JSON files (one per ``--engine`` run of
the benchmark suite) and compares the wall-clock of the Figure 10
benchmark — the paper's headline experiment and the ISSUE's reference
workload.  Exits non-zero when the fast engine is not faster.

Usage::

    python benchmarks/check_engine_speedup.py FAST.json DES.json [MIN_SPEEDUP]

``MIN_SPEEDUP`` defaults to 1.0; the gate requires ``speedup >
MIN_SPEEDUP`` (strictly), so a tie fails.  The CI bench-smoke
job runs the suite at the smallest scale, where fixed per-run overheads
weigh heaviest; the measured margin there is still ~4×, so the
single-measured-round comparison has ample headroom over CI runner
noise.  At the paper's default scale the measured speedup is
substantially higher (≥5× — see docs/performance.md).
"""

from __future__ import annotations

import json
import sys

BENCH = "test_fig10_full_scale"


def _mean_seconds(path: str, name: str) -> float:
    with open(path) as fh:
        data = json.load(fh)
    for bench in data["benchmarks"]:
        if bench["name"] == name:
            return float(bench["stats"]["mean"])
    raise SystemExit(f"{path}: no benchmark named {name!r}")


def main(argv: list[str]) -> int:
    if len(argv) not in (3, 4):
        print(__doc__)
        return 2
    fast_path, des_path = argv[1], argv[2]
    min_speedup = float(argv[3]) if len(argv) == 4 else 1.0
    fast = _mean_seconds(fast_path, BENCH)
    des = _mean_seconds(des_path, BENCH)
    speedup = des / fast if fast > 0 else float("inf")
    print(
        f"{BENCH}: fast={fast * 1000:.1f} ms  des={des * 1000:.1f} ms  "
        f"speedup={speedup:.2f}x (required > {min_speedup:g}x)"
    )
    if speedup <= min_speedup:
        print("FAIL: the fast engine is not faster than the DES")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
