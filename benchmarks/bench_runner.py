"""Execution-backend throughput — process vs persistent on a warm campaign.

The sweep runner's three backends promise identical rows; this module
measures what they *cost* on the workload the persistent backend was
built for: a campaign of several sweeps of cheap points, where pool
start-up and per-task IPC dominate real computation.  The fresh-pool
``process`` backend pays a pool spawn per sweep and a task round-trip
per point; the ``persistent`` backend pays one pool spawn per session
and ships points in batches to already-warm workers.

``test_persistent_beats_process_on_warm_campaign`` is the acceptance
gate: on a warm multi-sweep campaign the persistent backend must beat
the process backend outright.  The surrounding benchmarks record the
absolute numbers (see docs/runner.md for measured figures).

Run with ``pytest benchmarks/bench_runner.py -s --benchmark-only`` for
the numbers, or plain ``pytest benchmarks/bench_runner.py`` for the
gate.
"""

from __future__ import annotations

import time

from conftest import one_shot

from repro.runner import Campaign, Sweep, create_backend, run_campaign

#: Campaign shape: enough sweeps that pool start-up matters, enough
#: points per sweep that batching matters.
N_SWEEPS = 6
N_POINTS = 32
JOBS = 2


def _micro_point(params: dict) -> dict:
    """A deliberately cheap point: a few hundred float ops, no engine."""
    x = params["x"]
    acc = 0.0
    for i in range(1, 200):
        acc += (x * i) % 7 / i
    return {"x": x, "acc": acc}


def _campaign() -> Campaign:
    return Campaign(
        "bench-backend",
        tuple(
            Sweep(
                name=f"bench-backend-{s}",
                run_fn=_micro_point,
                points=tuple(
                    {"s": s, "x": x} for x in range(N_POINTS)
                ),
            )
            for s in range(N_SWEEPS)
        ),
    )


def _run_campaign_on(backend_name: str):
    """One cold campaign on a fresh backend instance (cache-less)."""
    with create_backend(backend_name, jobs=JOBS) as backend:
        return run_campaign(_campaign(), jobs=JOBS, backend=backend)


def test_backend_serial(benchmark):
    result = one_shot(benchmark, _run_campaign_on, "serial")
    assert result.misses == N_SWEEPS * N_POINTS


def test_backend_process(benchmark):
    result = one_shot(benchmark, _run_campaign_on, "process")
    assert result.misses == N_SWEEPS * N_POINTS


def test_backend_persistent(benchmark):
    result = one_shot(benchmark, _run_campaign_on, "persistent")
    assert result.misses == N_SWEEPS * N_POINTS


def _measure_backends():
    """One comparison round: best-of-3 campaign wall-clock per backend.

    Returns ``(process_seconds, persistent_seconds)`` plus both
    results so the caller can assert row identity.
    """
    campaign = _campaign()
    rounds = 3  # best-of-N absorbs scheduler noise within an attempt

    process_seconds = float("inf")
    with create_backend("process", jobs=JOBS) as process_backend:
        for _ in range(rounds):
            t0 = time.perf_counter()
            process_result = run_campaign(
                campaign, jobs=JOBS, backend=process_backend
            )
            process_seconds = min(process_seconds, time.perf_counter() - t0)

    persistent_seconds = float("inf")
    with create_backend("persistent", jobs=JOBS) as persistent_backend:
        warmup = Sweep(
            name="warmup", run_fn=_micro_point, points=({"s": -1, "x": 0},)
        )
        run_campaign(Campaign("warmup", (warmup,)), jobs=JOBS,
                     backend=persistent_backend)
        for _ in range(rounds):
            t0 = time.perf_counter()
            persistent_result = run_campaign(
                campaign, jobs=JOBS, backend=persistent_backend
            )
            persistent_seconds = min(
                persistent_seconds, time.perf_counter() - t0
            )
    return process_seconds, persistent_seconds, process_result, persistent_result


def _measure_retry_overhead():
    """Best-of-5 warm persistent campaign, without and with a retry
    policy, on the same warm pool.  Returns ``(plain_s, retry_s)``."""
    from repro.runner import RetryPolicy

    campaign = _campaign()
    rounds = 5
    policy = RetryPolicy(retries=2, timeout=60.0, max_failures=10)
    plain_s = retry_s = float("inf")
    with create_backend("persistent", jobs=JOBS) as backend:
        warmup = Sweep(
            name="warmup", run_fn=_micro_point, points=({"s": -1, "x": 0},)
        )
        run_campaign(Campaign("warmup", (warmup,)), jobs=JOBS, backend=backend)
        for _ in range(rounds):
            t0 = time.perf_counter()
            plain_r = run_campaign(campaign, jobs=JOBS, backend=backend)
            plain_s = min(plain_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            retry_r = run_campaign(
                campaign, jobs=JOBS, backend=backend,
                retry=policy, on_error="keep",
            )
            retry_s = min(retry_s, time.perf_counter() - t0)
    assert retry_r.tables == plain_r.tables
    assert retry_r.errors == 0
    return plain_s, retry_s


def test_retry_layer_overhead():
    """Acceptance gate: the fault-tolerance layer is (nearly) free when
    nothing fails.

    A fully configured retry policy — retries, timeout, breaker — on a
    failure-free warm persistent campaign must add < 5 % to dispatch:
    the retry machinery only engages on failures, so the hot path's
    additions are a status check per point and one extra keyword on the
    backend call.  Retries up to three attempts for the same
    noisy-runner reasons as the backend-comparison gate.
    """
    budget = 1.05
    attempts = []
    for _ in range(3):
        plain_s, retry_s = _measure_retry_overhead()
        attempts.append((plain_s, retry_s))
        print(
            f"\nretry-layer overhead ({N_SWEEPS} sweeps x {N_POINTS} points, "
            f"jobs={JOBS}): plain {plain_s * 1e3:.1f} ms, "
            f"with policy {retry_s * 1e3:.1f} ms "
            f"({(retry_s / plain_s - 1) * 100:+.1f}%)"
        )
        if retry_s <= plain_s * budget:
            return
    raise AssertionError(
        "retry layer exceeded its 5% failure-free overhead budget on "
        f"every attempt: "
        + ", ".join(f"{p * 1e3:.1f}ms vs {r * 1e3:.1f}ms" for p, r in attempts)
    )


def test_persistent_beats_process_on_warm_campaign():
    """Acceptance gate: warm persistent workers beat fresh pools.

    Both backends run the identical campaign with the same job count.
    The persistent backend is warmed with one throwaway sweep first —
    the steady state it exists for (`sweep all`, repeated invocations,
    benchmark sessions) — while the process backend, by design, can
    never be warm: it spawns a pool per sweep.  Identical rows are
    asserted along the way, so the speed claim is about the same work.

    The comparison retries up to three attempts: a contended CI runner
    can deschedule one side of a tens-of-milliseconds measurement, but
    a genuine regression loses every attempt (the local margin is
    ~6-9×, see docs/runner.md).
    """
    attempts = []
    for _ in range(3):
        process_s, persistent_s, process_r, persistent_r = _measure_backends()
        assert persistent_r.tables == process_r.tables
        attempts.append((process_s, persistent_s))
        print(
            f"\nwarm campaign ({N_SWEEPS} sweeps x {N_POINTS} points, "
            f"jobs={JOBS}): process {process_s * 1e3:.1f} ms, "
            f"persistent {persistent_s * 1e3:.1f} ms "
            f"({process_s / persistent_s:.1f}x)"
        )
        if persistent_s < process_s:
            return
    raise AssertionError(
        "persistent never beat process on a warm multi-sweep campaign "
        f"across {len(attempts)} attempts: "
        + ", ".join(f"{p * 1e3:.1f}ms vs {q * 1e3:.1f}ms" for p, q in attempts)
    )
