"""Batched model-engine throughput: ``run_model_batch`` vs scalar.

The batched model evaluator (:mod:`repro.engine.model_batch`) groups
items by structural signature and replays the scalar estimator's
3-event recurrence as numpy rows, one pass per group.  This benchmark
measures points/second of both paths on the shape the batch layer was
built for — one algorithm, one paper-size workload, a dense axis of
nearby bandwidth scalings — and enforces the ISSUE's >=10x
model-engine throughput gate both locally and in CI.

Like ``bench_batch.py`` it deliberately ignores ``--scale``: at toy
sizes the fixed per-group cost dominates and the ratio says nothing
about the million-point sweeps the gate is about.  ``--engine des`` /
``--engine fast`` suite runs skip it — this path only exists for the
model engine (``--engine model`` runs it, as does the default suite).
"""

import time

import conftest
import pytest

from repro.engine import BatchItem, run_model, run_model_batch
from repro.platform import scaled_bandwidth, ut_cluster_platform
from repro.schedulers import section8_scheduler
from repro.workloads import fig10_workloads

#: Group size for the throughput gate — the ISSUE names a 256-point
#: uniform group as the acceptance shape.
GROUP = 256

SPEEDUP_GATE = 10.0


def _items(group: int = GROUP, algo: str = "OBMM") -> list:
    """A structurally-uniform paper-scale group: one Section 8
    scheduler on the first Section 8.3 workload under ``group`` nearby
    link-speed scalings (p=16: the widest configuration Figure 10
    sweeps, so the per-point scalar recurrence is at its longest)."""
    platform = ut_cluster_platform(p=16)
    shape = fig10_workloads()[0].shape(80)
    return [
        BatchItem(
            scheduler=lambda a=algo: section8_scheduler(a),
            platform=scaled_bandwidth(platform, 1.0 + 0.0002 * i),
            shape=shape,
            engine="model",
        )
        for i in range(group)
    ]


def _best_of(fn, rounds: int = 3) -> float:
    """Round minimum — scheduling jitter only ever adds time."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_model_batch_point_throughput(benchmark):
    """>=10x model-engine points/second on a 256-point uniform group
    (the ISSUE gate), with every row actually vectorized."""
    if conftest._engine not in (None, "model"):
        pytest.skip("batched model evaluation is a model-engine path")
    items = _items()

    def scalar():
        for item in items:
            run_model(
                item.scheduler(), item.platform, item.shape,
                two_port=item.two_port, check_memory=item.check_memory,
            )

    scalar_s = _best_of(scalar)

    counters: dict = {}
    batch_s = _best_of(
        lambda: run_model_batch(items, counters=counters)
    )
    speedup = scalar_s / batch_s

    # Recorded round: the batched path, so the ledger tracks the time
    # the gate's numerator is compared against.
    benchmark.pedantic(
        run_model_batch, args=(items,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert counters.get("scalar", 0) == 0 and (
        counters.get("vectorized") == len(items)
    ), f"group no longer fully vectorizes ({counters}) — gate is measuring fallback"

    # Context row: HoLM's chunk ladder vectorizes too; record its ratio
    # so the ledger shows the gate is not an OBMM-only artefact.
    holm = _items(group=64, algo="HoLM")
    holm_scalar = _best_of(lambda: [
        run_model(i.scheduler(), i.platform, i.shape) for i in holm
    ])
    holm_batch = _best_of(lambda: run_model_batch(holm))

    benchmark.extra_info["scalar_points_per_s"] = len(items) / scalar_s
    benchmark.extra_info["batch_points_per_s"] = len(items) / batch_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["holm_speedup"] = holm_scalar / holm_batch
    print(
        f"\nmodel batch throughput: {len(items) / batch_s:,.0f} points/s vs "
        f"{len(items) / scalar_s:,.0f} scalar ({speedup:.2f}x, gate "
        f">={SPEEDUP_GATE:g}x); HoLM context {holm_scalar / holm_batch:.2f}x"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched model evaluation only {speedup:.2f}x faster than scalar "
        f"(gate {SPEEDUP_GATE:g}x) over {len(items)} uniform points"
    )
