"""Design-choice ablations: ports, overlap, start-up overhead, lookahead."""

from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import ablations


def test_ablation_ports(benchmark):
    rows = one_shot(benchmark, ablations.run_ports, scale=4)
    print()
    print(format_table(rows, title="Ablation: one-port vs two-port"))
    one, two = rows
    assert two["makespan_s"] <= one["makespan_s"] + 1e-9


def test_ablation_overlap(benchmark):
    rows = one_shot(benchmark, ablations.run_overlap)
    print()
    print(format_table(rows, title="Ablation: overlap vs no-overlap layout"))
    # With ample memory the spare generation pays off.
    ample = [r for r in rows if r["m_blocks"] >= 120]
    assert any(r["overlap_gain_pct"] > 0 for r in ample)


def test_ablation_startup(benchmark):
    rows = one_shot(benchmark, ablations.run_startup)
    print()
    print(format_table(rows, title="Ablation: start-up (C-tile) overhead"))
    for row in rows:
        # Measured loss always under the paper's analytic bound, and
        # vanishing as t grows.
        assert row["c_io_fraction"] <= row["paper_bound"]
    fractions = [r["c_io_fraction"] for r in rows]
    assert fractions == sorted(fractions, reverse=True)


def test_ablation_lookahead(benchmark):
    rows = one_shot(benchmark, ablations.run_lookahead, depths=(1, 2, 3))
    print()
    print(format_table(rows, title="Ablation: lookahead depth"))
    assert rows[1]["ratio"] >= rows[0]["ratio"]
