"""Figure 12 — impact of the block size q (40 vs 80)."""

from conftest import at_paper_scale, one_shot

from repro.analysis import format_table
from repro.experiments import fig12


def test_fig12_blocksize(benchmark):
    rows = one_shot(benchmark, fig12.run, scale=1)
    print()
    print(format_table(rows, title="Figure 12: impact of block size q"))
    assert len(rows) == 7
    # The paper: "the choice of q has little impact on the algorithms
    # performance" — same-element-count runs land within a few percent
    # (at publication scale; shrunk instances leave too few tiles).
    if at_paper_scale():
        for row in rows:
            assert row["spread_pct"] < 10.0, row["algorithm"]
