"""Table 1 — bandwidth-centric steady state vs memory feasibility."""

from conftest import one_shot

from repro.analysis import format_table
from repro.experiments import table1


def test_table1_infeasibility(benchmark):
    rows = one_shot(benchmark, table1.run)
    print()
    print(format_table(rows, title="Table 1: steady state vs memory"))
    p1, p2 = rows
    # Both workers look identical to the LP (2c/(mu w) = 1/2 each) ...
    assert p1["2c/(mu*w)"] == p2["2c/(mu*w)"] == 0.5
    # ... but P1 must buffer ~40 blocks against 8 available: infeasible.
    assert p1["blocks_needed"] > p1["blocks_available"]
    assert not p1["feasible"]
    assert p2["feasible"]
