"""Setup shim.

The build metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works on minimal environments that lack the
``wheel`` package (pip then falls back to the legacy ``setup.py
develop`` code path, which has no wheel dependency).
"""

from setuptools import setup

setup()
