"""LU factorization on a master-worker platform (Section 7 end to end).

1. Verifies the executable block LU against numpy on a diagonally
   dominant matrix.
2. Evaluates the single-worker communication/computation cost model.
3. Picks the worker count for the UT cluster (``P = ceil(µw/3c)``).
4. Runs the heterogeneous pivot-size search on the Table 2 platform and
   shows each worker's chunk-shape policy.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.layout import mu_overlap
from repro.lu import (
    best_pivot_size,
    block_lu,
    chunk_policy,
    lu_makespan_estimate,
    lu_total_cost,
    lu_worker_count,
    verify_lu,
)
from repro.core.heterogeneous import chunk_sizes
from repro.platform import table2_platform, ut_cluster_platform


def main(scale: int = 1) -> None:
    # 1. Numeric block LU (``scale`` shrinks the matrix; the panel
    #    count is kept so the blocked path is still exercised).
    panel = max(80 // scale, 8)
    n = 4 * panel
    rng = np.random.default_rng(3)
    a = rng.uniform(-1, 1, (n, n)) + n * np.eye(n)
    packed = block_lu(a.copy(), panel=panel)
    assert verify_lu(a, packed)
    print(f"Block LU of a {n}x{n} matrix (panel {panel}): L.U == A  [ok]")

    # 2. Single-worker cost model.
    rows = []
    for mu in (4, 8, 16, 32):
        comm, comp = lu_total_cost(256, mu)
        rows.append(
            {"mu": mu, "comm_blocks": comm, "comp_blocks": comp,
             "ccr": comm / comp}
        )
    print()
    print(format_table(rows, title="Single-worker LU cost (r=256 blocks)"))
    print("Larger pivots trade communication for extra pivot flops.")

    # 3. Homogeneous cluster: how many workers for the core update?
    plat = ut_cluster_platform(p=8)
    wk = plat.workers[0]
    mu = 49  # divides r below; close to the memory-optimal 98/2
    workers = lu_worker_count(mu, wk.c, wk.w, plat.p)
    est = lu_makespan_estimate(196, mu, wk.c, wk.w, plat.p)
    print(
        f"\nUT cluster, r=196, mu={mu}: enroll P={workers} workers, "
        f"estimated makespan {est:.0f} s"
    )

    # 4. Heterogeneous: exhaustive pivot search + chunk policies.
    hplat = table2_platform()
    best_mu, best_est = best_pivot_size(hplat, r=36)
    print(
        f"\nTable 2 platform, r=36: best pivot mu={best_mu} "
        f"(estimated {best_est:.0f} s)"
    )
    rows = []
    for w, mu_i in zip(hplat.workers, chunk_sizes(hplat)):
        pol = chunk_policy(mu_i, best_mu, w.c, w.w)
        rows.append(
            {"worker": w.label, "mu_i": mu_i, "policy": pol.shape,
             "virtual_procs": pol.virtual_count}
        )
    print(format_table(rows, title="Per-worker chunk policies"))


if __name__ == "__main__":
    main()
