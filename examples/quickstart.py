"""Quickstart: schedule a matrix product on a master-worker platform.

Builds the paper's University-of-Tennessee cluster (1 master + 8
workers over 100 Mb/s Ethernet), runs the paper's HoLM algorithm on a
scaled-down version of the Section 8 workload, verifies the numerical
result against numpy, and prints the run's metrics and a Gantt chart.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import gantt_trace, summarize_trace
from repro.blocks import ProblemShape, make_product_instance, verify_product
from repro.engine import run_scheduler
from repro.platform import ut_cluster_platform
from repro.schedulers import HoLM


def main(scale: int = 1) -> None:
    # 1. The platform: 8 workers, each with c = 4.1 ms/block,
    #    w = 0.29 ms/update, m = 10000 block buffers (512 MB).
    platform = ut_cluster_platform(p=8)
    print(platform.describe())

    # 2. The problem: C (r x s blocks) += A (r x t) . B (t x s).
    #    Small enough to execute numerically in seconds (``scale``
    #    shrinks it further for smoke runs).
    shape = ProblemShape(
        r=max(10 // scale, 2), s=max(40 // scale, 4),
        t=max(8 // scale, 2), q=40,
    )
    print(f"\nProblem: {shape}")

    # 3. Real matrices, so the simulated schedule is also executed.
    a, b, c0 = make_product_instance(shape, seed=42)
    c = c0.copy()

    # 4. Run the paper's homogeneous algorithm (with resource selection).
    trace = run_scheduler(HoLM(), platform, shape, data=(a, b, c))

    # 5. The schedule must compute exactly C0 + A.B.
    assert verify_product(a, b, c0, c), "numerical verification failed!"
    print("\nNumerical check: C == C0 + A.B  [ok]")

    # 6. Metrics.
    s = summarize_trace(trace)
    print(f"\nMakespan          : {s.makespan:.2f} s (simulated)")
    print(f"Workers enrolled  : {s.workers_used} of {platform.p}")
    print(f"Blocks moved      : {s.comm_blocks}")
    print(f"Block updates     : {s.updates}")
    print(f"CCR               : {s.ccr:.4f} blocks/update")
    print(f"Port utilisation  : {s.port_utilisation:.1%}")

    # 7. Gantt chart: master port on top, worker compute below.
    print("\nGantt (digits = send to worker i, ^ = result return):")
    print(gantt_trace(trace, workers=platform.p, width=100))


if __name__ == "__main__":
    main()
