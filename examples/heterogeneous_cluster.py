"""Scheduling on a fully heterogeneous platform (Section 6 end to end).

Walks the paper's Table 2 platform through the whole heterogeneous
pipeline:

1. the bandwidth-centric steady-state LP and why it is only a bound,
2. the incremental selection algorithms (global / local / lookahead),
3. the Figure 7/8 Gantt charts,
4. an actual execution of the selection on the simulator, with
   numerical verification of the computed product.
"""

from repro.analysis import format_table, gantt_selection, summarize_trace
from repro.blocks import ProblemShape, make_product_instance, verify_product
from repro.core.heterogeneous import (
    bandwidth_centric_steady_state,
    chunk_sizes,
    global_selection,
    local_selection,
    lookahead_selection,
    simulate_bandwidth_centric_feasibility,
)
from repro.engine import run_scheduler
from repro.platform import table2_platform
from repro.schedulers import HeteroIncremental

BIG = (10**6, 10**7, 10**6)  # huge horizon for asymptotic ratios


def main(scale: int = 1) -> None:
    platform = table2_platform()
    print(platform.describe())
    print(f"Chunk sizes mu_i = {chunk_sizes(platform)}\n")

    # 1. Steady state: the upper bound.
    steady = bandwidth_centric_steady_state(platform)
    print(
        f"Steady-state LP: throughput {steady.throughput:.4f} "
        f"updates/s (25/18 ~ 1.39), enrolled {steady.enrolled}"
    )
    feas = simulate_bandwidth_centric_feasibility(platform)
    for fb in feas:
        status = "ok" if fb.feasible else "INFEASIBLE"
        print(
            f"  P{fb.worker}: needs {fb.needed_blocks:.1f} buffered blocks, "
            f"has {fb.available_blocks} -> {status}"
        )

    # 2. The incremental selections (``scale`` trims the step budgets
    #    for smoke runs; the ratios converge well before 2000 steps).
    steps = max(2000 // scale, 100)
    rows = []
    for name, sel in (
        ("global", global_selection(platform, *BIG, max_steps=steps)),
        ("local", local_selection(platform, *BIG, max_steps=steps)),
        ("lookahead-2", lookahead_selection(
            platform, *BIG, depth=2, max_steps=max(1200 // scale, 60))),
    ):
        rows.append(
            {
                "algorithm": name,
                "ratio": sel.ratio,
                "chunks": sum(sel.chunks_per_worker),
                "per_worker": str(sel.chunks_per_worker),
            }
        )
    print()
    print(format_table(rows, title="Incremental selection (asymptotic ratios)"))

    # 3. Figures 7 and 8.
    g = global_selection(platform, *BIG, max_steps=40)
    l = local_selection(platform, *BIG, max_steps=40)
    horizon = min(g.completion_time, l.completion_time)
    print("\nFigure 7 — global selection:")
    print(gantt_selection(g, workers=3, width=100, max_time=horizon))
    print("\nFigure 8 — local selection:")
    print(gantt_selection(l, workers=3, width=100, max_time=horizon))

    # 4. Execute the global selection on a real (small) instance.
    shape = ProblemShape(
        r=max(18 // scale, 6), s=max(36 // scale, 6),
        t=max(4 // scale, 2), q=8,
    )
    a, b, c0 = make_product_instance(shape, seed=7)
    c = c0.copy()
    scheduler = HeteroIncremental("global")
    trace = run_scheduler(scheduler, platform, shape, data=(a, b, c))
    assert verify_product(a, b, c0, c)
    s = summarize_trace(trace)
    print(
        f"\nExecuted {shape} on the platform: makespan {s.makespan:.0f} s, "
        f"{s.workers_used} workers, CCR {s.ccr:.3f} — numerics verified."
    )


if __name__ == "__main__":
    main()
