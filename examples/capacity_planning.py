"""Capacity planning: how much worker memory does a deadline need?

A practical use of the simulator beyond the paper's experiments: given
a recurring product workload and a turnaround target, sweep the
per-worker memory budget and report the cheapest configuration that
meets the deadline — including how many workers the paper's resource
selection would actually enroll at each point (memory you do not buy
is workers you do not need).
"""

from repro.analysis import format_table
from repro.engine import run_scheduler
from repro.platform import ut_cluster_platform
from repro.schedulers import HoLM
from repro.workloads import Workload


def main() -> None:
    workload = Workload("nightly batch", 8000, 8000, 32000)
    shape = workload.shape(80)
    target_s = 1200.0
    print(f"Workload: {workload.name} -> {shape}")
    print(f"Turnaround target: {target_s:.0f} s\n")

    rows = []
    feasible = None
    for memory_mb in (64, 96, 132, 198, 264, 396, 512):
        platform = ut_cluster_platform(p=8, memory_mb=memory_mb)
        trace = run_scheduler(HoLM(), platform, shape)
        meets = trace.makespan <= target_s
        rows.append(
            {
                "memory_mb": memory_mb,
                "makespan_s": trace.makespan,
                "workers": len(trace.enrolled_workers),
                "ccr": trace.ccr,
                "meets_target": meets,
            }
        )
        if meets and feasible is None:
            feasible = memory_mb
    print(format_table(rows, title="Memory sweep under HoLM"))
    if feasible is None:
        print("\nNo configuration meets the target; add bandwidth, not RAM —")
        print("the port is the bottleneck at every memory size.")
    else:
        print(
            f"\nCheapest configuration meeting the target: {feasible} MB "
            "per worker."
        )
        print(
            "Diminishing returns beyond that: CCR falls as 2/sqrt(m), so "
            "doubling memory buys only ~30% less traffic."
        )


if __name__ == "__main__":
    main()
