"""Capacity planning: query a huge configuration grid interactively.

The original version of this example swept seven memory sizes under one
algorithm with the full simulator.  The analytic model engine
(``run_scheduler(engine="model")``) answers the same question two to
three orders of magnitude faster per point, which changes what is
feasible: instead of hand-picking a few configurations, *enumerate the
whole design space* — memory budget × worker count × algorithm — and
only pay for full simulations on the shortlist.

Three stages:

1. **Grid query** — estimate every (memory, workers, algorithm) triple
   with the model engine.  The default grid is a few thousand points
   and runs in seconds; crank ``--memory-points``/``--worker-step`` up
   and the same loop handles million-point grids in minutes (the
   reported queries/second is the number to extrapolate with).
2. **Shortlist** — the cheapest configurations (GB·machines) whose
   *estimated* makespan meets the turnaround target.
3. **Verify** — the shortlist is re-run at full fidelity through the
   runner's model pre-screening (:func:`repro.runner.prescreen_sweep`
   plus :func:`repro.runner.run_sweep`), confirming the estimates
   within the model's validated error envelope (docs/engines.md).

Run with::

    python examples/capacity_planning.py [--memory-points N] [--keep K]
"""

from __future__ import annotations

import argparse
import time
from typing import Mapping

from repro.analysis import format_table
from repro.engine import BatchItem, run_scheduler
from repro.experiments.batching import evaluate_batch
from repro.platform import ut_cluster_platform
from repro.runner import Sweep, prescreen_sweep, run_sweep
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
from repro.workloads import Workload

#: Workload and deadline of the original example, kept for continuity.
WORKLOAD = ("nightly batch", 8000, 8000, 32000)
TARGET_S = 1200.0
Q = 80


def _item(params: Mapping) -> BatchItem:
    """One configuration's engine inputs, rebuilt from its scalars."""
    platform = ut_cluster_platform(
        p=params["p"], memory_mb=params["memory_mb"], q=params["q"]
    )
    workload = Workload(
        params["workload"], params["n_a"], params["n_ab"], params["n_b"]
    )
    return BatchItem(
        scheduler=lambda: section8_scheduler(params["algorithm"]),
        platform=platform,
        shape=workload.shape(params["q"]),
        engine=params.get("engine", "fast"),
    )


def _row(params: Mapping, trace) -> dict:
    return {
        "memory_mb": params["memory_mb"],
        "p": params["p"],
        "algorithm": params["algorithm"],
        "makespan_s": trace.makespan,
        "workers": len(trace.enrolled_workers),
        "gb_machines": params["p"] * params["memory_mb"] / 1024.0,
    }


def _point(params: Mapping) -> dict:
    """One configuration, simulated or estimated per ``params['engine']``.

    Top-level and pure so the sweep runner can cache it and fan it out
    across processes like any experiment point.
    """
    item = _item(params)
    trace = run_scheduler(
        item.scheduler(), item.platform, item.shape, engine=item.engine
    )
    return _row(params, trace)


def _batch_points(points) -> list:
    """Batched grid evaluation (the :data:`repro.runner.BatchableFn`
    contract): whole point-groups go through the vectorized engine,
    with per-point scalar fallback wherever configurations differ
    structurally."""
    return evaluate_batch(points, _item, _row)


def build_grid(
    scale: int = 1, memory_points: int = 12, worker_step: int = 2
) -> tuple:
    """The (memory × workers × algorithm) point grid, as sweep points."""
    name, n_a, n_ab, n_b = WORKLOAD
    lo, hi = 48.0, 768.0
    memories = [
        round(lo * (hi / lo) ** (i / (memory_points - 1)), 1)
        if memory_points > 1 else lo
        for i in range(memory_points)
    ]
    return tuple(
        {
            "workload": name,
            "n_a": max(n_a // scale, 4 * Q),
            "n_ab": max(n_ab // scale, 4 * Q),
            "n_b": max(n_b // scale, 4 * Q),
            "algorithm": algorithm,
            "p": p,
            "memory_mb": memory_mb,
            "q": Q,
        }
        for memory_mb in memories
        for p in range(2, 17, worker_step)
        for algorithm in SECTION8_SCHEDULERS
    )


def main(
    scale: int = 1,
    memory_points: int = 12,
    worker_step: int = 2,
    keep: int = 6,
) -> None:
    points = build_grid(scale, memory_points, worker_step)
    name = WORKLOAD[0]
    target = TARGET_S / scale
    print(f"Workload: {name} (scale 1/{scale}), turnaround target {target:.0f} s")
    print(f"Design space: {len(points)} configurations "
          f"({memory_points} memory sizes x workers x {len(SECTION8_SCHEDULERS)} algorithms)\n")

    # 1. Query the whole grid with the model engine — batched: the
    #    grid is grouped by structural signature and each group's
    #    closed-form recurrence runs vectorized across its points
    #    (bitwise-identical to the scalar loop it replaced).
    start = time.perf_counter()
    estimates = _batch_points([{**p, "engine": "model"} for p in points])
    elapsed = time.perf_counter() - start
    rate = len(points) / elapsed if elapsed > 0 else float("inf")
    print(
        f"Model engine answered {len(points)} queries in {elapsed:.2f} s "
        f"({rate:,.0f} queries/s -> a million-point grid would take "
        f"~{1_000_000 / rate / 60:.1f} min)"
    )

    # 2. Shortlist: cheapest estimated-feasible configurations.
    feasible = [e for e in estimates if e["makespan_s"] <= target]
    print(f"Estimated feasible under the target: {len(feasible)} configurations")
    if not feasible:
        print("\nNo configuration meets the target; add bandwidth, not RAM —")
        print("the port is the bottleneck at every memory size.")
        return
    feasible.sort(key=lambda e: (e["gb_machines"], e["makespan_s"]))
    print(format_table(
        feasible[:keep],
        title=f"Cheapest estimated-feasible configurations (model engine)",
    ))

    # 3. Verify the shortlist at full fidelity via runner pre-screening:
    #    score by estimated cost-with-feasibility, keep the best, simulate.
    def score(params: Mapping, row: Mapping) -> float:
        cost = params["p"] * params["memory_mb"] / 1024.0
        return cost if row["makespan_s"] <= target else float("inf")

    screened = prescreen_sweep(
        Sweep(
            name="capacity", run_fn=_point, points=points,
            batch_fn=_batch_points,
        ),
        keep=keep,
        score=score,
    )
    verified = run_sweep(screened.sweep).rows
    for row in verified:
        row["meets_target"] = row["makespan_s"] <= target
    print()
    print(format_table(verified, title="Shortlist re-simulated (fast engine)"))

    best = min(
        (r for r in verified if r["meets_target"]),
        key=lambda r: (r["gb_machines"], r["makespan_s"]),
        default=None,
    )
    if best is None:
        print("\nEvery shortlisted estimate missed the target under full "
              "simulation — widen --keep (the envelope is ~10%).")
    else:
        print(
            f"\nCheapest verified configuration: {best['algorithm']} with "
            f"{best['p']} workers x {best['memory_mb']:.0f} MB "
            f"({best['gb_machines']:.1f} GB-machines) -> "
            f"{best['makespan_s']:.0f} s."
        )
        print(
            "Diminishing returns beyond that: CCR falls as 2/sqrt(m), so "
            "doubling memory buys only ~30% less traffic."
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--memory-points", type=int, default=12)
    parser.add_argument("--worker-step", type=int, default=2)
    parser.add_argument("--keep", type=int, default=6)
    args = parser.parse_args()
    main(
        scale=args.scale,
        memory_points=args.memory_points,
        worker_step=args.worker_step,
        keep=args.keep,
    )
