"""The paper's motivating scenario: speeding up a MATLAB/Scilab server.

"Typically, our approach is useful in the context of speeding up MATLAB
or SCILAB clients running on a server (which acts as the master and
initial repository of files)."  (Section 1)

A compute server holds two large matrices that a client wants
multiplied.  The server can enroll lab machines over the LAN, but the
data lives on the server — every block has to flow through its single
network port, and the lab machines have limited RAM.

This example compares the candidate strategies for one client request
and reports which to use, how many machines to enroll, and what the
request's turnaround time would be.
"""

from repro.analysis import format_table, summarize_trace
from repro.blocks import ProblemShape
from repro.core.homogeneous import plan_homogeneous
from repro.engine import run_scheduler
from repro.platform import HardwareSpec, calibrate, Platform
from repro.schedulers import all_section8_schedulers


def main(scale: int = 1) -> None:
    # The lab: gigabit LAN, ~4 Gflop/s DGEMM per machine, but only
    # 256 MB of RAM each that the service may pin for block buffers.
    spec = HardwareSpec(
        bandwidth_bps=1e9, gemm_flops=4e9, memory_mb=256.0, q=80
    )
    c, w, m = calibrate(spec)
    platform = Platform.homogeneous(12, c, w, m, name="lab-LAN")
    print(platform.describe())

    # The client request: C = A . B with A 16000x16000, B 16000x32000
    # (``scale`` shrinks the request for smoke runs).
    shape = ProblemShape.from_elements(
        max(16000 // scale, 800), max(16000 // scale, 800),
        max(32000 // scale, 800), q=80,
    )
    print(f"\nClient request: {shape}")
    flops = shape.total_flops
    print(f"Total work: {flops / 1e12:.2f} Tflop")

    # What does the paper's resource selection say?
    plan = plan_homogeneous(platform, shape)
    print(
        f"\nSection 5 plan: tile side mu={plan.mu}, enroll "
        f"P={plan.workers} of {platform.p} machines"
        + (" (small-matrix fallback)" if plan.small_matrix else "")
    )

    # Compare every algorithm on this request (cost simulation).
    rows = []
    for scheduler in all_section8_schedulers():
        trace = run_scheduler(scheduler, platform, shape)
        s = summarize_trace(trace)
        rows.append(
            {
                "algorithm": scheduler.name,
                "turnaround_s": s.makespan,
                "machines": s.workers_used,
                "blocks_moved": s.comm_blocks,
                "port_util": s.port_utilisation,
            }
        )
    rows.sort(key=lambda r: r["turnaround_s"])
    print()
    print(format_table(rows, title="Candidate strategies for this request"))

    best = rows[0]
    single = flops / spec.gemm_flops
    print(
        f"\nRecommendation: {best['algorithm']} with {best['machines']} "
        f"machines -> {best['turnaround_s']:.0f} s "
        f"(vs {single:.0f} s on the server's own core; "
        f"{single / best['turnaround_s']:.1f}x speedup)."
    )


if __name__ == "__main__":
    main()
