"""Dataclasses describing star platforms.

The linear cost model of the paper: sending a message of ``X`` blocks to
worker ``Pi`` costs ``X * c_i`` seconds of master-port time; executing
``X`` block updates on ``Pi`` costs ``X * w_i`` seconds of its CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

__all__ = ["Worker", "Platform", "perturbed", "scaled_bandwidth"]


@dataclass(frozen=True)
class Worker:
    """One worker ``Pi`` of the star platform.

    Attributes:
        index: 1-based worker index (``P0`` is the master).
        c: seconds to transfer one q×q block between master and this
            worker, in either direction (one-port model).
        w: seconds for one block update (q×q×q multiply-accumulate).
        m: memory capacity, in q×q block buffers.
        name: optional human-readable label.
    """

    index: int
    c: float
    w: float
    m: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"worker index must be >= 1, got {self.index}")
        if self.c <= 0 or self.w <= 0:
            raise ValueError(f"c and w must be positive (c={self.c}, w={self.w})")
        if self.m < 1:
            raise ValueError(f"memory must be >= 1 block, got {self.m}")

    @property
    def label(self) -> str:
        """Display label (``name`` if given, otherwise ``P<i>``)."""
        return self.name or f"P{self.index}"


@dataclass(frozen=True)
class Platform:
    """A star platform: master ``P0`` plus a tuple of workers.

    The master holds all matrix data, performs no computation (Section
    2.2: "Without loss of generality, we assume that the master has no
    processing capability"), and owns a single network port under the
    one-port model.
    """

    workers: tuple[Worker, ...]
    name: str = "platform"

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("a platform needs at least one worker")
        indices = [wk.index for wk in self.workers]
        if indices != list(range(1, len(indices) + 1)):
            raise ValueError(f"worker indices must be 1..p contiguous, got {indices}")

    # -- construction helpers ---------------------------------------------
    @staticmethod
    def homogeneous(p: int, c: float, w: float, m: int, name: str = "") -> "Platform":
        """Build a fully homogeneous platform of ``p`` identical workers."""
        workers = tuple(Worker(i, c, w, m) for i in range(1, p + 1))
        return Platform(workers, name or f"homogeneous(p={p},c={c},w={w},m={m})")

    @staticmethod
    def heterogeneous(
        c: Sequence[float], w: Sequence[float], m: Sequence[int], name: str = ""
    ) -> "Platform":
        """Build a heterogeneous platform from parallel parameter lists.

        The three lists must have equal lengths; a mismatch raises
        ``ValueError`` (never silently zip-truncates workers away).
        """
        if not (len(c) == len(w) == len(m)):
            raise ValueError(
                f"c, w, m must have equal lengths, got "
                f"len(c)={len(c)}, len(w)={len(w)}, len(m)={len(m)}"
            )
        workers = tuple(
            Worker(i + 1, ci, wi, mi) for i, (ci, wi, mi) in enumerate(zip(c, w, m))
        )
        return Platform(workers, name or f"heterogeneous(p={len(workers)})")

    # -- queries -------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of workers."""
        return len(self.workers)

    @property
    def is_homogeneous(self) -> bool:
        """True when every worker has identical ``(c, w, m)``."""
        first = self.workers[0]
        return all(
            wk.c == first.c and wk.w == first.w and wk.m == first.m
            for wk in self.workers
        )

    def worker(self, index: int) -> Worker:
        """Return worker ``P<index>`` (1-based)."""
        if not 1 <= index <= self.p:
            raise IndexError(f"worker index {index} out of range 1..{self.p}")
        return self.workers[index - 1]

    def __iter__(self) -> Iterator[Worker]:
        return iter(self.workers)

    def __len__(self) -> int:
        return self.p

    def subset(self, indices: Iterable[int], name: str = "") -> "Platform":
        """Platform restricted to the given 1-based worker indices.

        Workers are re-indexed 1..k in the order given.  Used by resource
        selection: enrolling workers means simulating on a subset.
        """
        chosen = [self.worker(i) for i in indices]
        if not chosen:
            raise ValueError("subset needs at least one worker")
        workers = tuple(
            replace(wk, index=j + 1, name=wk.name or f"P{wk.index}")
            for j, wk in enumerate(chosen)
        )
        return Platform(workers, name or f"{self.name}[subset]")

    def describe(self) -> str:
        """Multi-line human-readable description (one row per worker)."""
        lines = [f"Platform {self.name!r} with p={self.p} workers:"]
        for wk in self.workers:
            lines.append(
                f"  {wk.label}: c={wk.c:g} s/block, w={wk.w:g} s/update, m={wk.m} blocks"
            )
        return "\n".join(lines)


def perturbed(
    platform: Platform,
    rng: np.random.Generator,
    sigma: float = 0.03,
) -> Platform:
    """Return a jittered copy of ``platform`` for run-to-run variation studies.

    Each worker's ``c`` and ``w`` are multiplied by independent lognormal
    factors ``exp(N(0, sigma))``.  With the paper's observation of ~6 %
    spread between extreme runs (Figure 11), ``sigma ≈ 0.02`` reproduces a
    comparable band.  Memory capacities are left untouched (they are
    deterministic hardware facts).
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    workers = tuple(
        replace(
            wk,
            c=wk.c * float(np.exp(rng.normal(0.0, sigma))),
            w=wk.w * float(np.exp(rng.normal(0.0, sigma))),
        )
        for wk in platform.workers
    )
    return Platform(workers, f"{platform.name}~jitter")


def scaled_bandwidth(platform: Platform, factor: float) -> Platform:
    """Return a copy of ``platform`` with every link ``c`` scaled.

    ``factor > 1`` means *slower* links (``c`` is seconds per block).
    Scaling every worker uniformly preserves the relative bandwidth
    ranking, so scheduler decisions are usually unchanged for nearby
    factors — which is what makes a bandwidth axis an ideal batching
    axis for the vectorized engine (see ``docs/engines.md``).
    """
    if factor <= 0:
        raise ValueError(f"bandwidth factor must be positive, got {factor}")
    if factor == 1.0:
        return platform
    workers = tuple(replace(wk, c=wk.c * factor) for wk in platform.workers)
    return Platform(workers, f"{platform.name}~c×{factor:g}")
