"""Master-worker star platform models (Section 2.2 of the paper).

A platform is a star ``S = {P0, P1, ..., Pp}``: a master ``P0`` with no
compute capability and ``p`` workers.  Worker ``Pi`` is characterised by

* ``c_i`` — seconds for the master to send (or receive) one q×q block
  to/from ``Pi`` (linear cost model, no latency),
* ``w_i`` — seconds for ``Pi`` to perform one block update
  ``C_ij += A_ik · B_kj`` (a q×q×q multiply-accumulate),
* ``m_i`` — number of q×q block buffers that fit in ``Pi``'s memory.

The subpackage also contains hardware calibration helpers that convert
"100 Mb/s Ethernet + 3.2 GHz Xeon + 80×80 double blocks" into ``(c, w)``
(used to regenerate the Section 8 experiments), stochastic perturbation
for the Figure 11 jitter study, and the named platforms of Tables 1 and 2.
"""

from repro.platform.calibration import (
    HardwareSpec,
    UT_CLUSTER,
    block_bytes,
    blocks_per_megabyte,
    calibrate,
    memory_mb_to_blocks,
)
from repro.platform.model import Platform, Worker, perturbed, scaled_bandwidth
from repro.platform.named import table1_platform, table2_platform, ut_cluster_platform

__all__ = [
    "HardwareSpec",
    "Platform",
    "UT_CLUSTER",
    "Worker",
    "block_bytes",
    "blocks_per_megabyte",
    "calibrate",
    "memory_mb_to_blocks",
    "perturbed",
    "scaled_bandwidth",
    "table1_platform",
    "table2_platform",
    "ut_cluster_platform",
]
