"""Hardware calibration: turn hardware specs into block-level costs.

The Section 8 experiments run on "a cluster of 64 Xeon 3.2GHz
dual-processor nodes ... connected with a switched 100Mbps Fast Ethernet
network" with "four Gigabytes of memory" per node, using q×q = 80×80
blocks of double-precision elements.

This module converts such a spec into the paper's abstract parameters:

* ``c`` — seconds per block over the wire.  A q×q block of float64 is
  ``q² × 8`` bytes; at an effective bandwidth of ``beta`` bit/s,
  ``c = 8 · q² · 8 / beta``.
* ``w`` — seconds per block update.  One update is ``2·q³`` flops (a
  multiply-accumulate per element triple); at an effective DGEMM rate of
  ``gamma`` flop/s, ``w = 2 q³ / gamma``.
* ``m`` — available memory (minus a reserve) divided by block bytes.

With q = 80, 100 Mb/s effective Ethernet and ~3.5 Gflop/s effective
DGEMM (a 3.2 GHz Xeon with SSE2 peaks at 6.4 Gflop/s; ATLAS sustains
roughly 55 % of peak), ``c ≈ 4.1 ms`` and ``w ≈ 0.29 ms``: communication
is ~14× more expensive than computation per block, which is exactly the
regime the paper's resource selection targets — ``P = ceil(µw/2c)``
enrolls 4 of 8 workers at 512 MB and 2 at 132 MB, matching the worker
counts reported in Section 8.4.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HardwareSpec",
    "UT_CLUSTER",
    "block_bytes",
    "blocks_per_megabyte",
    "calibrate",
    "memory_mb_to_blocks",
]

#: Bytes per double-precision matrix element.
BYTES_PER_ELEMENT = 8


def block_bytes(q: int) -> int:
    """Size in bytes of one q×q block of float64 elements."""
    if q < 1:
        raise ValueError(f"block size q must be >= 1, got {q}")
    return q * q * BYTES_PER_ELEMENT


def blocks_per_megabyte(q: int) -> float:
    """How many q×q float64 blocks fit in one megabyte (10^6 bytes)."""
    return 1e6 / block_bytes(q)


def memory_mb_to_blocks(memory_mb: float, q: int) -> int:
    """Convert a worker memory budget in MB to a block count ``m``.

    Used by the Figure 13 experiment, whose x-axis is worker memory in
    megabytes (132 MB … 512 MB).
    """
    if memory_mb <= 0:
        raise ValueError(f"memory must be positive, got {memory_mb}")
    m = int(memory_mb * 1e6 // block_bytes(q))
    if m < 1:
        raise ValueError(f"{memory_mb} MB holds no {q}x{q} block")
    return m


@dataclass(frozen=True)
class HardwareSpec:
    """Physical description of one worker node and its link.

    Attributes:
        bandwidth_bps: effective link bandwidth in bits per second.
        gemm_flops: effective DGEMM rate in flops per second.
        memory_mb: worker memory available for block buffers, in MB.
        q: block size (80 or 100 in the paper; ATLAS sweet spot).
    """

    bandwidth_bps: float = 100e6
    gemm_flops: float = 3.5e9
    memory_mb: float = 512.0
    q: int = 80

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0 or self.gemm_flops <= 0:
            raise ValueError("bandwidth and flop rate must be positive")
        if self.memory_mb <= 0:
            raise ValueError("memory must be positive")
        if self.q < 1:
            raise ValueError("q must be >= 1")


#: The University of Tennessee cluster of Section 8.1 (per node).
UT_CLUSTER = HardwareSpec(
    bandwidth_bps=100e6, gemm_flops=3.5e9, memory_mb=512.0, q=80
)


def calibrate(spec: HardwareSpec) -> tuple[float, float, int]:
    """Return the abstract platform parameters ``(c, w, m)`` for a spec.

    ``c`` is seconds per block each way, ``w`` seconds per block update,
    ``m`` the worker buffer count.
    """
    bits = block_bytes(spec.q) * 8
    c = bits / spec.bandwidth_bps
    flops = 2.0 * spec.q**3
    w = flops / spec.gemm_flops
    m = memory_mb_to_blocks(spec.memory_mb, spec.q)
    return c, w, m
