"""The named platforms used in the paper's worked examples and experiments.

* :func:`table1_platform` — Table 1: the two-worker platform on which the
  bandwidth-centric steady-state solution is *not feasible* because
  worker P1 would need 20 buffered blocks to ride out the slot in which
  the master serves P2.
* :func:`table2_platform` — Table 2: the three-worker platform used to
  walk through the global (Figure 7) and local (Figure 8) incremental
  selection algorithms.
* :func:`ut_cluster_platform` — the homogeneous University-of-Tennessee
  cluster of Section 8 (1 master + ``p`` workers carved out of 64 nodes).

Note on Tables 1 and 2: the paper specifies workers directly by
``(c_i, w_i, µ_i)``.  Memory ``m_i`` is recovered as the smallest memory
that yields that µ under the overlap layout, ``m_i = µ_i² + 4µ_i``.
"""

from __future__ import annotations

from repro.platform.calibration import HardwareSpec, calibrate, memory_mb_to_blocks
from repro.platform.model import Platform, Worker

__all__ = ["table1_platform", "table2_platform", "ut_cluster_platform"]


def _m_for_mu(mu: int) -> int:
    """Smallest memory (in blocks) giving chunk size ``mu`` under the
    overlap layout µ² + 4µ ≤ m."""
    return mu * mu + 4 * mu


def table1_platform() -> Platform:
    """Table 1: c = (1, 20), w = (2, 40), µ = (2, 2).

    Both workers have ``2·c_i/(µ_i·w_i) = 1/2``, so the bandwidth-centric
    strategy enrolls both at full rate — but P1 would need to buffer ~20
    blocks to stay busy while the master spends 80 s serving P2, far more
    than its memory allows.
    """
    workers = (
        Worker(1, c=1.0, w=2.0, m=_m_for_mu(2)),
        Worker(2, c=20.0, w=40.0, m=_m_for_mu(2)),
    )
    return Platform(workers, name="paper-table1")


def table2_platform() -> Platform:
    """Table 2: c = (2, 3, 5), w = (2, 3, 1), µ = (6, 18, 10).

    The walk-through in Section 6.2 derives: first selections P2, P1, P3;
    a repeating 13-communication cyclic pattern; asymptotic
    computation-per-communication ratio 1.17 for the global algorithm,
    1.21 for the local one, 1.30 for two-step lookahead, against a 1.39
    steady-state upper bound.
    """
    workers = (
        Worker(1, c=2.0, w=2.0, m=_m_for_mu(6)),
        Worker(2, c=3.0, w=3.0, m=_m_for_mu(18)),
        Worker(3, c=5.0, w=1.0, m=_m_for_mu(10)),
    )
    return Platform(workers, name="paper-table2")


def ut_cluster_platform(
    p: int = 8,
    memory_mb: float = 512.0,
    q: int = 80,
    spec: HardwareSpec | None = None,
) -> Platform:
    """The homogeneous Section-8 platform: ``p`` workers from the UT cluster.

    Args:
        p: number of enrolled workers (the experiments use 8).
        memory_mb: per-worker block-buffer budget in MB (Figure 13 sweeps
            this from 132 to 512 MB).
        q: block size (Figure 12 compares q = 40 and q = 80).
        spec: override the full hardware spec; ``memory_mb``/``q`` are
            ignored when given.
    """
    if spec is None:
        spec = HardwareSpec(memory_mb=memory_mb, q=q)
    c, w, m = calibrate(spec)
    return Platform.homogeneous(
        p, c, w, m, name=f"ut-cluster(p={p},mem={spec.memory_mb:g}MB,q={spec.q})"
    )
