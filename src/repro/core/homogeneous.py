"""Resource selection on homogeneous platforms — Section 5.

With the overlap layout (``µ² + 4µ ≤ m``), one *round* on a worker
consists of exchanging ``2µ²`` C blocks with the master, receiving
``µ·t`` A blocks and ``µ·t`` B blocks, and computing ``µ²·t`` updates.
Neglecting the C traffic (the paper's "Impact of the start-up overhead"
argument bounds the loss), a worker consumes master-port time at rate
``2µc`` per ``µ²w`` of its own compute; the master port saturates at

    ``P = ceil(µ²·t·w / (2µ·t·c)) = ceil(µw / 2c)``

workers, hence the enrolment rule ``P = min(p, ceil(µw/2c))``.

For "small" matrices (fewer than ``P·µ²`` C blocks) the paper shrinks
the chunk to ``ν ≤ µ``: the largest ν such that ``ceil(νw/2c)·ν² ≤ r·s``,
enrolling ``Q = ceil(νw/2c)`` workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.blocks.shape import ProblemShape
from repro.core.layout import mu_overlap
from repro.platform.model import Platform

__all__ = [
    "optimal_worker_count",
    "small_matrix_nu",
    "HomogeneousPlan",
    "plan_homogeneous",
    "plan_homogeneous_batch",
    "startup_overhead_fraction",
]


def optimal_worker_count(mu: int, c: float, w: float, p: int) -> int:
    """The paper's enrolment rule ``P = min(p, ceil(µw / 2c))``.

    This is the smallest worker count saturating the master's port:
    fewer workers leave the port idle, more workers starve.
    """
    if mu < 1:
        raise ValueError(f"mu must be >= 1, got {mu}")
    if c <= 0 or w <= 0:
        raise ValueError("c and w must be positive")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return min(p, math.ceil(mu * w / (2.0 * c)))


def small_matrix_nu(r: int, s: int, c: float, w: float, mu: int, p: int) -> tuple[int, int]:
    """Chunk size and worker count for small matrices.

    Returns ``(ν, Q)``: the largest ``ν ≤ µ`` with
    ``ceil(νw/2c) · ν² ≤ r·s`` and ``Q = min(p, ceil(νw/2c))``.  Falls
    back to ``ν = 1`` when even a single column tile is too big (the
    degenerate case of a tiny C).
    """
    if r < 1 or s < 1:
        raise ValueError("r and s must be >= 1")
    best = 1
    for nu in range(1, mu + 1):
        workers = math.ceil(nu * w / (2.0 * c))
        if workers * nu * nu <= r * s:
            best = nu
    q_workers = min(p, math.ceil(best * w / (2.0 * c)))
    return best, max(1, q_workers)


@dataclass(frozen=True)
class HomogeneousPlan:
    """Outcome of homogeneous resource selection.

    Attributes:
        mu: chunk side actually used (µ, or the shrunken ν).
        workers: number of enrolled workers (P, or Q for small matrices).
        small_matrix: True when the ν fallback was taken.
        saturated: True when the selection is limited by the platform
            size ``p`` rather than by the port-saturation rule.
    """

    mu: int
    workers: int
    small_matrix: bool
    saturated: bool


def plan_homogeneous(platform: Platform, shape: ProblemShape) -> HomogeneousPlan:
    """Run the full Section 5 selection for ``shape`` on ``platform``.

    Defined for homogeneous platforms; on a *nearly* homogeneous one
    (e.g. the jittered platforms of the Figure 11 study) the plan is
    computed conservatively from the slowest link, slowest CPU and
    smallest memory, which keeps the schedule feasible on every worker.
    """
    c = max(wk.c for wk in platform.workers)
    w = max(wk.w for wk in platform.workers)
    m = min(wk.m for wk in platform.workers)
    mu = mu_overlap(m)
    p_opt = math.ceil(mu * w / (2.0 * c))
    enrolled = min(platform.p, p_opt)
    if enrolled * mu * mu <= shape.r * shape.s:
        return HomogeneousPlan(
            mu=mu,
            workers=enrolled,
            small_matrix=False,
            saturated=p_opt > platform.p,
        )
    nu, q_workers = small_matrix_nu(shape.r, shape.s, c, w, mu, platform.p)
    return HomogeneousPlan(
        mu=nu, workers=q_workers, small_matrix=True, saturated=False
    )


def plan_homogeneous_batch(
    c: np.ndarray, w: np.ndarray, m: np.ndarray, p: int, shape: ProblemShape
) -> list[tuple[int, int, bool]]:
    """Vectorized :func:`plan_homogeneous` over a batch of platforms.

    ``c``/``w``/``m`` hold each platform's conservative rates (slowest
    link, slowest CPU, smallest memory) as ``(n,)`` arrays; every
    platform has ``p`` workers.  Returns one ``(mu, workers,
    small_matrix)`` triple per row, equal to the corresponding
    :func:`plan_homogeneous` fields: the enrolment rule is the same
    float64 expression evaluated element-wise, and the rare small-matrix
    rows take the scalar ν search.
    """
    mu = np.empty(m.shape[0], dtype=np.int64)
    for mem in np.unique(m):
        mu[m == mem] = mu_overlap(int(mem))
    p_opt = np.ceil(mu * w / (2.0 * c))
    enrolled = np.minimum(float(p), p_opt).astype(np.int64)
    large = enrolled * mu * mu <= shape.r * shape.s
    plans: list[tuple[int, int, bool]] = []
    mu_l, en_l, large_l = mu.tolist(), enrolled.tolist(), large.tolist()
    for row, big in enumerate(large_l):
        if big:
            plans.append((mu_l[row], en_l[row], False))
        else:
            nu, q = small_matrix_nu(
                shape.r, shape.s, float(c[row]), float(w[row]), mu_l[row], p
            )
            plans.append((nu, q, True))
    return plans


def startup_overhead_fraction(mu: int, t: int, c: float, w: float) -> float:
    """Upper bound on the time lost to unoverlapped C traffic.

    Section 5 ("Impact of the start-up overhead"): each worker loses
    ``2c`` per C block, i.e. per ``t·w`` time units, and with
    ``P ≤ µw/2c + 1`` workers the total loss fraction is below
    ``µ/t + 2c/(t·w)``.  The paper's example (c=2, w=4.5, µ=4, t=100)
    gives ≈ 4 %.
    """
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    return mu / t + 2.0 * c / (t * w)
