"""Worker memory layouts: splitting ``m`` block buffers among A, B, C.

The paper's layouts, all parameterised by a *chunk size* µ:

* **Maximum re-use** (Section 4.1): ``1 + µ + µ² ≤ m`` — one A buffer, a
  row of µ B buffers, a µ×µ tile of C.  Minimises communications per
  computation on a single worker; no overlap of communication with
  computation.
* **Overlap layout** (Section 5): ``µ² + 4µ ≤ m`` — the µ×µ C tile plus
  *two* generations of (µ A + µ B) buffers so the next update's data can
  arrive while the current one computes.  Used by HoLM / ORROML /
  OMMOML / ODDOML.
* **No-overlap layout**: ``µ² + 2µ ≤ m`` — a single generation of A/B
  buffers.  Used by DDOML ("the algorithm has no extra buffer, so the
  memory available to store A, B, and C is greater").
* **Toledo thirds** (BMM): memory split equally into three square-tile
  slots of side ``sqrt(m/3)`` blocks for A, B and C.
* **Overlapped Toledo fifths** (OBMM): five parts, so one A and one B
  tile can stream in while the previous pair updates C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "max_reuse_mu",
    "mu_overlap",
    "mu_no_overlap",
    "toledo_split",
    "overlapped_toledo_split",
    "MemoryLayout",
]


def _check_m(m: int, minimum: int) -> None:
    if not isinstance(m, int):
        raise TypeError(f"m must be an int, got {type(m).__name__}")
    if m < minimum:
        raise ValueError(f"memory m={m} too small (need at least {minimum} blocks)")


def max_reuse_mu(m: int) -> int:
    """Largest µ with ``1 + µ + µ² ≤ m`` (maximum re-use layout).

    E.g. ``m=21 → µ=4`` (1 A buffer + 4 B buffers + 16 C buffers, Fig. 5).
    """
    _check_m(m, 3)
    # mu = floor of positive root of mu^2 + mu + (1 - m) = 0.
    mu = int((math.isqrt(4 * m - 3) - 1) // 2)
    while (mu + 1) * (mu + 1) + (mu + 1) + 1 <= m:  # guard fp edge cases
        mu += 1
    while mu * mu + mu + 1 > m:
        mu -= 1
    if mu < 1:
        raise ValueError(f"memory m={m} cannot hold the max-re-use layout")
    return mu


def mu_overlap(m: int) -> int:
    """Largest µ with ``µ² + 4µ ≤ m`` (overlap layout, Algorithm 1).

    The paper computes it as ``µ = floor(sqrt(4 + m) - 2)``.
    """
    _check_m(m, 5)
    mu = int(math.isqrt(m + 4)) - 2
    while (mu + 1) ** 2 + 4 * (mu + 1) <= m:
        mu += 1
    while mu * mu + 4 * mu > m:
        mu -= 1
    if mu < 1:
        raise ValueError(f"memory m={m} cannot hold the overlap layout")
    return mu


def mu_no_overlap(m: int) -> int:
    """Largest µ with ``µ² + 2µ ≤ m`` (single-generation layout, DDOML)."""
    _check_m(m, 3)
    mu = int(math.isqrt(m + 1)) - 1
    while (mu + 1) ** 2 + 2 * (mu + 1) <= m:
        mu += 1
    while mu * mu + 2 * mu > m:
        mu -= 1
    if mu < 1:
        raise ValueError(f"memory m={m} cannot hold the no-overlap layout")
    return mu


def toledo_split(m: int) -> int:
    """Tile side for Toledo's BMM layout: memory in three equal parts.

    Each of A, B, C gets ``m // 3`` buffers arranged as the largest
    possible square tile; returns its side ``floor(sqrt(m/3))`` in blocks.
    """
    _check_m(m, 3)
    side = math.isqrt(m // 3)
    if side < 1:
        raise ValueError(f"memory m={m} too small for the Toledo split")
    return side


def overlapped_toledo_split(m: int) -> int:
    """Tile side for OBMM: memory in five parts (C + two A/B generations)."""
    _check_m(m, 5)
    side = math.isqrt(m // 5)
    if side < 1:
        raise ValueError(f"memory m={m} too small for the OBMM split")
    return side


@dataclass(frozen=True)
class MemoryLayout:
    """A concrete buffer assignment on one worker.

    Attributes:
        mu: chunk side — the worker holds a µ×µ tile of C.
        a_buffers: buffers reserved for A blocks.
        b_buffers: buffers reserved for B blocks.
        c_buffers: buffers reserved for C blocks (µ²).
        overlap: whether a second generation of A/B buffers exists.
    """

    mu: int
    a_buffers: int
    b_buffers: int
    c_buffers: int
    overlap: bool

    @property
    def total(self) -> int:
        """Total buffers used."""
        return self.a_buffers + self.b_buffers + self.c_buffers

    @staticmethod
    def max_reuse(m: int) -> "MemoryLayout":
        """The Section 4.1 layout: 1 A, µ B, µ² C buffers."""
        mu = max_reuse_mu(m)
        return MemoryLayout(mu, 1, mu, mu * mu, overlap=False)

    @staticmethod
    def overlapped(m: int) -> "MemoryLayout":
        """The Section 5 layout: 2µ A, 2µ B, µ² C buffers."""
        mu = mu_overlap(m)
        return MemoryLayout(mu, 2 * mu, 2 * mu, mu * mu, overlap=True)

    @staticmethod
    def single_generation(m: int) -> "MemoryLayout":
        """The DDOML layout: µ A, µ B, µ² C buffers, no overlap."""
        mu = mu_no_overlap(m)
        return MemoryLayout(mu, mu, mu, mu * mu, overlap=False)

    def fits(self, m: int) -> bool:
        """True when the layout fits into ``m`` buffers."""
        return self.total <= m
