"""Communication-to-computation ratio (CCR) bounds — Section 4.

Everything is counted in *blocks*: a communication is moving one q×q
block to or from the master; a computation is one block update
``C_ij += A_ik · B_kj``.

Results reproduced here:

* the **maximum re-use algorithm** achieves
  ``CCR(m, t) = 2/t + 2/µ`` with ``µ = max_reuse_mu(m)``, hence
  asymptotically ``CCR∞ = 2/sqrt(m)`` (Section 4.2);
* the **refined Toledo bound**: any standard algorithm has
  ``CCR ≥ sqrt(27/(32 m))`` (via the Hong–Kung-style lemma of [38]);
* the **Loomis–Whitney bound** (the paper's headline result):
  ``CCR ≥ sqrt(27/(8 m))``, obtained by replacing the lemma with the
  inequality ``K ≤ sqrt(N_A · N_B · N_C)`` of Irony–Toledo–Tiskin [27];
* both improve on the best previously published ``sqrt(1/(8m))`` of [27];
* the gap: ``CCR∞ / CCR_opt = sqrt(32/27) ≈ 1.088``.

The underlying maximisation (find the best constant ``k``) is exposed in
:func:`solve_k_bound` both in closed form and via ``scipy.optimize`` so
the tests can cross-check the paper's algebra.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np
from scipy.optimize import minimize

from repro.core.layout import max_reuse_mu

__all__ = [
    "hong_kung_bound",
    "loomis_whitney_bound",
    "ccr_max_reuse",
    "ccr_max_reuse_asymptotic",
    "ccr_lower_bound_toledo_refined",
    "ccr_lower_bound_loomis_whitney",
    "ccr_lower_bound_irony_toledo_tiskin",
    "solve_k_bound",
]


def hong_kung_bound(n_a: float, n_b: float, n_c: float) -> float:
    """Max block updates doable touching ``n_a``/``n_b``/``n_c`` blocks.

    The lemma quoted from Toledo [38]: for any standard (non-Strassen)
    algorithm accessing ``N_A`` elements of A, ``N_B`` of B and ``N_C``
    of C, at most
    ``K = min{(N_A+N_B)·sqrt(N_C), (N_A+N_C)·sqrt(N_B), (N_B+N_C)·sqrt(N_A)}``
    elementary multiply-accumulates are possible.  Stated here directly in
    block units (the q³ factors cancel in the CCR).
    """
    if min(n_a, n_b, n_c) < 0:
        raise ValueError("block counts must be non-negative")
    return min(
        (n_a + n_b) * math.sqrt(n_c),
        (n_a + n_c) * math.sqrt(n_b),
        (n_b + n_c) * math.sqrt(n_a),
    )


def loomis_whitney_bound(n_a: float, n_b: float, n_c: float) -> float:
    """Loomis–Whitney bound ``K = sqrt(N_A · N_B · N_C)`` (block units).

    From Irony, Toledo and Tiskin [27]: the number of useful
    multiply-accumulates is at most the square root of the product of the
    accessed-element counts.  Tighter than :func:`hong_kung_bound` for
    balanced access patterns.
    """
    if min(n_a, n_b, n_c) < 0:
        raise ValueError("block counts must be non-negative")
    return math.sqrt(n_a * n_b * n_c)


def ccr_max_reuse(m: int, t: int) -> float:
    """CCR of the maximum re-use algorithm: ``2/t + 2/µ``.

    One outer iteration moves ``2µ²`` C blocks (in and out) plus
    ``2µ·t`` A and B blocks, and performs ``µ²·t`` updates.
    """
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    mu = max_reuse_mu(m)
    return 2.0 / t + 2.0 / mu


def ccr_max_reuse_asymptotic(m: int) -> float:
    """Asymptotic (t → ∞) CCR of maximum re-use.

    The paper states ``CCR∞ = 2/sqrt(m)`` (folding ``µ ≈ sqrt(m)``);
    we report the exact ``2/µ`` with the integer µ, which converges to
    ``2/sqrt(m)`` and equals the paper's ``sqrt(32/(8m))`` rewriting.
    """
    return 2.0 / max_reuse_mu(m)


def ccr_lower_bound_toledo_refined(m: int) -> float:
    """The paper's refinement of Toledo's analysis: ``sqrt(27/(32 m))``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return math.sqrt(27.0 / (32.0 * m))


def ccr_lower_bound_loomis_whitney(m: int) -> float:
    """The paper's headline lower bound: ``CCR_opt = sqrt(27/(8 m))``.

    Any standard matrix-product algorithm on a worker with ``m`` block
    buffers communicates at least ``sqrt(27/(8m))`` blocks per block
    update, asymptotically.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return math.sqrt(27.0 / (8.0 * m))


def ccr_lower_bound_irony_toledo_tiskin(m: int) -> float:
    """The best previously known bound, ``sqrt(1/(8m))``, from [27].

    Kept for the comparison the paper makes: its new bound improves this
    by a factor ``sqrt(27) ≈ 5.2``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return math.sqrt(1.0 / (8.0 * m))


def solve_k_bound(
    lemma: Literal["hong-kung", "loomis-whitney"] = "loomis-whitney",
    method: Literal["closed-form", "numeric"] = "closed-form",
) -> tuple[float, tuple[float, float, float]]:
    """Solve the Section 4.2 maximisation for the constant ``k``.

    During ``m`` consecutive communication steps, write the accessed
    block fractions as ``α·m``, ``β·m``, ``γ·m`` with the constraint
    ``α + β + γ ≤ 2`` (old content plus received/sent blocks).  The
    number of updates is ``K = k·m·sqrt(m)·q³`` where

    * Hong–Kung lemma:  ``k = min((α+β)√γ, (β+γ)√α, (γ+α)√β)``,
      maximised at ``α = β = γ = 2/3`` giving ``k = sqrt(32/27)``;
    * Loomis–Whitney:  ``K = sqrt(N_A N_B N_C)`` gives ``k = sqrt(αβγ)``,
      maximised at ``α = β = γ = 2/3`` giving ``k = sqrt(8/27)``.

    Returns ``(k, (α, β, γ))`` at the optimum.  ``method="numeric"``
    solves the program with scipy instead of quoting the closed form,
    which the test-suite uses to validate the algebra.
    """
    if lemma not in ("hong-kung", "loomis-whitney"):
        raise ValueError(f"unknown lemma {lemma!r}")
    if method == "closed-form":
        point = (2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0)
        if lemma == "hong-kung":
            return math.sqrt(32.0 / 27.0), point
        return math.sqrt(8.0 / 27.0), point
    if method != "numeric":
        raise ValueError(f"unknown method {method!r}")

    def negative_k(x: np.ndarray) -> float:
        a, b, g = np.maximum(x, 1e-12)
        if lemma == "hong-kung":
            val = min(
                (a + b) * math.sqrt(g), (b + g) * math.sqrt(a), (g + a) * math.sqrt(b)
            )
        else:
            val = math.sqrt(a * b * g)
        return -val

    best_val, best_x = -math.inf, None
    # The objective is concave-ish on the simplex slice; multi-start for safety.
    for start in ([0.6, 0.7, 0.7], [0.5, 0.5, 1.0], [0.9, 0.6, 0.5], [2 / 3] * 3):
        res = minimize(
            negative_k,
            np.asarray(start),
            method="SLSQP",
            bounds=[(1e-9, 2.0)] * 3,
            constraints=[{"type": "ineq", "fun": lambda x: 2.0 - float(np.sum(x))}],
        )
        if res.success and -res.fun > best_val:
            best_val, best_x = -res.fun, res.x
    if best_x is None:  # pragma: no cover - scipy failure
        raise RuntimeError("numeric k-bound optimisation failed")
    return best_val, (float(best_x[0]), float(best_x[1]), float(best_x[2]))
