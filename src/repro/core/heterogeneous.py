"""Heterogeneous resource selection — Section 6.

Three layers, in increasing realism:

1. :func:`bandwidth_centric_steady_state` — the steady-state linear
   program of Section 6.1.  Maximise ``Σ x_i`` (block updates per time
   unit) subject to ``x_i ≤ 1/w_i`` and the master-port constraint
   ``Σ (2 c_i/µ_i) x_i ≤ 1``.  The optimum is bandwidth-centric: sort
   workers by non-decreasing ``2 c_i/µ_i`` and enroll greedily.  This is
   an *upper bound*: with bounded memory the schedule may be unrealisable.
2. :func:`simulate_bandwidth_centric_feasibility` — quantifies the
   Table 1 phenomenon: how many blocks a worker must buffer to ride out
   the master's service of the other enrolled workers, versus how many
   buffers it actually has.
3. :func:`global_selection` / :func:`local_selection` /
   :func:`lookahead_selection` — the incremental selection algorithms of
   Section 6.2 (Algorithm 3 and its variants), which build the actual
   allocation step by step through a time-faithful simulation.

All selection functions return a :class:`SelectionResult` carrying the
selection sequence, the communication/computation intervals (used to
regenerate Figures 7 and 8) and the asymptotic computation-per-
communication ratio (1.17 / 1.21 / 1.30 on the Table 2 platform).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.layout import mu_overlap
from repro.platform.model import Platform, Worker

__all__ = [
    "SteadyState",
    "bandwidth_centric_steady_state",
    "steady_state_linprog",
    "BufferFeasibility",
    "simulate_bandwidth_centric_feasibility",
    "SelectionResult",
    "global_selection",
    "local_selection",
    "lookahead_selection",
]


def chunk_sizes(platform: Platform) -> list[int]:
    """Per-worker chunk sides ``µ_i`` from the overlap layout
    ``µ_i² + 4µ_i ≤ m_i`` (Section 6 preamble)."""
    return [mu_overlap(wk.m) for wk in platform.workers]


# ---------------------------------------------------------------------------
# Section 6.1 — steady-state LP
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SteadyState:
    """Solution of the Section 6.1 linear program.

    Attributes:
        x: per-worker computation rates (block updates per time unit).
        y: per-worker reception rates (blocks per time unit),
           ``y_i = 2 x_i / µ_i``.
        throughput: ``Σ x_i``, the paper's ρ.
        enrolled: 1-based indices of workers with ``x_i > 0``.
        saturated_worker: index of the (at most one) partially-enrolled
            worker limited by bandwidth rather than CPU, or ``None``.
    """

    x: tuple[float, ...]
    y: tuple[float, ...]
    throughput: float
    enrolled: tuple[int, ...]
    saturated_worker: Optional[int]

    def port_utilisation(self, platform: Platform) -> float:
        """Fraction of master-port time used, ``Σ y_i c_i`` (≤ 1)."""
        return sum(yi * wk.c for yi, wk in zip(self.y, platform.workers))


def bandwidth_centric_steady_state(
    platform: Platform, mu: Optional[Sequence[int]] = None
) -> SteadyState:
    """Closed-form optimum of the steady-state LP (bandwidth-centric).

    Sort workers by non-decreasing ``2c_i/µ_i`` (cheapest port time per
    delivered chunk first); enroll each fully (``x_i = 1/w_i``) while the
    port constraint ``Σ 2c_i x_i/µ_i ≤ 1`` holds; give the first worker
    that does not fit the leftover port fraction.

    On the Table 2 platform this yields ρ = 25/18 ≈ 1.39.
    """
    mus = list(mu) if mu is not None else chunk_sizes(platform)
    if len(mus) != platform.p:
        raise ValueError("mu must have one entry per worker")
    order = sorted(
        range(platform.p), key=lambda i: 2.0 * platform.workers[i].c / mus[i]
    )
    x = [0.0] * platform.p
    port_left = 1.0
    saturated: Optional[int] = None
    for i in order:
        wk = platform.workers[i]
        cost_per_x = 2.0 * wk.c / mus[i]  # port time per unit compute rate
        full_x = 1.0 / wk.w
        if cost_per_x * full_x <= port_left + 1e-15:
            x[i] = full_x
            port_left -= cost_per_x * full_x
        else:
            x[i] = port_left / cost_per_x
            port_left = 0.0
            if x[i] > 0:
                saturated = i + 1
            break
    y = [2.0 * xi / mui for xi, mui in zip(x, mus)]
    enrolled = tuple(i + 1 for i in range(platform.p) if x[i] > 1e-15)
    return SteadyState(
        x=tuple(x),
        y=tuple(y),
        throughput=sum(x),
        enrolled=enrolled,
        saturated_worker=saturated,
    )


def steady_state_linprog(
    platform: Platform, mu: Optional[Sequence[int]] = None
) -> SteadyState:
    """Solve the same LP with ``scipy.optimize.linprog`` (cross-check).

    Variables are the ``x_i``; maximise ``Σ x_i`` s.t. ``x_i ≤ 1/w_i``
    and ``Σ (2c_i/µ_i) x_i ≤ 1``.
    """
    mus = list(mu) if mu is not None else chunk_sizes(platform)
    p = platform.p
    c_row = [2.0 * wk.c / mui for wk, mui in zip(platform.workers, mus)]
    res = linprog(
        c=[-1.0] * p,
        A_ub=[c_row],
        b_ub=[1.0],
        bounds=[(0.0, 1.0 / wk.w) for wk in platform.workers],
        method="highs",
    )
    if not res.success:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"steady-state LP failed: {res.message}")
    x = tuple(float(v) for v in res.x)
    y = tuple(2.0 * xi / mui for xi, mui in zip(x, mus))
    enrolled = tuple(i + 1 for i in range(p) if x[i] > 1e-9)
    return SteadyState(
        x=x, y=y, throughput=float(-res.fun), enrolled=enrolled, saturated_worker=None
    )


# ---------------------------------------------------------------------------
# Section 6.1 — memory feasibility of the steady state (Table 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BufferFeasibility:
    """Buffer demand of the steady-state schedule on one worker.

    Attributes:
        worker: 1-based index.
        needed_blocks: A/B blocks the worker must hold to stay busy while
            the master serves the other enrolled workers once each.
        available_blocks: A/B buffers the worker actually has beyond the
            C tile (``m_i - µ_i²``).
        feasible: ``needed_blocks ≤ available_blocks``.
    """

    worker: int
    needed_blocks: float
    available_blocks: int
    feasible: bool


def simulate_bandwidth_centric_feasibility(
    platform: Platform, mu: Optional[Sequence[int]] = None
) -> list[BufferFeasibility]:
    """Check whether the bandwidth-centric schedule fits in memory.

    The paper's Table 1 argument: in steady state the master alternates
    chunk deliveries.  While it spends ``2µ_j c_j`` serving worker ``j``,
    enrolled worker ``i`` burns through buffered data at rate ``2/(µ_i
    w_i)`` blocks per time unit.  Over one service round of all *other*
    enrolled workers, ``i`` needs

        ``needed_i = Σ_{j≠i} 2µ_j c_j · 2/(µ_i w_i)``

    blocks in reserve, but only has ``m_i − µ_i²`` buffers for A/B data.
    On Table 1 worker P1 needs 40 blocks (20 chunks' worth of A+B =
    the paper's "as many as 20 blocks" of each kind) against 12 buffers.
    """
    mus = list(mu) if mu is not None else chunk_sizes(platform)
    steady = bandwidth_centric_steady_state(platform, mus)
    enrolled = set(steady.enrolled)
    out: list[BufferFeasibility] = []
    for i, wk in enumerate(platform.workers, start=1):
        if i not in enrolled:
            out.append(BufferFeasibility(i, 0.0, wk.m - mus[i - 1] ** 2, True))
            continue
        gap = sum(
            2.0 * mus[j - 1] * platform.worker(j).c for j in enrolled if j != i
        )
        needed = gap * 2.0 / (mus[i - 1] * wk.w)
        available = wk.m - mus[i - 1] ** 2
        out.append(BufferFeasibility(i, needed, available, needed <= available))
    return out


# ---------------------------------------------------------------------------
# Section 6.2 — incremental selection (Algorithm 3 and variants)
# ---------------------------------------------------------------------------


@dataclass
class _SelState:
    """Mutable simulation state shared by all selection variants.

    Mirrors Algorithm 3's variables: ``completion_time`` (end of the last
    communication), per-worker ``ready`` times, per-worker block counts
    and the accumulated ``total_work``.
    """

    platform: Platform
    mus: list[int]
    completion_time: float = 0.0
    total_work: float = 0.0
    ready: list[float] = field(default_factory=list)
    nb_block: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.ready = [0.0] * self.platform.p
        self.nb_block = [0.0] * self.platform.p

    def apply(self, idx: int) -> tuple[float, float, float, float]:
        """Commit the selection of worker ``idx`` (0-based).

        Returns ``(comm_start, comm_end, compute_start, compute_end)``
        for trace recording.  Communication is rendered right-aligned in
        the master-port window (the transfer itself takes ``2µc``; any
        earlier gap is master idle time waiting for the worker's memory
        to free up).
        """
        wk = self.platform.workers[idx]
        mu = self.mus[idx]
        comm_time = 2.0 * mu * wk.c
        new_completion = max(self.completion_time + comm_time, self.ready[idx])
        comm_start = new_completion - comm_time
        self.completion_time = new_completion
        compute_start = new_completion
        self.ready[idx] = new_completion + mu * mu * wk.w
        self.nb_block[idx] += 2 * mu
        self.total_work += mu * mu
        return comm_start, new_completion, compute_start, self.ready[idx]

    def preview(self, idx: int) -> tuple[float, float, float]:
        """Hypothetical (total_work', completion', ready') after selecting
        ``idx``, without mutating state."""
        wk = self.platform.workers[idx]
        mu = self.mus[idx]
        new_completion = max(
            self.completion_time + 2.0 * mu * wk.c, self.ready[idx]
        )
        return (
            self.total_work + mu * mu,
            new_completion,
            new_completion + mu * mu * wk.w,
        )

    def columns_done(self, shape_r: int, t: int) -> float:
        """Algorithm 3's ``nb-column``: fully processed C block columns."""
        total = 0.0
        for i, mu in enumerate(self.mus):
            denom = 2.0 * mu * t * math.ceil(shape_r / mu)
            total += math.floor(self.nb_block[i] / denom) * mu
        return total


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of an incremental selection run.

    Attributes:
        sequence: 1-based worker index of each communication, in order.
        comm_intervals: per communication ``(worker, start, end)`` on the
            master port.
        compute_intervals: per communication ``(worker, start, end)`` of
            the enabled chunk update on the worker.
        total_work: block updates assigned.
        completion_time: end of the last communication.
        ratio: ``total_work / completion_time`` — the paper's
            computation-per-communication ratio.
        chunks_per_worker: how many times each worker was selected.
        columns_per_worker: full C block columns allocated to each worker
            (phase-1 output used by the phase-2 execution).
    """

    sequence: tuple[int, ...]
    comm_intervals: tuple[tuple[int, float, float], ...]
    compute_intervals: tuple[tuple[int, float, float], ...]
    total_work: float
    completion_time: float
    ratio: float
    chunks_per_worker: tuple[int, ...]
    columns_per_worker: tuple[int, ...]


def _run_selection(
    platform: Platform,
    r: int,
    s: int,
    t: int,
    choose: Optional[Callable[[_SelState], int]],
    mu: Optional[Sequence[int]],
    max_steps: Optional[int],
    commit_plan: Optional[Callable[[_SelState], Sequence[int]]] = None,
) -> SelectionResult:
    """Common driver: iterate ``choose`` until ``s`` columns are covered.

    ``commit_plan``, when given, supersedes ``choose`` and may commit
    several selections per iteration (used by the lookahead variant).
    """
    mus = list(mu) if mu is not None else chunk_sizes(platform)
    if len(mus) != platform.p:
        raise ValueError("mu must have one entry per worker")
    state = _SelState(platform, mus)
    sequence: list[int] = []
    comms: list[tuple[int, float, float]] = []
    computes: list[tuple[int, float, float]] = []
    step_cap = max_steps if max_steps is not None else 10_000_000

    def commit(idx: int) -> None:
        c0, c1, k0, k1 = state.apply(idx)
        sequence.append(idx + 1)
        comms.append((idx + 1, c0, c1))
        computes.append((idx + 1, k0, k1))

    while state.columns_done(r, t) < s and len(sequence) < step_cap:
        if commit_plan is not None:
            for idx in commit_plan(state):
                commit(idx)
        else:
            commit(choose(state))

    counts = [0] * platform.p
    for widx in sequence:
        counts[widx - 1] += 1
    columns = [
        int(math.floor(state.nb_block[i] / (2.0 * mus[i] * t * math.ceil(r / mus[i]))))
        * mus[i]
        for i in range(platform.p)
    ]
    ratio = state.total_work / state.completion_time if state.completion_time else 0.0
    return SelectionResult(
        sequence=tuple(sequence),
        comm_intervals=tuple(comms),
        compute_intervals=tuple(computes),
        total_work=state.total_work,
        completion_time=state.completion_time,
        ratio=ratio,
        chunks_per_worker=tuple(counts),
        columns_per_worker=tuple(columns),
    )


def global_selection(
    platform: Platform,
    r: int,
    s: int,
    t: int,
    mu: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
) -> SelectionResult:
    """Algorithm 3 — the *global* selection algorithm.

    At each step pick the worker maximising

        ``(total_work + µ_i²) / max(completion_time + 2µ_i c_i, ready_i)``

    i.e. the best ratio of all work assigned so far (including this
    chunk) over the time at which this communication would complete.
    On Table 2 the asymptotic ratio is ≈ 1.17.
    """

    def choose(state: _SelState) -> int:
        best_idx, best_ratio = 0, -math.inf
        for i in range(state.platform.p):
            work, completion, _ready = state.preview(i)
            ratio = work / completion
            if ratio > best_ratio + 1e-12:
                best_idx, best_ratio = i, ratio
        return best_idx

    return _run_selection(platform, r, s, t, choose, mu, max_steps)


def local_selection(
    platform: Platform,
    r: int,
    s: int,
    t: int,
    mu: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
) -> SelectionResult:
    """The *local* selection algorithm (Section 6.2.2).

    Pick the worker maximising the work enabled by this communication
    over the port time it monopolises:

        ``µ_i² / max(2µ_i c_i, ready_i − completion_time)``

    On Table 2 the asymptotic ratio is ≈ 1.21 (better than global here,
    though neither dominates in general).
    """

    def choose(state: _SelState) -> int:
        best_idx, best_ratio = 0, -math.inf
        for i in range(state.platform.p):
            wk = state.platform.workers[i]
            m = state.mus[i]
            denom = max(2.0 * m * wk.c, state.ready[i] - state.completion_time)
            ratio = m * m / denom if denom > 0 else math.inf
            if ratio > best_ratio + 1e-12:
                best_idx, best_ratio = i, ratio
        return best_idx

    return _run_selection(platform, r, s, t, choose, mu, max_steps)


def lookahead_selection(
    platform: Platform,
    r: int,
    s: int,
    t: int,
    depth: int = 2,
    mu: Optional[Sequence[int]] = None,
    max_steps: Optional[int] = None,
    commit: int = 1,
) -> SelectionResult:
    """Global selection with ``depth``-step lookahead.

    Evaluates every ordered ``depth``-tuple of workers and scores the
    state reached after the whole tuple by the global criterion (total
    work over completion time) — the paper's "search for the best pair
    of workers to select for the next two communications".  ``commit``
    controls how many selections of the best tuple are actually taken
    before re-planning; the receding-horizon default (``commit=1``)
    reproduces the paper's Table 2 ratio of ≈ 1.30 with ``depth=2``
    (committing the full pair yields ≈ 1.28).
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if not 1 <= commit <= depth:
        raise ValueError(f"commit must be in 1..depth, got {commit}")

    def plan(state: _SelState) -> Sequence[int]:
        best_tuple: Optional[tuple[int, ...]] = None
        best_ratio = -math.inf
        for combo in iter_product(range(state.platform.p), repeat=depth):
            # Simulate the tuple on a scratch copy of the state.
            scratch = _SelState(state.platform, state.mus)
            scratch.completion_time = state.completion_time
            scratch.total_work = state.total_work
            scratch.ready = list(state.ready)
            scratch.nb_block = list(state.nb_block)
            for idx in combo:
                scratch.apply(idx)
            ratio = scratch.total_work / scratch.completion_time
            if ratio > best_ratio + 1e-12:
                best_ratio, best_tuple = ratio, combo
        assert best_tuple is not None
        return best_tuple[:commit]

    return _run_selection(
        platform, r, s, t, choose=None, mu=mu, max_steps=max_steps, commit_plan=plan
    )
