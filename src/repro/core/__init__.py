"""The paper's core contribution.

* :mod:`repro.core.layout` — memory layouts: how a worker's ``m`` block
  buffers are split among A, B and C, including the *maximum re-use*
  layout (Section 4.1) and the variants used by the Section 8 algorithms.
* :mod:`repro.core.bounds` — communication-to-computation lower bounds:
  the refined Toledo bound and the Loomis–Whitney bound
  ``CCR_opt = sqrt(27/(8m))`` (Section 4.2).
* :mod:`repro.core.homogeneous` — resource selection for homogeneous
  platforms (Section 5): ``P = min(p, ceil(µw/2c))`` plus the
  small-matrix fallback.
* :mod:`repro.core.heterogeneous` — Section 6: bandwidth-centric
  steady-state LP, its memory-feasibility check, and the global / local /
  lookahead incremental selection algorithms.
"""

from repro.core.bounds import (
    ccr_lower_bound_loomis_whitney,
    ccr_lower_bound_toledo_refined,
    ccr_lower_bound_irony_toledo_tiskin,
    ccr_max_reuse,
    ccr_max_reuse_asymptotic,
    hong_kung_bound,
    loomis_whitney_bound,
    solve_k_bound,
)
from repro.core.layout import (
    MemoryLayout,
    max_reuse_mu,
    mu_no_overlap,
    mu_overlap,
    toledo_split,
    overlapped_toledo_split,
)
from repro.core.homogeneous import (
    HomogeneousPlan,
    optimal_worker_count,
    plan_homogeneous,
    small_matrix_nu,
    startup_overhead_fraction,
)
from repro.core.heterogeneous import (
    SteadyState,
    SelectionResult,
    bandwidth_centric_steady_state,
    global_selection,
    local_selection,
    lookahead_selection,
    simulate_bandwidth_centric_feasibility,
)

__all__ = [
    "HomogeneousPlan",
    "MemoryLayout",
    "SelectionResult",
    "SteadyState",
    "bandwidth_centric_steady_state",
    "ccr_lower_bound_irony_toledo_tiskin",
    "ccr_lower_bound_loomis_whitney",
    "ccr_lower_bound_toledo_refined",
    "ccr_max_reuse",
    "ccr_max_reuse_asymptotic",
    "global_selection",
    "hong_kung_bound",
    "local_selection",
    "lookahead_selection",
    "loomis_whitney_bound",
    "max_reuse_mu",
    "mu_no_overlap",
    "mu_overlap",
    "optimal_worker_count",
    "overlapped_toledo_split",
    "plan_homogeneous",
    "simulate_bandwidth_centric_feasibility",
    "small_matrix_nu",
    "solve_k_bound",
    "startup_overhead_fraction",
    "toledo_split",
]
