"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list            # show available experiments
    python -m repro fig10           # run the Figure 10 reproduction
    python -m repro all             # run everything (slow)
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """Dispatch to an experiment's ``main()``; returns the exit code."""
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help", "list"):
        print("Available experiments:")
        for name, module in ALL_EXPERIMENTS.items():
            headline = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<10s} {headline}")
        print("  all        run every experiment in sequence")
        return 0
    name = args[0]
    if name == "all":
        for key, module in ALL_EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            module.main()
        return 0
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try 'python -m repro list'")
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
