"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list              # show available experiments
    python -m repro fig10             # run the Figure 10 reproduction
    python -m repro all               # run everything (slow)
    python -m repro sweep fig10 --jobs 4        # parallel + cached
    python -m repro sweep all --jobs 8 --scale 8
    python -m repro sweep fig10 --engine des    # force the DES oracle
    python -m repro sweep robustness --scenario dropout:0.5
    python -m repro cache info        # cache location, entries, size
    python -m repro cache clear       # drop every cached result

``sweep`` runs an experiment's campaign through the unified runner
(:mod:`repro.runner`): points fan out over ``--jobs`` worker processes
and results are memoized in a content-addressed on-disk cache, so a
repeated invocation completes without re-running any simulation.
Aggregated tables are identical to the plain serial path.

Exit codes: 0 on success, 2 for unknown experiment/sweep names or bad
arguments.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS, campaign_for


def _print_experiment_list() -> None:
    print("Available experiments:")
    for name, module in ALL_EXPERIMENTS.items():
        headline = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<10s} {headline}")
    print("  all        run every experiment in sequence")
    print(
        "\nSubcommands:\n"
        "  sweep NAME [--jobs N] [--no-cache] [--cache-dir D] [--scale K]\n"
        "             [--engine fast|des] [--scenario KIND[:SEVERITY]]\n"
        "             run NAME's campaign through the parallel cached runner\n"
        "  cache [info|clear] [--cache-dir D]\n"
        "             inspect or empty the sweep result cache"
    )


def _cmd_sweep(argv: list[str]) -> int:
    """``python -m repro sweep NAME`` — the parallel/cached runner."""
    from repro.analysis.tables import format_table
    from repro.runner import ResultCache, run_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run an experiment campaign through the sweep runner.",
    )
    parser.add_argument(
        "name", help="experiment name (see 'python -m repro list') or 'all'"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache-miss points (default 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point and write nothing to the cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default $REPRO_CACHE_DIR or ~/.cache/repro-sweeps)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, metavar="K",
        help="divide matrix dimensions by K where supported (quick runs)",
    )
    parser.add_argument(
        "--engine", choices=("fast", "des"), default="fast",
        help="simulation backend: the event-free fast timeline engine "
             "(default) or the discrete-event kernel (reference oracle)",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="KIND[:SEVERITY]",
        help="narrow scenario-aware campaigns (e.g. 'sweep robustness') to "
             "one non-stationarity family: drift, dropout, congestion or "
             "brownout, optionally pinning a severity in [0, 1] "
             "(see docs/scenarios.md); other campaigns ignore the knob",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress lines"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; try 'python -m repro list'")
        return 2
    if args.scenario is not None:
        from repro.scenarios import parse_scenario_arg

        try:
            parse_scenario_arg(args.scenario)
        except ValueError as exc:
            print(f"bad --scenario: {exc}")
            return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if not args.quiet:
        def progress(ev):  # noqa: ANN001 — repro.runner.Progress
            source = "cache" if ev.cached else f"{ev.seconds:6.2f}s"
            print(
                f"[{ev.sweep} {ev.index + 1}/{ev.total}] {source}",
                file=sys.stderr,
            )

    # Build every campaign before running any: a bad knob combination
    # (e.g. --scenario stationary on robustness) must fail fast with
    # exit 2, not crash mid-run after earlier campaigns computed.
    try:
        campaigns = [
            campaign_for(
                name, scale=args.scale, engine=args.engine,
                scenario=args.scenario,
            )
            for name in names
        ]
    except ValueError as exc:
        print(f"bad arguments: {exc}")
        return 2

    for name, campaign in zip(names, campaigns):
        result = run_campaign(
            campaign,
            jobs=args.jobs,
            cache=cache,
            progress=progress,
        )
        for sweep_result in result.sweeps:
            print(format_table(sweep_result.rows, title=sweep_result.title))
            print()
        print(
            f"{name}: {result.hits} cached, {result.misses} computed "
            f"in {result.elapsed:.2f}s"
            + ("" if cache else " (cache disabled)")
        )
    return 0


def _cmd_cache(argv: list[str]) -> int:
    """``python -m repro cache [info|clear]`` — cache maintenance."""
    from repro.runner import ResultCache

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or empty the sweep result cache.",
    )
    parser.add_argument(
        "action", nargs="?", default="info", choices=("info", "clear")
    )
    parser.add_argument("--cache-dir", default=None, metavar="DIR")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {stats.entries}")
    print(f"size      : {stats.bytes / 1024:.1f} KiB")
    print(f"sweeps    : {', '.join(stats.sweeps) if stats.sweeps else '(none)'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a subcommand or an experiment's ``main()``."""
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help", "list"):
        _print_experiment_list()
        return 0
    name = args[0]
    if name == "sweep":
        return _cmd_sweep(args[1:])
    if name == "cache":
        return _cmd_cache(args[1:])
    if name == "all":
        for key, module in ALL_EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            module.main()
        return 0
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try 'python -m repro list'")
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
