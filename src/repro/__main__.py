"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list              # show available experiments
    python -m repro fig10             # run the Figure 10 reproduction
    python -m repro all               # run everything (slow)
    python -m repro sweep fig10 --jobs 4        # parallel + cached
    python -m repro sweep all --jobs 8 --scale 8
    python -m repro sweep fig10 --engine des    # force the DES oracle
    python -m repro sweep fig10 --engine model  # analytic estimates only
    python -m repro sweep fig10 --prescreen 5   # model-rank, simulate top 5
    python -m repro sweep all --jobs 4 --backend persistent   # warm workers
    python -m repro sweep fig10 --resume        # finish a killed sweep
    python -m repro sweep robustness --scenario dropout:0.5
    python -m repro sweep fig10 --retries 2 --timeout 60      # fault tolerant
    python -m repro sweep fig10 --retries 2 --max-failures 5  # + breaker
    python -m repro sweep fig10 --chaos "fail=0.2,seed=7" --retries 2
    python -m repro sweep fig10 --resume --retry-quarantined
    python -m repro cache info        # cache location, entries, size (O(1))
    python -m repro cache rebuild     # re-derive manifests from entry files
    python -m repro cache compact     # fold dead manifest history away
    python -m repro cache clear       # drop every cached result
    python -m repro serve --jobs 4    # the long-lived sweep daemon
    python -m repro serve --status    # ask a running daemon for its state
    python -m repro sweep fig10 --backend remote   # dispatch through it

``sweep`` runs an experiment's campaign through the unified runner
(:mod:`repro.runner`): cache-miss points execute on the selected
``--backend`` (``serial`` inline, ``process`` fresh pool per sweep,
``persistent`` warm workers shared by every sweep of the invocation)
over ``--jobs`` workers, and results are memoized in a
manifest-indexed content-addressed on-disk cache, so a repeated
invocation completes without re-running any simulation and a killed
one picks up where it stopped (``--resume``).  Aggregated tables are
identical across every backend and the plain serial path.

The fault-tolerance layer (``docs/runner.md``) rides on top:
``--retries`` re-attempts failed points with deterministic backoff,
``--timeout`` bounds each point's wall clock inside the worker,
``--max-failures`` trips a circuit breaker that aborts the sweep with
a structured failure report, points that exhaust their retry budget
are quarantined in the cache manifest (skipped by later ``--resume``
runs unless ``--retry-quarantined``), and ``--chaos`` wraps the
backend in the deterministic fault injector to rehearse all of it.

``serve`` runs the crash-safe distributed sweep service
(``docs/serve.md``): a daemon owning one warm persistent pool and the
result cache, with ``sweep --backend remote`` campaigns dispatched to
it over a local socket — batch leases with progress heartbeats, client
reconnect with resume tokens, and a journaled request log that lets a
``kill -9``'d daemon restart consistently and its clients complete via
``--resume``.

Exit codes: 0 on success, 1 when a sweep point failed (aborting the
run, recorded under ``--keep-going``, or skipped as quarantined), 2
for unknown experiment/sweep names or bad arguments, 130/143 when an
in-flight ``sweep`` was interrupted by SIGINT/SIGTERM (workers are
torn down, the cache stays consistent, ``--resume`` finishes the run).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS, campaign_for


def _print_experiment_list() -> None:
    print("Available experiments:")
    for name, module in ALL_EXPERIMENTS.items():
        headline = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<10s} {headline}")
    print("  all        run every experiment in sequence")
    print(
        "\nSubcommands:\n"
        "  sweep NAME [--jobs N] [--backend auto|serial|process|persistent|remote]\n"
        "             [--socket P] [--resume] [--keep-going] [--no-cache]\n"
        "             [--cache-dir D] [--scale K] [--engine fast|des|model]\n"
        "             [--prescreen K] [--scenario KIND[:SEVERITY]]\n"
        "             [--retries N] [--timeout S] [--max-failures M]\n"
        "             [--chaos SPEC] [--retry-quarantined]\n"
        "             run NAME's campaign through the parallel cached runner\n"
        "  cache [info|rebuild|compact|clear] [--cache-dir D]\n"
        "             inspect, re-index, compact or empty the result cache\n"
        "  serve [--socket P] [--jobs N] [--cache-dir D] [--lease S]\n"
        "        [--ping | --status | --stop [--no-drain]]\n"
        "             run (or query) the crash-safe sweep service daemon"
    )


def _cmd_sweep(argv: list[str]) -> int:
    """``python -m repro sweep NAME`` — the parallel/cached runner."""
    from repro.analysis.tables import format_table
    from repro.runner import ResultCache, run_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run an experiment campaign through the sweep runner.",
    )
    parser.add_argument(
        "name", help="experiment name (see 'python -m repro list') or 'all'"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache-miss points (default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "persistent", "remote"),
        default="auto",
        help="execution backend: 'serial' runs inline, 'process' starts a "
             "fresh pool per sweep, 'persistent' keeps warm workers alive "
             "across every sweep of this invocation, 'remote' dispatches "
             "through a running 'repro serve' daemon's warm pool; 'auto' "
             "(default) picks serial for --jobs 1 and process otherwise.  "
             "An explicit choice is stamped into every point, so each "
             "backend keeps its own cache entries",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="with --backend remote: the daemon's socket (default "
             "$REPRO_SERVE_SOCKET or <cache dir>/serve.sock)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip points already listed in the sweep's cache manifest "
             "(one O(1) index read) and compute only the missing/failed "
             "rest — finishing a previously killed run without re-doing "
             "its completed points; requires the cache",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="record a failing point as an errored row and continue the "
             "sweep instead of aborting on the first failure",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point and write nothing to the cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default $REPRO_CACHE_DIR or ~/.cache/repro-sweeps)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, metavar="K",
        help="divide matrix dimensions by K where supported (quick runs)",
    )
    parser.add_argument(
        "--engine", choices=("fast", "des", "model"), default="fast",
        help="simulation backend: the event-free fast timeline engine "
             "(default), the discrete-event kernel (reference oracle), or "
             "the analytic model estimator (orders of magnitude faster, "
             "validated error envelope — see docs/engines.md)",
    )
    parser.add_argument(
        "--prescreen", type=float, default=None, metavar="K",
        help="rank every sweep point with the analytic model engine first "
             "and fully simulate only the K best (an integer count, or a "
             "fraction in (0,1) of each sweep).  Sweeps the model cannot "
             "screen run unfiltered with a warning",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="KIND[:SEVERITY]",
        help="narrow scenario-aware campaigns (e.g. 'sweep robustness') to "
             "one non-stationarity family: drift, dropout, congestion, "
             "brownout, randomwalk or multidrop, optionally pinning a "
             "severity in [0, 1] (see docs/scenarios.md); other campaigns "
             "ignore the knob",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-attempt each failed point up to N extra times with "
             "exponential, deterministically jittered backoff; points "
             "that fail every attempt are quarantined in the cache "
             "manifest so later --resume runs skip them",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-point wall-clock limit in seconds, enforced inside the "
             "worker by the process/persistent backends (the serial "
             "backend never interrupts a point); a timed-out point counts "
             "as a failure and is retried like any other",
    )
    parser.add_argument(
        "--max-failures", type=int, default=None, metavar="M",
        help="circuit breaker: abort the sweep with a structured failure "
             "report once M points have permanently failed (implies "
             "--keep-going semantics up to the threshold)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="wrap the backend in the deterministic fault injector; SPEC "
             "is comma-separated key=value over fail/hang/crash rates, "
             "hang_s, seed and sticky (e.g. 'fail=0.2,seed=7' or "
             "'fail=0.5,sticky=permanent').  Injected faults never touch "
             "cache keys: a transient profile plus --retries converges to "
             "results byte-identical to the clean run",
    )
    parser.add_argument(
        "--retry-quarantined", action="store_true",
        help="with --resume: re-attempt points previously quarantined as "
             "known-permanent failures instead of skipping them (a "
             "success clears the quarantine record)",
    )
    parser.add_argument(
        "--batch", default=True, action=argparse.BooleanOptionalAction,
        help="dispatch whole point-groups through each sweep's batchable "
             "function where one is declared (vectorized engine with "
             "per-point scalar fallback; results stay byte-identical); "
             "--no-batch restores pure per-point dispatch",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress lines"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; try 'python -m repro list'")
        return 2
    if args.scenario is not None:
        from repro.scenarios import parse_scenario_arg

        try:
            parse_scenario_arg(args.scenario)
        except ValueError as exc:
            print(f"bad --scenario: {exc}")
            return 2

    if args.resume and args.no_cache:
        print("bad arguments: --resume needs the cache (drop --no-cache)")
        return 2
    if args.prescreen is not None and args.prescreen <= 0:
        print("bad arguments: --prescreen must be a positive count or fraction")
        return 2
    if args.retry_quarantined and not args.resume:
        print("bad arguments: --retry-quarantined only applies with --resume")
        return 2

    from repro.runner import ChaosSpec, RetryPolicy

    chaos_spec = None
    if args.chaos is not None:
        try:
            chaos_spec = ChaosSpec.parse(args.chaos)
        except ValueError as exc:
            print(f"bad --chaos: {exc}")
            return 2
    try:
        retry_policy = RetryPolicy(
            retries=args.retries,
            timeout=args.timeout,
            max_failures=args.max_failures,
        )
    except ValueError as exc:
        print(f"bad arguments: {exc}")
        return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if not args.quiet:
        counts = {"error": 0, "quarantined": 0}
        markers = {
            "ok": "", "error": "  FAILED", "retry": "  RETRYING",
            "quarantined": "  QUARANTINED",
        }

        def progress(ev):  # noqa: ANN001 — repro.runner.Progress
            if ev.status in counts:
                counts[ev.status] += 1
            if ev.cached:
                source = "cache"
            elif ev.status == "quarantined":
                source = "skipped"
            else:
                source = f"{ev.seconds:6.2f}s"
            marker = markers.get(ev.status, f"  {ev.status.upper()}")
            tail = ""
            if counts["error"] or counts["quarantined"]:
                tail = (
                    f"  [{counts['error']} failed, "
                    f"{counts['quarantined']} quarantined]"
                )
            print(
                f"[{ev.sweep} {ev.index + 1}/{ev.total}] {source}{marker}{tail}",
                file=sys.stderr,
            )

    # Build every campaign before running any: a bad knob combination
    # (e.g. --scenario stationary on robustness) must fail fast with
    # exit 2, not crash mid-run after earlier campaigns computed.
    # An explicit --backend is stamped into the points (own cache
    # namespace); 'auto' leaves points — and cache keys — untouched.
    stamped_backend = None if args.backend == "auto" else args.backend
    try:
        campaigns = [
            campaign_for(
                name, scale=args.scale, engine=args.engine,
                scenario=args.scenario, backend=stamped_backend,
            )
            for name in names
        ]
    except ValueError as exc:
        print(f"bad arguments: {exc}")
        return 2

    if args.prescreen is not None:
        from dataclasses import replace

        from repro.runner import PrescreenUnsupported, prescreen_sweep

        screened = []
        for campaign in campaigns:
            sweeps = []
            for swp in campaign.sweeps:
                try:
                    result = prescreen_sweep(
                        swp, keep=args.prescreen, batch=args.batch
                    )
                except PrescreenUnsupported as exc:
                    print(
                        f"[{swp.name}] prescreen skipped: {exc}",
                        file=sys.stderr,
                    )
                    sweeps.append(swp)
                else:
                    print(
                        f"[{swp.name}] prescreen kept {result.kept} of "
                        f"{len(result.scored)} points",
                        file=sys.stderr,
                    )
                    sweeps.append(result.sweep)
            screened.append(replace(campaign, sweeps=tuple(sweeps)))
        campaigns = screened

    import os

    from repro.runner import ChaosBackend, CircuitOpenError, SweepPointError, resolve_backend
    from repro.runner.sweep import _error_summary

    # Point functions may consult the store themselves via cached_call
    # (e.g. the robustness baselines), and worker processes only see
    # the environment — so --cache-dir/--no-cache are exported for the
    # duration of the invocation (and restored afterwards), keeping
    # every cache touch under the flags the user gave.
    saved_env = {
        k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_CACHE_DISABLE")
    }
    if cache is not None:
        os.environ["REPRO_CACHE_DIR"] = str(cache.root)
        # An inherited kill switch must not silently defeat the store
        # this invocation explicitly asked for.
        os.environ.pop("REPRO_CACHE_DISABLE", None)
    else:
        os.environ["REPRO_CACHE_DISABLE"] = "1"

    # One backend instance for the whole invocation: `--backend
    # persistent` keeps its warm workers across every sweep and
    # campaign of `sweep all`.  --chaos wraps it without touching the
    # points (cache keys stay those of the clean run — the whole point
    # of the byte-identity acceptance check).
    if stamped_backend == "remote":
        from repro.runner import RemoteBackend

        exec_backend, owned = RemoteBackend(
            jobs=args.jobs, socket_path=args.socket
        ), True
    else:
        if args.socket is not None:
            print("bad arguments: --socket only applies with --backend remote")
            return 2
        exec_backend, owned = resolve_backend(stamped_backend, args.jobs)
    if chaos_spec is not None and chaos_spec.active:
        exec_backend = ChaosBackend(inner=exec_backend, spec=chaos_spec)
    # --max-failures tolerates failures up to its threshold, which only
    # makes sense under keep semantics; an explicit breaker therefore
    # implies --keep-going.
    on_error = "keep" if (args.keep_going or args.max_failures) else "raise"
    failed = 0
    quarantined = 0
    failing_points: list = []  # (status, sweep, params, summary) per bad point

    import signal as signal_module

    class _Terminated(BaseException):
        """SIGTERM arrived: unwind like KeyboardInterrupt does for SIGINT."""

    def _on_sigterm(signum, frame):  # noqa: ARG001
        raise _Terminated()

    try:
        prev_sigterm = signal_module.signal(
            signal_module.SIGTERM, _on_sigterm
        )
    except ValueError:  # not the main thread (embedded callers)
        prev_sigterm = None
    try:
        for name, campaign in zip(names, campaigns):
            result = run_campaign(
                campaign,
                jobs=args.jobs,
                cache=cache,
                progress=progress,
                backend=exec_backend,
                resume=args.resume,
                on_error=on_error,
                retry=retry_policy,
                retry_quarantined=args.retry_quarantined,
                batch=args.batch,
            )
            failed += result.errors
            quarantined += result.quarantined
            for sweep_result in result.sweeps:
                for outcome in sweep_result.outcomes:
                    if outcome.status != "ok":
                        failing_points.append(
                            (outcome.status, sweep_result.name,
                             outcome.params, _error_summary(outcome.error))
                        )
                print(format_table(sweep_result.rows, title=sweep_result.title))
                print()
            summary = (
                f"{name}: {result.hits} cached, {result.misses} computed"
            )
            if result.batch_groups or result.shards:
                summary += (
                    f" [{result.batch_groups} groups, "
                    f"{result.shards} shards]"
                )
            if result.errors:
                summary += f" ({result.errors} failed)"
            if result.quarantined:
                summary += f" ({result.quarantined} quarantined, skipped)"
            print(
                summary + f" in {result.elapsed:.2f}s"
                + ("" if cache else " (cache disabled)")
            )
    except CircuitOpenError as exc:
        print(f"sweep aborted: {exc.report.render()}", file=sys.stderr)
        return 1
    except SweepPointError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    except (KeyboardInterrupt, _Terminated) as exc:
        # Tear the workers down *now* — terminate, not close: close
        # would first drain everything already queued.  Entry files are
        # written atomically and manifest appends are whole lines, so
        # the cache is consistent mid-kill and --resume completes the
        # campaign from exactly the points that never resolved.
        print(
            "sweep interrupted: terminating workers; rerun with --resume "
            "to finish",
            file=sys.stderr,
        )
        terminate = getattr(exec_backend, "terminate", None)
        (terminate or exec_backend.close)()
        return 130 if isinstance(exc, KeyboardInterrupt) else 143
    finally:
        if prev_sigterm is not None:
            signal_module.signal(signal_module.SIGTERM, prev_sigterm)
        if owned:
            exec_backend.close()
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    if failing_points:
        print(
            f"{failed + quarantined} point(s) did not produce results:",
            file=sys.stderr,
        )
        for status, sweep_name, params, reason in failing_points:
            print(
                f"  [{sweep_name}] {dict(params)!r} ({status}): {reason}",
                file=sys.stderr,
            )
    return 1 if (failed or quarantined) else 0


def _cmd_cache(argv: list[str]) -> int:
    """``python -m repro cache [info|clear]`` — cache maintenance."""
    from repro.runner import ResultCache

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or empty the sweep result cache.",
    )
    parser.add_argument(
        "action", nargs="?", default="info",
        choices=("info", "clear", "rebuild", "compact", "migrate"),
    )
    parser.add_argument("--cache-dir", default=None, metavar="DIR")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    if args.action == "rebuild":
        total = 0
        if cache.root.is_dir():
            for child in sorted(cache.root.iterdir()):
                if child.is_dir():
                    total += len(cache.rebuild_manifest(child.name))
        print(f"rebuilt manifests for {total} entries in {cache.root}")
        return 0
    if args.action == "migrate":
        moved = cache.migrate()
        if moved:
            for name, count in sorted(moved.items()):
                print(f"  {name}: {count} entr"
                      f"{'y' if count == 1 else 'ies'} moved into shards")
        total = sum(moved.values())
        print(
            f"migrated {total} legacy flat entr"
            f"{'y' if total == 1 else 'ies'} in {cache.root}"
        )
        return 0
    if args.action == "compact":
        dropped = 0
        if cache.root.is_dir():
            for child in sorted(cache.root.iterdir()):
                if child.is_dir():
                    dropped += cache.compact(child.name)
        print(f"compacted manifests: {dropped} dead record(s) dropped")
        from repro.service.journal import ServiceJournal

        journal = ServiceJournal(cache.root)
        if journal.path.is_file():
            removed = journal.compact()
            print(f"compacted service journal: {removed} record(s) dropped")
        return 0
    stats = cache.stats()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {stats.entries}")
    print(f"size      : {stats.bytes / 1024:.1f} KiB")
    print(f"sweeps    : {', '.join(stats.sweeps) if stats.sweeps else '(none)'}")
    if stats.shards_per_sweep:
        shards = ", ".join(
            f"{name}: {count}" for name, count in stats.shards_per_sweep
        )
        print(f"shards    : {shards}")
    if stats.batch_entries:
        print(
            f"batched   : {stats.batch_entries} entr"
            f"{'y' if stats.batch_entries == 1 else 'ies'} "
            "resolved via group dispatch (provenance only; keys are "
            "identical to scalar runs)"
        )
        for name, count in stats.batch_per_sweep:
            print(f"  {name}: {count} point(s)")
    if stats.quarantined:
        print(f"quarantined: {stats.quarantined} known-permanent failure(s)")
        for name, _, quarantined in stats.per_sweep:
            if quarantined:
                print(f"  {name}: {quarantined} point(s) (see --retry-quarantined)")
    return 0


def _cmd_serve(argv: list[str]) -> int:
    """``python -m repro serve`` — the distributed sweep daemon."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run (or query) the crash-safe sweep service daemon; "
                    "see docs/serve.md.",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket to listen on (default $REPRO_SERVE_SOCKET or "
             "<cache dir>/serve.sock)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="warm worker processes in the daemon's pool (default 2)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache the daemon owns (default $REPRO_CACHE_DIR or "
             "~/.cache/repro-sweeps); the request journal lives beside it",
    )
    parser.add_argument(
        "--lease", type=float, default=120.0, metavar="S",
        help="per-batch lease: a dispatched batch must resolve a point "
             "every S seconds or its workers are killed and the batch "
             "requeued (default 120)",
    )
    parser.add_argument(
        "--linger", type=float, default=300.0, metavar="S",
        help="how long a finished session stays attachable for late "
             "reconnects before it is reaped (default 300)",
    )
    parser.add_argument(
        "--batch-points", type=int, default=None, metavar="N",
        help="points per leased batch (default: 16x the worker count)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress daemon log lines"
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--ping", action="store_true",
        help="check whether a daemon answers on the socket",
    )
    mode.add_argument(
        "--status", action="store_true",
        help="print a running daemon's sessions/journal/lease state",
    )
    mode.add_argument(
        "--stop", action="store_true",
        help="ask a running daemon to drain and exit",
    )
    parser.add_argument(
        "--no-drain", action="store_true",
        help="with --stop: tear down immediately instead of finishing "
             "the in-flight batch",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    from pathlib import Path

    socket_path = args.socket
    if socket_path is None and args.cache_dir is not None:
        # An explicit cache dir moves the default rendezvous with it.
        socket_path = str(Path(args.cache_dir) / "serve.sock")

    if args.ping or args.status or args.stop:
        import json

        from repro.service.client import DaemonUnreachable, ServeClient

        client = ServeClient(socket_path, connect_retries=1)
        try:
            if args.ping:
                reply = client.ping()
            elif args.status:
                reply = client.status()
            else:
                reply = client.shutdown(drain=not args.no_drain)
        except DaemonUnreachable as exc:
            print(f"no daemon: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0

    from repro.service.daemon import ServeConfig, ServeDaemon

    daemon = ServeDaemon(ServeConfig(
        socket_path=socket_path,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        lease_s=args.lease,
        linger_s=args.linger,
        batch_points=args.batch_points,
        quiet=args.quiet,
    ))
    try:
        daemon.start()
    except RuntimeError as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 1
    daemon.serve_forever()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a subcommand or an experiment's ``main()``."""
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help", "list"):
        _print_experiment_list()
        return 0
    name = args[0]
    if name == "sweep":
        return _cmd_sweep(args[1:])
    if name == "cache":
        return _cmd_cache(args[1:])
    if name == "serve":
        return _cmd_serve(args[1:])
    if name == "all":
        for key, module in ALL_EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            module.main()
        return 0
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try 'python -m repro list'")
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
