"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list              # show available experiments
    python -m repro fig10             # run the Figure 10 reproduction
    python -m repro all               # run everything (slow)
    python -m repro sweep fig10 --jobs 4        # parallel + cached
    python -m repro sweep all --jobs 8 --scale 8
    python -m repro sweep fig10 --engine des    # force the DES oracle
    python -m repro sweep fig10 --engine model  # analytic estimates only
    python -m repro sweep fig10 --prescreen 5   # model-rank, simulate top 5
    python -m repro sweep all --jobs 4 --backend persistent   # warm workers
    python -m repro sweep fig10 --resume        # finish a killed sweep
    python -m repro sweep robustness --scenario dropout:0.5
    python -m repro cache info        # cache location, entries, size (O(1))
    python -m repro cache rebuild     # re-derive manifests from entry files
    python -m repro cache clear       # drop every cached result

``sweep`` runs an experiment's campaign through the unified runner
(:mod:`repro.runner`): cache-miss points execute on the selected
``--backend`` (``serial`` inline, ``process`` fresh pool per sweep,
``persistent`` warm workers shared by every sweep of the invocation)
over ``--jobs`` workers, and results are memoized in a
manifest-indexed content-addressed on-disk cache, so a repeated
invocation completes without re-running any simulation and a killed
one picks up where it stopped (``--resume``).  Aggregated tables are
identical across every backend and the plain serial path.

Exit codes: 0 on success, 1 when a sweep point failed (aborting the
run, or recorded under ``--keep-going``), 2 for unknown
experiment/sweep names or bad arguments.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS, campaign_for


def _print_experiment_list() -> None:
    print("Available experiments:")
    for name, module in ALL_EXPERIMENTS.items():
        headline = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<10s} {headline}")
    print("  all        run every experiment in sequence")
    print(
        "\nSubcommands:\n"
        "  sweep NAME [--jobs N] [--backend auto|serial|process|persistent]\n"
        "             [--resume] [--keep-going] [--no-cache] [--cache-dir D]\n"
        "             [--scale K] [--engine fast|des|model] [--prescreen K]\n"
        "             [--scenario KIND[:SEVERITY]]\n"
        "             run NAME's campaign through the parallel cached runner\n"
        "  cache [info|rebuild|clear] [--cache-dir D]\n"
        "             inspect, re-index or empty the sweep result cache"
    )


def _cmd_sweep(argv: list[str]) -> int:
    """``python -m repro sweep NAME`` — the parallel/cached runner."""
    from repro.analysis.tables import format_table
    from repro.runner import ResultCache, run_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run an experiment campaign through the sweep runner.",
    )
    parser.add_argument(
        "name", help="experiment name (see 'python -m repro list') or 'all'"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache-miss points (default 1)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "serial", "process", "persistent"),
        default="auto",
        help="execution backend: 'serial' runs inline, 'process' starts a "
             "fresh pool per sweep, 'persistent' keeps warm workers alive "
             "across every sweep of this invocation; 'auto' (default) picks "
             "serial for --jobs 1 and process otherwise.  An explicit choice "
             "is stamped into every point, so each backend keeps its own "
             "cache entries",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip points already listed in the sweep's cache manifest "
             "(one O(1) index read) and compute only the missing/failed "
             "rest — finishing a previously killed run without re-doing "
             "its completed points; requires the cache",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="record a failing point as an errored row and continue the "
             "sweep instead of aborting on the first failure",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point and write nothing to the cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default $REPRO_CACHE_DIR or ~/.cache/repro-sweeps)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, metavar="K",
        help="divide matrix dimensions by K where supported (quick runs)",
    )
    parser.add_argument(
        "--engine", choices=("fast", "des", "model"), default="fast",
        help="simulation backend: the event-free fast timeline engine "
             "(default), the discrete-event kernel (reference oracle), or "
             "the analytic model estimator (orders of magnitude faster, "
             "validated error envelope — see docs/engines.md)",
    )
    parser.add_argument(
        "--prescreen", type=float, default=None, metavar="K",
        help="rank every sweep point with the analytic model engine first "
             "and fully simulate only the K best (an integer count, or a "
             "fraction in (0,1) of each sweep).  Sweeps the model cannot "
             "screen run unfiltered with a warning",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="KIND[:SEVERITY]",
        help="narrow scenario-aware campaigns (e.g. 'sweep robustness') to "
             "one non-stationarity family: drift, dropout, congestion or "
             "brownout, optionally pinning a severity in [0, 1] "
             "(see docs/scenarios.md); other campaigns ignore the knob",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress lines"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; try 'python -m repro list'")
        return 2
    if args.scenario is not None:
        from repro.scenarios import parse_scenario_arg

        try:
            parse_scenario_arg(args.scenario)
        except ValueError as exc:
            print(f"bad --scenario: {exc}")
            return 2

    if args.resume and args.no_cache:
        print("bad arguments: --resume needs the cache (drop --no-cache)")
        return 2
    if args.prescreen is not None and args.prescreen <= 0:
        print("bad arguments: --prescreen must be a positive count or fraction")
        return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if not args.quiet:
        def progress(ev):  # noqa: ANN001 — repro.runner.Progress
            source = "cache" if ev.cached else f"{ev.seconds:6.2f}s"
            marker = "" if ev.status == "ok" else "  FAILED"
            print(
                f"[{ev.sweep} {ev.index + 1}/{ev.total}] {source}{marker}",
                file=sys.stderr,
            )

    # Build every campaign before running any: a bad knob combination
    # (e.g. --scenario stationary on robustness) must fail fast with
    # exit 2, not crash mid-run after earlier campaigns computed.
    # An explicit --backend is stamped into the points (own cache
    # namespace); 'auto' leaves points — and cache keys — untouched.
    stamped_backend = None if args.backend == "auto" else args.backend
    try:
        campaigns = [
            campaign_for(
                name, scale=args.scale, engine=args.engine,
                scenario=args.scenario, backend=stamped_backend,
            )
            for name in names
        ]
    except ValueError as exc:
        print(f"bad arguments: {exc}")
        return 2

    if args.prescreen is not None:
        from dataclasses import replace

        from repro.runner import PrescreenUnsupported, prescreen_sweep

        screened = []
        for campaign in campaigns:
            sweeps = []
            for swp in campaign.sweeps:
                try:
                    result = prescreen_sweep(swp, keep=args.prescreen)
                except PrescreenUnsupported as exc:
                    print(
                        f"[{swp.name}] prescreen skipped: {exc}",
                        file=sys.stderr,
                    )
                    sweeps.append(swp)
                else:
                    print(
                        f"[{swp.name}] prescreen kept {result.kept} of "
                        f"{len(result.scored)} points",
                        file=sys.stderr,
                    )
                    sweeps.append(result.sweep)
            screened.append(replace(campaign, sweeps=tuple(sweeps)))
        campaigns = screened

    import os

    from repro.runner import SweepPointError, resolve_backend

    # Point functions may consult the store themselves via cached_call
    # (e.g. the robustness baselines), and worker processes only see
    # the environment — so --cache-dir/--no-cache are exported for the
    # duration of the invocation (and restored afterwards), keeping
    # every cache touch under the flags the user gave.
    saved_env = {
        k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_CACHE_DISABLE")
    }
    if cache is not None:
        os.environ["REPRO_CACHE_DIR"] = str(cache.root)
        # An inherited kill switch must not silently defeat the store
        # this invocation explicitly asked for.
        os.environ.pop("REPRO_CACHE_DISABLE", None)
    else:
        os.environ["REPRO_CACHE_DISABLE"] = "1"

    # One backend instance for the whole invocation: `--backend
    # persistent` keeps its warm workers across every sweep and
    # campaign of `sweep all`.
    exec_backend, owned = resolve_backend(stamped_backend, args.jobs)
    failed = 0
    try:
        for name, campaign in zip(names, campaigns):
            result = run_campaign(
                campaign,
                jobs=args.jobs,
                cache=cache,
                progress=progress,
                backend=exec_backend,
                resume=args.resume,
                on_error="keep" if args.keep_going else "raise",
            )
            failed += result.errors
            for sweep_result in result.sweeps:
                print(format_table(sweep_result.rows, title=sweep_result.title))
                print()
            summary = (
                f"{name}: {result.hits} cached, {result.misses} computed"
            )
            if result.errors:
                summary += f" ({result.errors} failed)"
            print(
                summary + f" in {result.elapsed:.2f}s"
                + ("" if cache else " (cache disabled)")
            )
    except SweepPointError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if owned:
            exec_backend.close()
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return 1 if failed else 0


def _cmd_cache(argv: list[str]) -> int:
    """``python -m repro cache [info|clear]`` — cache maintenance."""
    from repro.runner import ResultCache

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or empty the sweep result cache.",
    )
    parser.add_argument(
        "action", nargs="?", default="info",
        choices=("info", "clear", "rebuild"),
    )
    parser.add_argument("--cache-dir", default=None, metavar="DIR")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    if args.action == "rebuild":
        total = 0
        if cache.root.is_dir():
            for child in sorted(cache.root.iterdir()):
                if child.is_dir():
                    total += len(cache.rebuild_manifest(child.name))
        print(f"rebuilt manifests for {total} entries in {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {stats.entries}")
    print(f"size      : {stats.bytes / 1024:.1f} KiB")
    print(f"sweeps    : {', '.join(stats.sweeps) if stats.sweeps else '(none)'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a subcommand or an experiment's ``main()``."""
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help", "list"):
        _print_experiment_list()
        return 0
    name = args[0]
    if name == "sweep":
        return _cmd_sweep(args[1:])
    if name == "cache":
        return _cmd_cache(args[1:])
    if name == "all":
        for key, module in ALL_EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            module.main()
        return 0
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try 'python -m repro list'")
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
