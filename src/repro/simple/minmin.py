"""The Min-min heuristic for the Section 3 model.

From the paper: "At each step, all tasks are considered.  For each of
them, we compute their possible starting date on each worker, given the
files that have already been sent to this worker and all decisions
taken previously; we select the best worker, hence the first min in the
heuristic.  We take the minimum of starting dates over all tasks, hence
the second min."

Committing a task means scheduling the sends of its missing files
back-to-back on the master port and queueing the task on the chosen
worker.  Ties are broken toward the lexicographically smallest task and
then the lowest worker index, making the run deterministic.
"""

from __future__ import annotations

from repro.simple.model import Send, SimpleInstance, SimpleResult

__all__ = ["min_min"]


def min_min(inst: SimpleInstance) -> SimpleResult:
    """Run Min-min on ``inst``; returns the evaluated schedule.

    The returned :class:`SimpleResult` reflects Min-min's own explicit
    task-to-worker assignment (tasks are placed exactly where the
    heuristic decided, not re-claimed greedily).
    """
    held_a: list[set[int]] = [set() for _ in range(inst.p)]
    held_b: list[set[int]] = [set() for _ in range(inst.p)]
    ready = [0.0] * inst.p  # per-worker CPU free time
    port_free = 0.0
    remaining = [
        (i, j) for i in range(1, inst.r + 1) for j in range(1, inst.s + 1)
    ]
    schedule: list[Send] = []
    task_worker: dict[tuple[int, int], int] = {}
    makespan = 0.0

    while remaining:
        best: tuple[float, tuple[int, int], int] | None = None
        for task in remaining:
            i, j = task
            for widx in range(inst.p):
                missing = (i not in held_a[widx]) + (j not in held_b[widx])
                arrival = port_free + missing * inst.c if missing else 0.0
                start = max(arrival, ready[widx])
                key = (start, task, widx)
                if best is None or key < best:
                    best = key
        assert best is not None
        start, (i, j), widx = best
        if i not in held_a[widx]:
            schedule.append(Send(widx + 1, "A", i))
            held_a[widx].add(i)
            port_free += inst.c
        if j not in held_b[widx]:
            schedule.append(Send(widx + 1, "B", j))
            held_b[widx].add(j)
            port_free += inst.c
        ready[widx] = start + inst.w
        makespan = max(makespan, ready[widx])
        task_worker[(i, j)] = widx + 1
        remaining.remove((i, j))

    return SimpleResult(
        makespan=makespan,
        schedule=tuple(schedule),
        tasks_done=len(task_worker),
        task_worker=task_worker,
        finish_times=tuple(ready),
        comm_volume=len(schedule),
    )
