"""The simplified scheduling model of Section 3.

Simplifications relative to the full problem: fully homogeneous platform
(cost ``c`` per file, ``w`` per task, ``p`` workers), rank-one updates
(``t = 1``), results not returned, and unlimited worker memory.  A *file*
is either an A-stripe ``A_i`` (1 ≤ i ≤ r) or a B-stripe ``B_j``
(1 ≤ j ≤ s); *task* ``(i, j)`` needs both on the same worker.

The section's point is that even this stripped-down problem is
combinatorially hard:

* with a single worker, the **alternating greedy** algorithm is optimal
  (Proposition 1) — :mod:`repro.simple.alternating`;
* with two or more workers, the natural greedy algorithms **Thrifty**
  and **Min-min** are *both* suboptimal, each beating the other on one
  of the Figure 4 instances — :mod:`repro.simple.thrifty`,
  :mod:`repro.simple.minmin`;
* a branch-and-bound :mod:`repro.simple.bruteforce` searches all useful
  send orders on tiny instances, for ground truth in tests.
"""

from repro.simple.alternating import alternating_greedy, alternating_sequence
from repro.simple.bruteforce import brute_force_best
from repro.simple.minmin import min_min
from repro.simple.model import (
    Send,
    SimpleInstance,
    SimpleResult,
    evaluate_schedule,
    greedy_task_count,
)
from repro.simple.dessim import simulate_schedule_des
from repro.simple.thrifty import thrifty

__all__ = [
    "Send",
    "SimpleInstance",
    "SimpleResult",
    "alternating_greedy",
    "alternating_sequence",
    "brute_force_best",
    "evaluate_schedule",
    "greedy_task_count",
    "min_min",
    "simulate_schedule_des",
    "thrifty",
]
