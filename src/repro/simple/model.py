"""Instance, schedule and evaluator for the Section 3 model.

A *schedule* is the master's ordered list of sends; everything else is
determined by the model's greedy execution semantics:

* the master's port is busy ``c`` time units per send, back to back;
* a worker that receives a file immediately *claims* every so-far
  unclaimed task both of whose files it now holds (lexicographic order —
  a deterministic tie-break);
* each worker processes its claimed tasks FIFO, ``w`` time units each,
  starting no earlier than the enabling file's arrival.

These semantics make schedule evaluation a pure function of the send
order, which is exactly the design space Section 3 explores ("the
scheduling problem amounts to deciding which files should be sent to
which workers and in which order").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Optional, Sequence

__all__ = [
    "Send",
    "SimpleInstance",
    "SimpleResult",
    "evaluate_schedule",
    "greedy_task_count",
]

FileKind = Literal["A", "B"]


@dataclass(frozen=True)
class SimpleInstance:
    """One Section-3 problem instance.

    Attributes:
        r: number of A stripes (task-grid rows).
        s: number of B stripes (task-grid columns).
        p: number of identical workers.
        c: master-port time per file sent.
        w: worker time per task.
    """

    r: int
    s: int
    p: int
    c: float
    w: float

    def __post_init__(self) -> None:
        if self.r < 1 or self.s < 1 or self.p < 1:
            raise ValueError("r, s, p must all be >= 1")
        if self.c <= 0 or self.w <= 0:
            raise ValueError("c and w must be positive")

    @property
    def tasks(self) -> int:
        """Total number of tasks, r·s."""
        return self.r * self.s


@dataclass(frozen=True)
class Send:
    """One master send: file ``kind``/``index`` to worker ``worker``.

    Workers are 1-based; file indices are 1-based (``A_i`` or ``B_j``).
    """

    worker: int
    kind: FileKind
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("A", "B"):
            raise ValueError(f"kind must be 'A' or 'B', got {self.kind!r}")
        if self.worker < 1 or self.index < 1:
            raise ValueError("worker and index are 1-based (>= 1)")


@dataclass(frozen=True)
class SimpleResult:
    """Evaluation of a schedule.

    Attributes:
        makespan: completion time of the last task.
        schedule: the evaluated send order.
        tasks_done: number of distinct tasks computed.
        task_worker: mapping ``(i, j) → worker`` of who computed what.
        finish_times: per-worker completion time of its last task.
        comm_volume: number of sends (each costs ``c``).
    """

    makespan: float
    schedule: tuple[Send, ...]
    tasks_done: int
    task_worker: dict[tuple[int, int], int]
    finish_times: tuple[float, ...]
    comm_volume: int


def evaluate_schedule(
    inst: SimpleInstance,
    schedule: Sequence[Send],
    require_complete: bool = True,
) -> SimpleResult:
    """Execute ``schedule`` under the greedy-claim semantics.

    Raises ``ValueError`` when the schedule is invalid (unknown worker,
    duplicate file delivery to the same worker) or — with
    ``require_complete`` — leaves tasks uncomputed.
    """
    held_a: list[set[int]] = [set() for _ in range(inst.p)]
    held_b: list[set[int]] = [set() for _ in range(inst.p)]
    busy = [0.0] * inst.p
    claimed: set[tuple[int, int]] = set()
    task_worker: dict[tuple[int, int], int] = {}
    now = 0.0
    for send in schedule:
        if not 1 <= send.worker <= inst.p:
            raise ValueError(f"send to unknown worker {send.worker} (p={inst.p})")
        widx = send.worker - 1
        if send.kind == "A":
            if not 1 <= send.index <= inst.r:
                raise ValueError(f"A index {send.index} out of 1..{inst.r}")
            if send.index in held_a[widx]:
                raise ValueError(f"worker {send.worker} already holds A{send.index}")
        else:
            if not 1 <= send.index <= inst.s:
                raise ValueError(f"B index {send.index} out of 1..{inst.s}")
            if send.index in held_b[widx]:
                raise ValueError(f"worker {send.worker} already holds B{send.index}")
        now += inst.c  # one-port master: sends are serialized
        arrival = now
        if send.kind == "A":
            held_a[widx].add(send.index)
            enabled = [
                (send.index, j) for j in sorted(held_b[widx])
                if (send.index, j) not in claimed
            ]
        else:
            held_b[widx].add(send.index)
            enabled = [
                (i, send.index) for i in sorted(held_a[widx])
                if (i, send.index) not in claimed
            ]
        for task in enabled:
            claimed.add(task)
            task_worker[task] = send.worker
            busy[widx] = max(busy[widx], arrival) + inst.w
    if require_complete and len(claimed) != inst.tasks:
        missing = inst.tasks - len(claimed)
        raise ValueError(f"schedule leaves {missing} of {inst.tasks} tasks uncomputed")
    makespan = max(busy) if claimed else 0.0
    return SimpleResult(
        makespan=makespan,
        schedule=tuple(schedule),
        tasks_done=len(claimed),
        task_worker=task_worker,
        finish_times=tuple(busy),
        comm_volume=len(schedule),
    )


def greedy_task_count(x: int, r: int, s: int) -> int:
    """Max tasks enabled by ``x`` sends to one worker (Proposition 1).

    With ``y`` A-files and ``z`` B-files, ``y + z = x``, a single worker
    can process ``y·z`` tasks; the alternating greedy achieves the
    maximum ``ceil(x/2)·floor(x/2)`` (clipped by the grid bounds r, s).
    """
    if x < 0:
        raise ValueError(f"x must be >= 0, got {x}")
    best = 0
    for y in range(0, min(x, r) + 1):
        z = min(x - y, s)
        if z < 0:
            continue
        best = max(best, y * z)
    return best
