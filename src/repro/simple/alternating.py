"""The alternating greedy algorithm (Proposition 1).

With a single worker, the master should "send blocks as soon as
possible, alternating a block of type A and a block of type B (and
proceed with the remaining blocks when one type is exhausted)".  After
``x`` sends, with ``y`` A-files and ``z`` B-files delivered, the worker
can process ``y·z`` tasks; the alternation ``y = ceil(x/2)``,
``z = floor(x/2)`` maximises that product at every prefix, which is the
paper's optimality argument.
"""

from __future__ import annotations

from typing import Iterator

from repro.simple.model import Send, SimpleInstance, SimpleResult, evaluate_schedule

__all__ = ["alternating_sequence", "alternating_greedy"]


def alternating_sequence(r: int, s: int, worker: int = 1) -> list[Send]:
    """The alternating send order for one worker: A1, B1, A2, B2, …

    When one type runs out (``r ≠ s``), the remaining files of the other
    type follow.  Starting with A when ``r ≥ s`` (and B otherwise) keeps
    the per-prefix enabled-task count maximal, matching Proposition 1's
    ``y = ceil(x/2)`` choice.
    """
    if r < 1 or s < 1:
        raise ValueError("r and s must be >= 1")
    sends: list[Send] = []
    a_first = r >= s
    ai, bj = 1, 1
    while ai <= r or bj <= s:
        pick_a = ai <= r and (bj > s or (len(sends) % 2 == 0) == a_first)
        if pick_a:
            sends.append(Send(worker, "A", ai))
            ai += 1
        else:
            sends.append(Send(worker, "B", bj))
            bj += 1
    return sends


def alternating_greedy(inst: SimpleInstance) -> SimpleResult:
    """Run the alternating greedy on a single-worker instance.

    Raises ``ValueError`` when the instance has more than one worker —
    the algorithm (and its optimality) is defined for ``p = 1``.
    """
    if inst.p != 1:
        raise ValueError("alternating greedy is the single-worker algorithm (p=1)")
    return evaluate_schedule(inst, alternating_sequence(inst.r, inst.s))
