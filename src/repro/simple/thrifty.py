"""The Thrifty greedy algorithm (Section 3).

Thrifty "spares" resources: it keeps each already-enrolled worker fully
active, feeds later workers only during spare communication slots, and
enrolls a new worker only when doing so delays nobody already enrolled.

Concretely, whenever the master port frees up at time ``tau``:

1. serve, in enrolment order, the first enrolled worker whose queued
   work runs out before it could receive a file *two* slots from now
   (``supply_end < tau + 2c``) — that worker's supply is at risk;
2. otherwise every enrolled worker is safe for at least one slot: the
   slot is *spare*, so enroll the next worker (if any remain and
   unclaimed tasks exist) and send it its first file;
3. otherwise give the slot to the enrolled worker with the least queued
   work that can still use a file.

File choice per worker is alternating-greedy generalised to a shared
task pool: pick the file enabling the most still-unclaimed tasks
immediately, breaking ties by future potential, then by type (A first)
and index.
"""

from __future__ import annotations

from typing import Optional

from repro.simple.model import Send, SimpleInstance, SimpleResult, evaluate_schedule

__all__ = ["thrifty"]


class _WorkerState:
    """Book-keeping for one worker during the Thrifty simulation."""

    def __init__(self) -> None:
        self.held_a: set[int] = set()
        self.held_b: set[int] = set()
        self.supply_end = 0.0  # time at which queued work runs out


def _score_file(
    state: _WorkerState,
    kind: str,
    index: int,
    unclaimed: set[tuple[int, int]],
    r: int,
    s: int,
) -> tuple[int, int]:
    """(immediately enabled unclaimed tasks, future potential) of a file."""
    if kind == "A":
        now = sum(1 for j in state.held_b if (index, j) in unclaimed)
        future = sum(1 for j in range(1, s + 1) if (index, j) in unclaimed)
    else:
        now = sum(1 for i in state.held_a if (i, index) in unclaimed)
        future = sum(1 for i in range(1, r + 1) if (i, index) in unclaimed)
    return now, future


def _next_file(
    state: _WorkerState,
    unclaimed: set[tuple[int, int]],
    inst: SimpleInstance,
) -> Optional[tuple[str, int]]:
    """Best next file for this worker, or None when nothing is useful."""
    best: Optional[tuple[str, int]] = None
    best_key: tuple[int, int, int, int] = (-1, -1, 0, 0)
    for kind, limit, held in (
        ("A", inst.r, state.held_a),
        ("B", inst.s, state.held_b),
    ):
        # Alternation bias: prefer the scarcer type on equal task scores.
        balance = 1 if (
            (kind == "A" and len(state.held_a) <= len(state.held_b))
            or (kind == "B" and len(state.held_b) < len(state.held_a))
        ) else 0
        for index in range(1, limit + 1):
            if index in held:
                continue
            now, future = _score_file(state, kind, index, unclaimed, inst.r, inst.s)
            if now == 0 and future == 0:
                continue
            key = (now, future, balance, -index)
            if key > best_key:
                best_key, best = key, (kind, index)
    return best


def thrifty(inst: SimpleInstance) -> SimpleResult:
    """Run Thrifty on ``inst`` and evaluate the resulting schedule."""
    states = [_WorkerState() for _ in range(inst.p)]
    unclaimed = {(i, j) for i in range(1, inst.r + 1) for j in range(1, inst.s + 1)}
    enrolled: list[int] = []
    schedule: list[Send] = []
    tau = 0.0

    def commit(widx: int, kind: str, index: int) -> None:
        nonlocal tau
        st = states[widx]
        arrival = tau + inst.c
        if kind == "A":
            st.held_a.add(index)
            enabled = sorted(
                (index, j) for j in st.held_b if (index, j) in unclaimed
            )
        else:
            st.held_b.add(index)
            enabled = sorted(
                (i, index) for i in st.held_a if (i, index) in unclaimed
            )
        for task in enabled:
            unclaimed.discard(task)
            st.supply_end = max(st.supply_end, arrival) + inst.w
        tau = arrival
        schedule.append(Send(widx + 1, kind, index))

    while unclaimed:
        if not enrolled:
            enrolled.append(0)
            choice = _next_file(states[0], unclaimed, inst)
            assert choice is not None
            commit(0, *choice)
            continue
        # 1. Serve the first enrolled worker at supply risk.
        served = False
        for widx in enrolled:
            st = states[widx]
            if st.supply_end < tau + 2 * inst.c:
                choice = _next_file(st, unclaimed, inst)
                if choice is not None:
                    commit(widx, *choice)
                    served = True
                    break
        if served:
            continue
        # 2. Spare slot: enroll a new worker without delaying anyone.
        if len(enrolled) < inst.p:
            widx = len(enrolled)
            choice = _next_file(states[widx], unclaimed, inst)
            if choice is not None:
                enrolled.append(widx)
                commit(widx, *choice)
                continue
        # 3. Feed the least-loaded enrolled worker that can use a file.
        candidates = []
        for widx in enrolled:
            choice = _next_file(states[widx], unclaimed, inst)
            if choice is not None:
                candidates.append((states[widx].supply_end, widx, choice))
        if not candidates:  # pragma: no cover - cannot happen while unclaimed
            raise RuntimeError("no useful file although tasks remain")
        _, widx, choice = min(candidates)
        commit(widx, *choice)

    return evaluate_schedule(inst, schedule)
