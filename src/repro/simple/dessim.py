"""Discrete-event cross-check of the Section 3 evaluator.

:func:`repro.simple.model.evaluate_schedule` computes makespans
analytically (a simple fold over the send order).  This module executes
the *same* semantics on the simulation kernel — a master process
holding a one-port resource, one process per worker consuming a task
mailbox — providing an independent implementation to validate against.
The test-suite asserts both agree on random instances, which guards the
analytical evaluator and the DES kernel at the same time.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.core import Environment
from repro.sim.resources import Resource, Store
from repro.simple.model import Send, SimpleInstance

__all__ = ["simulate_schedule_des"]


def simulate_schedule_des(inst: SimpleInstance, schedule: Sequence[Send]) -> float:
    """Execute a Section-3 schedule on the DES kernel; returns makespan.

    Semantics mirror :func:`repro.simple.model.evaluate_schedule`: the
    master's sends serialize on a one-port resource; a worker claims all
    newly-enabled unclaimed tasks the instant a file arrives
    (lexicographic order) and processes its queue FIFO at ``w`` per
    task.
    """
    env = Environment()
    port = Resource(env, capacity=1)
    mailboxes = [Store(env) for _ in range(inst.p)]
    held_a: list[set[int]] = [set() for _ in range(inst.p)]
    held_b: list[set[int]] = [set() for _ in range(inst.p)]
    claimed: set[tuple[int, int]] = set()
    finish = [0.0] * inst.p

    def master():
        for send in schedule:
            with port.request() as req:
                yield req
                yield env.timeout(inst.c)
            widx = send.worker - 1
            if send.kind == "A":
                held_a[widx].add(send.index)
                enabled = sorted(
                    (send.index, j)
                    for j in held_b[widx]
                    if (send.index, j) not in claimed
                )
            else:
                held_b[widx].add(send.index)
                enabled = sorted(
                    (i, send.index)
                    for i in held_a[widx]
                    if (i, send.index) not in claimed
                )
            for task in enabled:
                claimed.add(task)
                yield mailboxes[widx].put(task)
        for box in mailboxes:  # poison pills
            yield box.put(None)

    def worker(widx: int):
        while True:
            task = yield mailboxes[widx].get()
            if task is None:
                return
            yield env.timeout(inst.w)
            finish[widx] = env.now

    env.process(master(), name="master")
    for widx in range(inst.p):
        env.process(worker(widx), name=f"worker-{widx + 1}")
    env.run()
    return max(finish) if claimed else 0.0
