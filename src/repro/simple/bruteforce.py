"""Exhaustive search over send orders for tiny Section-3 instances.

Used as ground truth in tests (e.g. checking Proposition 1, or that
neither Thrifty nor Min-min is optimal).  The search branches over all
*useful* ``(worker, file)`` sends — a send is useful when it contributes
to at least one still-unclaimed task — and executes the greedy-claim
semantics of :func:`repro.simple.model.evaluate_schedule` incrementally.

Admissible pruning bounds keep tiny instances (``r·s ≤ ~9``, ``p ≤ 2``)
tractable; a node budget guards against accidental explosion.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.simple.model import Send, SimpleInstance, SimpleResult, evaluate_schedule

__all__ = ["brute_force_best"]


def brute_force_best(
    inst: SimpleInstance, node_budget: int = 2_000_000
) -> SimpleResult:
    """Best achievable makespan over all send orders (greedy claims).

    Raises ``RuntimeError`` when the search exceeds ``node_budget``
    nodes — a signal that the instance is too large for brute force.
    """
    best_makespan = math.inf
    best_schedule: Optional[list[Send]] = None
    nodes = 0

    held_a: list[set[int]] = [set() for _ in range(inst.p)]
    held_b: list[set[int]] = [set() for _ in range(inst.p)]
    busy = [0.0] * inst.p
    unclaimed = {(i, j) for i in range(1, inst.r + 1) for j in range(1, inst.s + 1)}
    prefix: list[Send] = []
    seen: dict[tuple, float] = {}

    def state_key(tau: float) -> tuple:
        per_worker = tuple(
            (frozenset(held_a[k]), frozenset(held_b[k]), busy[k])
            for k in range(inst.p)
        )
        return (per_worker, frozenset(unclaimed), tau)

    def lower_bound(tau: float) -> float:
        n = len(unclaimed)
        lb = max(busy) if any(busy) else 0.0
        if n:
            lb = max(
                lb,
                tau + inst.c + inst.w,
                tau + inst.c + n * inst.w / inst.p,
            )
        return lb

    def dfs(tau: float) -> None:
        nonlocal best_makespan, best_schedule, nodes
        nodes += 1
        if nodes > node_budget:
            raise RuntimeError(
                f"brute force exceeded {node_budget} nodes on {inst}"
            )
        if not unclaimed:
            makespan = max(busy)
            if makespan < best_makespan:
                best_makespan = makespan
                best_schedule = list(prefix)
            return
        if lower_bound(tau) >= best_makespan:
            return
        key = state_key(tau)
        prev = seen.get(key)
        if prev is not None and prev <= tau:
            return
        seen[key] = tau

        for widx in range(inst.p):
            for kind, limit, held in (
                ("A", inst.r, held_a[widx]),
                ("B", inst.s, held_b[widx]),
            ):
                for index in range(1, limit + 1):
                    if index in held:
                        continue
                    if kind == "A":
                        useful = any((index, j) in unclaimed for j in range(1, inst.s + 1))
                    else:
                        useful = any((i, index) in unclaimed for i in range(1, inst.r + 1))
                    if not useful:
                        continue
                    arrival = tau + inst.c
                    if kind == "A":
                        held_a[widx].add(index)
                        enabled = sorted(
                            (index, j) for j in held_b[widx] if (index, j) in unclaimed
                        )
                    else:
                        held_b[widx].add(index)
                        enabled = sorted(
                            (i, index) for i in held_a[widx] if (i, index) in unclaimed
                        )
                    old_busy = busy[widx]
                    b = old_busy
                    for task in enabled:
                        unclaimed.discard(task)
                        b = max(b, arrival) + inst.w
                    busy[widx] = b
                    prefix.append(Send(widx + 1, kind, index))

                    dfs(arrival)

                    prefix.pop()
                    busy[widx] = old_busy
                    for task in enabled:
                        unclaimed.add(task)
                    if kind == "A":
                        held_a[widx].discard(index)
                    else:
                        held_b[widx].discard(index)

    dfs(0.0)
    assert best_schedule is not None
    return evaluate_schedule(inst, best_schedule, require_complete=True)
