"""BMM and OBMM — Toledo's memory layout (the Section 8 baselines).

**BMM** ("Block Matrix Multiply") is Toledo's out-of-core algorithm
[38]: "It splits each worker memory equally into three parts, and
allocates one slot for a square block of A, another for a square block
of B, and the last one for a square block of C, each square block
having the same size.  Then it sends blocks to the workers in a
demand-driven fashion ... a worker does not overlap computation with
the receiving of the next blocks."  Tile side σ = ``floor(sqrt(m/3))``;
each phase ships a σ×σ A tile plus a σ×σ B tile and computes σ³
updates.

**OBMM** is the paper's overlapped variant: "we split each worker
memory into five parts, so as to receive one block of A and one block
of B while previous ones are used to update C" — σ =
``floor(sqrt(m/5))`` with a spare A/B generation.

The paper's headline experimental claim (Figure 10) is that the
algorithms above, with the optimized µ-layout, clearly beat BMM: the
three-way split wastes memory on A/B tiles that the µ-layout spends on
a larger resident C tile, halving the communication volume per update.
"""

from __future__ import annotations

from repro.blocks.shape import ProblemShape
from repro.core.layout import overlapped_toledo_split, toledo_split
from repro.engine.chunks import Chunk, toledo_chunks
from repro.schedulers.base import DemandChunkScheduler

__all__ = ["BMM", "OBMM"]


class BMM(DemandChunkScheduler):
    """Toledo's three-way memory split, demand-driven, no overlap."""

    name = "BMM"
    generation_gap = 1

    def chunk_param(self, m: int) -> int:
        return toledo_split(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        return toledo_chunks(shape, param)


class OBMM(DemandChunkScheduler):
    """Five-way split: BMM with overlapped A/B tile streaming."""

    name = "OBMM"
    generation_gap = 2

    def chunk_param(self, m: int) -> int:
        return overlapped_toledo_split(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        return toledo_chunks(shape, param)
