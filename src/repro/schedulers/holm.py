"""HoLM and ORROML — the static round-robin algorithms.

**HoLM** is the paper's homogeneous algorithm (Algorithms 1 and 2): the
overlap layout (``µ² + 4µ ≤ m``), *resource selection*
(``P = min(p, ceil(µw/2c))``, with the small-matrix ν fallback), and
round-robin distribution of µ-wide C column panels over the enrolled
workers.

**ORROML** ("Overlapped Round-Robin, Optimized Memory Layout") is
identical except that it skips resource selection and spreads work over
all available workers.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.blocks.shape import ProblemShape
from repro.core.homogeneous import plan_homogeneous, plan_homogeneous_batch
from repro.core.layout import mu_overlap
from repro.engine.chunks import Chunk, tile_chunks
from repro.engine.engine import Engine
from repro.platform.model import Platform
from repro.schedulers.base import StaticChunkScheduler

__all__ = ["HoLM", "ORROML"]


class HoLM(StaticChunkScheduler):
    """The paper's homogeneous algorithm with resource selection."""

    name = "HoLM"
    generation_gap = 2

    def __init__(self) -> None:
        self._plan_workers: int | None = None

    def chunk_param(self, m: int) -> int:
        return mu_overlap(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        return tile_chunks(shape, param)

    def common_param(self, platform: Platform) -> int:
        # The µ (possibly shrunk to ν for small matrices) is decided by
        # the Section 5 plan, computed in `assign`; default to overlap µ.
        return self._param

    def launch(self, engine: Engine) -> None:  # type: ignore[override]
        plan = plan_homogeneous(engine.platform, engine.shape)
        self._param = plan.mu
        self._plan_workers = plan.workers
        super().launch(engine)

    def enrolled_count(self, platform: Platform, shape: ProblemShape) -> int:
        """Number of workers HoLM enrolls for this run."""
        return plan_homogeneous(platform, shape).workers

    def plan_signatures(
        self, shape: ProblemShape, c: np.ndarray, w: np.ndarray, m: np.ndarray
    ) -> Optional[list[Hashable]]:
        # Launch structure is fully determined by the Section 5 plan:
        # ``common_param`` returns ``plan.mu`` and ``assign`` reads only
        # ``plan.workers``, so (µ, P) pins the chunk stream and the
        # panel deal for a given shape.
        plans = plan_homogeneous_batch(
            c.max(axis=1), w.max(axis=1), m.min(axis=1), c.shape[1], shape
        )
        return [(self.name, mu, workers) for mu, workers, _small in plans]

    def assign(
        self, platform: Platform, shape: ProblemShape, chunks: list[Chunk]
    ) -> dict[int, list[Chunk]]:
        workers = self._plan_workers or platform.p
        assignment: dict[int, list[Chunk]] = {w: [] for w in range(workers)}
        # Chunks are emitted column-panel-major; deal panels round-robin so
        # each enrolled worker owns whole µ-wide column panels (Algorithm 1).
        panels: dict[tuple[int, int], list[Chunk]] = {}
        for chunk in chunks:
            panels.setdefault(chunk.col_range, []).append(chunk)
        if len(panels) >= workers:
            for pidx, (_cols, panel) in enumerate(sorted(panels.items())):
                assignment[pidx % workers].extend(panel)
        else:
            # Fewer µ-wide panels than enrolled workers (the paper assumes
            # s divisible by Pµ "for simplicity"; real shapes are not):
            # deal individual tiles round-robin so nobody is stranded.
            for cidx, chunk in enumerate(chunks):
                assignment[cidx % workers].append(chunk)
        return assignment


class ORROML(HoLM):
    """Overlapped Round-Robin: HoLM without resource selection."""

    name = "ORROML"

    def launch(self, engine: Engine) -> None:
        plan = plan_homogeneous(engine.platform, engine.shape)
        self._param = plan.mu
        self._plan_workers = engine.platform.p  # enroll everyone
        StaticChunkScheduler.launch(self, engine)

    def plan_signatures(
        self, shape: ProblemShape, c: np.ndarray, w: np.ndarray, m: np.ndarray
    ) -> Optional[list[Hashable]]:
        # Same µ selection as HoLM, but everyone is enrolled: only the
        # chunk side can differ between rows.
        plans = plan_homogeneous_batch(
            c.max(axis=1), w.max(axis=1), m.min(axis=1), c.shape[1], shape
        )
        return [(self.name, mu, c.shape[1]) for mu, _workers, _small in plans]
