"""Heterogeneous execution — phase 2 of the Section 6.2 approach.

The two-phase design of the paper: *phase 1* runs an incremental
selection algorithm (global, local, or lookahead — see
:mod:`repro.core.heterogeneous`) to decide how many full µ_i-wide C
column panels each worker will own; *phase 2* executes, each worker
processing its panels chunk by chunk (µ_i×µ_i C tiles, single-k phases)
with the overlap layout, all transfers contending for the one port.

The per-worker panel widths differ (µ_i depends on each worker's
memory), which is exactly why the paper assigns "only full matrix
column blocks" — this module reproduces that columnwise partition.
"""

from __future__ import annotations

import math
from typing import Literal

from repro.blocks.shape import ProblemShape
from repro.core.heterogeneous import (
    SelectionResult,
    chunk_sizes,
    global_selection,
    local_selection,
    lookahead_selection,
)
from repro.engine.chunks import Chunk, Phase
from repro.engine.engine import Engine
from repro.platform.model import Platform

__all__ = ["HeteroIncremental", "allocate_columns"]

Variant = Literal["global", "local", "lookahead"]


def allocate_columns(
    platform: Platform, shape: ProblemShape, selection: SelectionResult
) -> list[int]:
    """Turn a selection result into an exact per-worker column count.

    The selection's ``columns_per_worker`` may overshoot ``s`` (the last
    allocation round can run past the target); this clips the totals to
    exactly ``s`` columns, trimming the overshoot from the least
    work-efficient enrolled workers (highest ``2c_i/µ_i`` first) and
    topping up from the most efficient ones if the selection fell short.
    """
    mus = chunk_sizes(platform)
    cols = list(selection.columns_per_worker)
    total = sum(cols)
    order = sorted(
        range(platform.p), key=lambda i: 2.0 * platform.workers[i].c / mus[i]
    )
    # Trim overshoot from least efficient enrolled workers.
    for i in reversed(order):
        if total <= shape.s:
            break
        trim = min(cols[i], total - shape.s)
        cols[i] -= trim
        total -= trim
    # Top up any shortfall on the most efficient workers.
    for i in order:
        if total >= shape.s:
            break
        add = shape.s - total
        cols[i] += add
        total += add
    assert sum(cols) == shape.s
    return cols


def _worker_chunks(
    shape: ProblemShape, mu: int, col_start: int, n_cols: int
) -> list[Chunk]:
    """µ×µ tiles (single-k phases) over a contiguous column slice."""
    chunks: list[Chunk] = []
    for c0 in range(col_start, col_start + n_cols, mu):
        c1 = min(c0 + mu, col_start + n_cols)
        for r0 in range(0, shape.r, mu):
            r1 = min(r0 + mu, shape.r)
            rows, cols = r1 - r0, c1 - c0
            phases = tuple(
                Phase((k, k + 1), rows, cols, rows * cols)
                for k in range(shape.t)
            )
            chunks.append(Chunk((r0, r1), (c0, c1), phases))
    return chunks


class HeteroIncremental:
    """Executable scheduler following an incremental selection.

    Args:
        variant: which phase-1 algorithm decides the allocation —
            ``"global"`` (Algorithm 3), ``"local"``, or ``"lookahead"``.
        depth: lookahead depth (used only by the lookahead variant).
    """

    generation_gap = 2

    def __init__(self, variant: Variant = "global", depth: int = 2):
        if variant not in ("global", "local", "lookahead"):
            raise ValueError(f"unknown variant {variant!r}")
        self.variant = variant
        self.depth = depth
        self.name = f"HeteroLM[{variant}]"
        self.last_selection: SelectionResult | None = None

    def select(self, platform: Platform, shape: ProblemShape) -> SelectionResult:
        """Run phase 1 and cache the result."""
        args = (platform, shape.r, shape.s, shape.t)
        if self.variant == "global":
            sel = global_selection(*args)
        elif self.variant == "local":
            sel = local_selection(*args)
        else:
            sel = lookahead_selection(*args, depth=self.depth)
        self.last_selection = sel
        return sel

    def launch(self, engine: Engine) -> None:
        """Create one static agent per enrolled worker."""
        platform, shape = engine.platform, engine.shape
        selection = self.select(platform, shape)
        cols = allocate_columns(platform, shape, selection)
        mus = chunk_sizes(platform)
        col_start = 0
        for widx in range(platform.p):
            if cols[widx] == 0:
                continue
            chunks = _worker_chunks(shape, mus[widx], col_start, cols[widx])
            col_start += cols[widx]
            engine.env.process(
                engine.static_agent(widx, chunks, self.generation_gap),
                name=f"{self.name}-P{widx + 1}",
            )
