"""OMMOML — Overlapped Min-Min with the optimized memory layout.

A static heuristic: chunks are considered in order and each is assigned
to the worker predicted to *complete* it first, given everything
assigned so far.  Predictions use the same linear cost model as the
engine: a chunk occupies the master port for its input blocks and the
worker's CPU for its updates; a worker's next chunk cannot start
computing before its previous one finished.

Because the estimate charges the full port time for every delivery, the
heuristic keeps re-selecting the first worker(s) until they are
genuinely saturated — which is exactly why the paper observes OMMOML
"performs some resource selection too" (it used only two workers in the
experiments) and pays for it with a longer makespan.
"""

from __future__ import annotations

from repro.blocks.shape import ProblemShape
from repro.core.layout import mu_overlap
from repro.engine.chunks import Chunk, tile_chunks
from repro.platform.model import Platform
from repro.schedulers.base import StaticChunkScheduler

__all__ = ["OMMOML"]


class OMMOML(StaticChunkScheduler):
    """Static min-min (earliest completion time) chunk assignment."""

    name = "OMMOML"
    generation_gap = 2

    def chunk_param(self, m: int) -> int:
        return mu_overlap(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        return tile_chunks(shape, param)

    def assign(
        self, platform: Platform, shape: ProblemShape, chunks: list[Chunk]
    ) -> dict[int, list[Chunk]]:
        p = platform.p
        assignment: dict[int, list[Chunk]] = {w: [] for w in range(p)}
        port_free = 0.0
        worker_free = [0.0] * p
        for chunk in chunks:
            comm_blocks = chunk.comm_blocks
            updates = chunk.updates
            best_widx, best_finish = 0, float("inf")
            for widx in range(p):
                wk = platform.workers[widx]
                arrive = port_free + comm_blocks * wk.c
                finish = max(arrive, worker_free[widx]) + updates * wk.w
                if finish < best_finish - 1e-12:
                    best_widx, best_finish = widx, finish
            port_free += comm_blocks * platform.workers[best_widx].c
            worker_free[best_widx] = best_finish
            assignment[best_widx].append(chunk)
        return assignment
