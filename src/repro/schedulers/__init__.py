"""The scheduling algorithms compared in Section 8.

Algorithms using the paper's optimized memory layout (µ×µ C tile plus
streamed A/B generations):

* :class:`HoLM` — the paper's homogeneous algorithm with resource
  selection (``P = min(p, ceil(µw/2c))``), round-robin service.
* :class:`ORROML` — HoLM without resource selection (all workers).
* :class:`OMMOML` — static min-min chunk assignment (earliest finish).
* :class:`ODDOML` — demand-driven with the spare buffer generation.
* :class:`DDOML` — demand-driven without spare buffers (bigger µ, no
  receive/compute overlap).

Algorithms using Toledo's memory layout:

* :class:`BMM` — memory in three equal square tiles, demand-driven, no
  overlap.
* :class:`OBMM` — five-way split so A/B tiles stream while computing.

Heterogeneous execution:

* :class:`HeteroIncremental` — phase-2 execution of the Section 6.2
  incremental selection (global/local/lookahead variants).

Single-worker reference:

* :class:`MaxReuse` — the Section 4.1 maximum re-use algorithm.

Use :func:`repro.engine.run_scheduler` to simulate any of them, or the
convenience :func:`all_section8_schedulers` registry for the benchmark
harness.
"""

from repro.schedulers.base import StaticChunkScheduler, DemandChunkScheduler
from repro.schedulers.bmm import BMM, OBMM
from repro.schedulers.ddo import DDOML, ODDOML
from repro.schedulers.hetero import HeteroIncremental
from repro.schedulers.holm import HoLM, ORROML
from repro.schedulers.maxreuse import MaxReuse
from repro.schedulers.omm import OMMOML

__all__ = [
    "BMM",
    "DDOML",
    "DemandChunkScheduler",
    "HeteroIncremental",
    "HoLM",
    "MaxReuse",
    "OBMM",
    "ODDOML",
    "OMMOML",
    "ORROML",
    "SECTION8_SCHEDULERS",
    "StaticChunkScheduler",
    "all_section8_schedulers",
    "section8_scheduler",
]

#: The seven Section 8 algorithms by acronym, in the paper's order
#: (optimized-layout group first, then Toledo group).
SECTION8_SCHEDULERS = {
    cls.name: cls for cls in (HoLM, ORROML, OMMOML, ODDOML, DDOML, BMM, OBMM)
}


def all_section8_schedulers() -> list:
    """Fresh instances of the seven algorithms of Section 8, in the
    paper's order (optimized-layout group first, then Toledo group)."""
    return [cls() for cls in SECTION8_SCHEDULERS.values()]


def section8_scheduler(name: str):
    """Fresh instance of the Section 8 algorithm with acronym ``name``.

    Sweep points carry algorithms by name (names are JSON-able and hash
    stably); per-point functions rebuild the instance through this.
    """
    try:
        return SECTION8_SCHEDULERS[name]()
    except KeyError:
        known = ", ".join(SECTION8_SCHEDULERS)
        raise KeyError(f"unknown Section 8 algorithm {name!r} (known: {known})")
