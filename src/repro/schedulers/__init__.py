"""The scheduling algorithms compared in Section 8.

Algorithms using the paper's optimized memory layout (µ×µ C tile plus
streamed A/B generations):

* :class:`HoLM` — the paper's homogeneous algorithm with resource
  selection (``P = min(p, ceil(µw/2c))``), round-robin service.
* :class:`ORROML` — HoLM without resource selection (all workers).
* :class:`OMMOML` — static min-min chunk assignment (earliest finish).
* :class:`ODDOML` — demand-driven with the spare buffer generation.
* :class:`DDOML` — demand-driven without spare buffers (bigger µ, no
  receive/compute overlap).

Algorithms using Toledo's memory layout:

* :class:`BMM` — memory in three equal square tiles, demand-driven, no
  overlap.
* :class:`OBMM` — five-way split so A/B tiles stream while computing.

Heterogeneous execution:

* :class:`HeteroIncremental` — phase-2 execution of the Section 6.2
  incremental selection (global/local/lookahead variants).

Single-worker reference:

* :class:`MaxReuse` — the Section 4.1 maximum re-use algorithm.

Use :func:`repro.engine.run_scheduler` to simulate any of them, or the
convenience :func:`all_section8_schedulers` registry for the benchmark
harness.
"""

from repro.schedulers.base import StaticChunkScheduler, DemandChunkScheduler
from repro.schedulers.bmm import BMM, OBMM
from repro.schedulers.ddo import DDOML, ODDOML
from repro.schedulers.hetero import HeteroIncremental
from repro.schedulers.holm import HoLM, ORROML
from repro.schedulers.maxreuse import MaxReuse
from repro.schedulers.omm import OMMOML

__all__ = [
    "BMM",
    "DDOML",
    "DemandChunkScheduler",
    "HeteroIncremental",
    "HoLM",
    "MaxReuse",
    "OBMM",
    "ODDOML",
    "OMMOML",
    "ORROML",
    "StaticChunkScheduler",
    "all_section8_schedulers",
]


def all_section8_schedulers() -> list:
    """Fresh instances of the seven algorithms of Section 8, in the
    paper's order (optimized-layout group first, then Toledo group)."""
    return [HoLM(), ORROML(), OMMOML(), ODDOML(), DDOML(), BMM(), OBMM()]
