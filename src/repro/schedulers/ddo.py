"""ODDOML and DDOML — the demand-driven algorithms with the paper's layout.

**ODDOML** ("Overlapped Demand-Driven, Optimized Memory Layout") keeps
the spare A/B buffer generation: "in order to use the extra buffers
available in the worker memories, it will send the next block to the
first worker which can receive it."  Chunk side µ satisfies
``µ² + 4µ ≤ m`` and phase ``j`` can stream in while phase ``j−1``
computes.

**DDOML** drops the spare buffers: "it sends the next block to the
first worker which is free for computation.  As workers never have to
receive and compute at the same time, the algorithm has no extra
buffer, so the memory available to store A, B, and C is greater" —
chunk side from ``µ² + 2µ ≤ m``, strictly alternating receive/compute.
"""

from __future__ import annotations

from repro.blocks.shape import ProblemShape
from repro.core.layout import mu_no_overlap, mu_overlap
from repro.engine.chunks import Chunk, tile_chunks
from repro.schedulers.base import DemandChunkScheduler

__all__ = ["ODDOML", "DDOML"]


class ODDOML(DemandChunkScheduler):
    """Demand-driven, overlap layout (spare buffer generation)."""

    name = "ODDOML"
    generation_gap = 2

    def chunk_param(self, m: int) -> int:
        return mu_overlap(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        return tile_chunks(shape, param)


class DDOML(DemandChunkScheduler):
    """Demand-driven, single-generation layout (larger µ, no overlap)."""

    name = "DDOML"
    generation_gap = 1

    def chunk_param(self, m: int) -> int:
        return mu_no_overlap(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        return tile_chunks(shape, param)
