"""The maximum re-use algorithm (Section 4.1) as an executable scheduler.

Single-worker, memory split ``1 + µ + µ²``: one A buffer, a row of µ B
buffers, a µ×µ resident C tile.  The outer loop walks C tiles; the
inner loop walks the inner dimension, shipping a row of µ B blocks and
then the µ A blocks one at a time, each A block updating a row of the
C tile.

Within the engine's accounting this is a chunk scheduler whose phases
are *sub-k*: for every k there is one µ-B-block delivery phase (zero
updates) followed by µ single-A-block phases of µ updates each.  With
no spare buffers the generation gap is 1.  The achieved CCR is
``2/t + 2/µ`` (Section 4.2), asymptotically within √(32/27) ≈ 1.09 of
the lower bound ``sqrt(27/(8m))``.
"""

from __future__ import annotations

from repro.blocks.shape import ProblemShape
from repro.core.layout import max_reuse_mu
from repro.engine.chunks import Chunk, Phase
from repro.engine.engine import Engine
from repro.schedulers.base import StaticChunkScheduler

__all__ = ["MaxReuse"]


class MaxReuse(StaticChunkScheduler):
    """Single-worker maximum re-use scheduler.

    A/B streaming is modelled at row granularity: for each k the first
    sub-phase ships the µ-block B row together with the first A block
    (updating the tile's first row), and each further sub-phase ships
    one more A block (updating one more row).  Peak buffer usage is thus
    exactly ``µ² + µ + 1`` blocks — the Section 4.1 layout.
    """

    name = "MaxReuse"
    generation_gap = 1

    def chunk_param(self, m: int) -> int:
        return max_reuse_mu(m)

    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        mu = param
        chunks: list[Chunk] = []
        for c0 in range(0, shape.s, mu):
            c1 = min(c0 + mu, shape.s)
            for r0 in range(0, shape.r, mu):
                r1 = min(r0 + mu, shape.r)
                cols = c1 - c0
                phases: list[Phase] = []
                for k in range(shape.t):
                    for row in range(r0, r1):
                        phases.append(
                            Phase(
                                k_range=(k, k + 1),
                                a_blocks=1,
                                b_blocks=cols if row == r0 else 0,
                                updates=cols,
                                row_range=(row, row + 1),
                            )
                        )
                chunks.append(Chunk((r0, r1), (c0, c1), tuple(phases)))
        return chunks

    def assign(self, platform, shape, chunks):  # type: ignore[override]
        if platform.p != 1:
            raise ValueError("MaxReuse is the single-worker algorithm (p=1)")
        return {0: chunks}
