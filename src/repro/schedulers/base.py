"""Scheduler base classes.

Two families cover all seven Section-8 algorithms:

* :class:`StaticChunkScheduler` — the assignment of chunks to workers is
  fixed before execution (HoLM, ORROML, OMMOML);
* :class:`DemandChunkScheduler` — a shared chunk queue is drained by
  whichever enrolled worker frees up first (ODDOML, DDOML, BMM, OBMM).

Subclasses specify the memory layout through two hooks: ``chunk_param``
(the tile side µ or σ derived from a worker's memory) and
``generation_gap`` (2 when the layout reserves a spare A/B generation
for overlap, 1 otherwise), plus ``build_chunks`` for tile geometry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.blocks.shape import ProblemShape
from repro.engine.chunks import Chunk
from repro.engine.engine import ChunkQueue, Engine
from repro.platform.model import Platform

__all__ = ["ChunkScheduler", "StaticChunkScheduler", "DemandChunkScheduler"]


class ChunkScheduler(ABC):
    """Common scaffolding: layout hooks and chunk construction."""

    #: Human-readable algorithm name (the paper's acronym).
    name: str = "scheduler"
    #: 2 with a spare A/B buffer generation (overlap), 1 without.
    generation_gap: int = 2

    @abstractmethod
    def chunk_param(self, m: int) -> int:
        """Tile side (µ or σ) for a worker with ``m`` block buffers."""

    @abstractmethod
    def build_chunks(self, shape: ProblemShape, param: int) -> list[Chunk]:
        """Partition the problem into chunks for tile side ``param``."""

    def common_param(self, platform: Platform) -> int:
        """Single tile side for a homogeneous run (smallest worker rules)."""
        return self.chunk_param(min(wk.m for wk in platform.workers))

    @abstractmethod
    def launch(self, engine: Engine) -> None:
        """Create the run's agents inside ``engine``."""

    def plan_signatures(
        self, shape: ProblemShape, c: np.ndarray, w: np.ndarray, m: np.ndarray
    ) -> Optional[list[Hashable]]:
        """Cheap structural tokens for batched model estimation.

        ``c``/``w``/``m`` are ``(n, p)`` arrays of per-worker rates, one
        row per platform of a sweep batch.  Returns one hashable token
        per row under the contract *equal tokens ⇒* :meth:`launch`
        *builds identical agent structure on those platforms* (same
        chunk streams in the same order, same worker indices, same
        generation gap) — or ``None`` when the scheduler cannot promise
        that without actually launching.  ``None`` (the default) makes
        the batch layer launch every point and group by the full
        structural signature instead, which is always sound but pays a
        per-point launch.

        Implementations must derive tokens from the class and the
        arguments alone, never from per-instance mutable state: the
        batch layer asks a single instance to answer for every point
        that shares its class.
        """
        return None


class StaticChunkScheduler(ChunkScheduler):
    """Chunks are pre-assigned; each worker runs its list in order."""

    @abstractmethod
    def assign(
        self, platform: Platform, shape: ProblemShape, chunks: list[Chunk]
    ) -> dict[int, list[Chunk]]:
        """Map 0-based worker index → ordered chunk list."""

    def launch(self, engine: Engine) -> None:
        param = self.common_param(engine.platform)
        chunks = self.build_chunks(engine.shape, param)
        assignment = self.assign(engine.platform, engine.shape, chunks)
        assigned = sum(len(v) for v in assignment.values())
        if assigned != len(chunks):
            raise RuntimeError(
                f"{self.name}: assigned {assigned} of {len(chunks)} chunks"
            )
        for widx, worker_chunks in sorted(assignment.items()):
            if worker_chunks:
                engine.env.process(
                    engine.static_agent(widx, worker_chunks, self.generation_gap),
                    name=f"{self.name}-P{widx + 1}",
                )


class DemandChunkScheduler(ChunkScheduler):
    """Chunks live in a shared queue drained by free workers."""

    def enrolled(self, platform: Platform, shape: ProblemShape) -> Sequence[int]:
        """0-based indices of the workers allowed to participate.

        The demand-driven algorithms of Section 8 enroll everyone;
        subclasses may restrict.
        """
        return range(platform.p)

    def plan_signatures(
        self, shape: ProblemShape, c: np.ndarray, w: np.ndarray, m: np.ndarray
    ) -> Optional[list[Hashable]]:
        # A demand run's launch structure is one shared chunk queue plus
        # an agent per enrolled worker.  With the default
        # enroll-everyone rule that depends only on the tile side, i.e.
        # on the smallest memory; which worker drains which chunk is
        # timing, and the batched scan's dispatch-order lock owns that.
        if type(self).enrolled is not DemandChunkScheduler.enrolled:
            return None
        params: dict[int, tuple] = {}
        tokens: list[Hashable] = []
        for mem in m.min(axis=1).tolist():
            tok = params.get(mem)
            if tok is None:
                tok = (self.name, self.chunk_param(int(mem)))
                params[mem] = tok
            tokens.append(tok)
        return tokens

    def launch(self, engine: Engine) -> None:
        param = self.common_param(engine.platform)
        chunks = self.build_chunks(engine.shape, param)
        queue = ChunkQueue(chunks)
        for widx in self.enrolled(engine.platform, engine.shape):
            engine.env.process(
                engine.demand_agent(widx, queue, self.generation_gap),
                name=f"{self.name}-P{widx + 1}",
            )
