"""repro — a reproduction of *Revisiting Matrix Product on Master-Worker
Platforms* (Dongarra, Pineau, Robert, Shi, Vivien; IPDPS 2007 / INRIA
RR-6053).

The package implements, from scratch:

* the paper's theory — memory layouts, the maximum re-use algorithm and
  the Loomis-Whitney communication lower bound (:mod:`repro.core`);
* the Section 3 simplified scheduling model with the alternating
  greedy, Thrifty and Min-min algorithms (:mod:`repro.simple`);
* homogeneous resource selection / HoLM and the six comparison
  algorithms of Section 8 (:mod:`repro.schedulers`);
* heterogeneous steady-state and incremental selection, Section 6
  (:mod:`repro.core.heterogeneous`);
* the LU factorization extension, Section 7 (:mod:`repro.lu`);
* the substrate the authors had in hardware: a deterministic
  discrete-event simulator of one-port star platforms
  (:mod:`repro.sim`, :mod:`repro.platform`, :mod:`repro.engine`) plus a
  numpy block-matrix layer for numerical verification
  (:mod:`repro.blocks`);
* an experiment harness regenerating every table and figure
  (:mod:`repro.experiments`, driven by ``python -m repro``).

Quickstart::

    from repro.platform import ut_cluster_platform
    from repro.blocks import ProblemShape
    from repro.engine import run_scheduler
    from repro.schedulers import HoLM

    platform = ut_cluster_platform(p=8)
    shape = ProblemShape.from_elements(8000, 8000, 64000, q=80)
    trace = run_scheduler(HoLM(), platform, shape)
    print(trace.makespan, trace.enrolled_workers)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
