"""Heterogeneity-degree sweep — the study Section 8 announces.

The paper's experiment section promises ("in the final version")
results "assessing the impact of the degree of heterogeneity (in
processor speed, link bandwidth and memory capacity) on the performance
of the various algorithms".  This module provides that study on the
simulator:

* platform families parameterised by a heterogeneity degree ``h``:
  worker ``i``'s ``c_i``/``w_i``/``m_i`` are scaled by factors drawn
  geometrically in ``[1/(1+h), 1+h]`` while keeping the platform's
  aggregate capability constant;
* for each degree: the steady-state upper bound, the global/local
  incremental selections, and the executed makespan of the
  HeteroIncremental scheduler.

One sweep point = one (degree, variant) pair; the platform family is
rebuilt inside the point from its seed, so points are pure.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.analysis.metrics import summarize_trace
from repro.analysis.tables import format_table
from repro.blocks.shape import ProblemShape
from repro.core.heterogeneous import (
    bandwidth_centric_steady_state,
    global_selection,
    local_selection,
)
from repro.engine import run_scheduler
from repro.platform.model import Platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers.hetero import HeteroIncremental

__all__ = ["heterogeneous_family", "run", "main", "sweep", "campaign"]


def heterogeneous_family(
    p: int,
    degree: float,
    base_c: float = 1.0,
    base_w: float = 2.0,
    base_m: int = 120,
    seed: int = 42,
) -> Platform:
    """Build a platform whose parameters spread by factor ``1 + degree``.

    ``degree = 0`` gives the homogeneous base; larger degrees spread
    each worker's ``c``, ``w`` geometrically within
    ``[base/(1+degree), base·(1+degree)]`` (and memory similarly),
    using a seeded RNG so families are reproducible.
    """
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    rng = np.random.default_rng(seed)
    span = np.log(1.0 + degree) if degree > 0 else 0.0
    c, w, m = [], [], []
    for _ in range(p):
        c.append(base_c * float(np.exp(rng.uniform(-span, span))))
        w.append(base_w * float(np.exp(rng.uniform(-span, span))))
        m.append(max(12, int(base_m * float(np.exp(rng.uniform(-span, span))))))
    return Platform.heterogeneous(c, w, m, name=f"hetero(h={degree:g})")


def _point(params: Mapping) -> dict:
    """Bound, selection ratio and executed makespan for one (degree, variant)."""
    degree, variant = params["degree"], params["variant"]
    platform = heterogeneous_family(params["p"], degree, seed=params["seed"])
    r, s, t = params["r"], params["s"], params["t"]
    steady = bandwidth_centric_steady_state(platform)
    if variant == "global":
        selection = global_selection(platform, r, s, t, max_steps=5000)
    else:
        selection = local_selection(platform, r, s, t, max_steps=5000)
    shape = ProblemShape(r=r, s=s, t=t, q=params["q"])
    trace = run_scheduler(
        HeteroIncremental(variant), platform, shape,
        engine=params.get("engine", "fast"),
    )
    summary = summarize_trace(trace)
    return {
        "degree": degree,
        "variant": variant,
        "steady_bound": steady.throughput,
        "selection_ratio": selection.ratio,
        "makespan": summary.makespan,
        "workers": summary.workers_used,
        "port_util": summary.port_utilisation,
    }


def sweep(
    degrees: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    p: int = 4,
    shape: ProblemShape | None = None,
    seed: int = 42,
    engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare the (degree × variant) sweep, degree-major."""
    shape = shape or ProblemShape(r=40, s=60, t=20, q=16)
    points = tuple(
        {
            "degree": degree,
            "variant": variant,
            "p": p,
            "r": shape.r,
            "s": shape.s,
            "t": shape.t,
            "q": shape.q,
            "seed": seed,
        }
        for degree in degrees
        for variant in ("global", "local")
    )
    return Sweep(
        name="hetero",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Heterogeneity-degree sweep (the study announced in Section 8)",
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The heterogeneity campaign (a single sweep)."""
    return Campaign("hetero", (sweep(engine=engine, backend=backend),))


def run(
    degrees: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    p: int = 4,
    shape: ProblemShape | None = None,
    engine: str = "fast",
    jobs: int = 1,
    backend: str | None = None,
) -> list[dict]:
    """Sweep the heterogeneity degree; one row per (degree, variant)."""
    return run_sweep(
        sweep(degrees=degrees, p=p, shape=shape, engine=engine, backend=backend),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the heterogeneity sweep."""
    print(
        format_table(
            run(),
            title="Heterogeneity-degree sweep (the study announced in Section 8)",
        )
    )
    print(
        "\nShape: as heterogeneity grows the steady-state bound and the "
        "incremental selections diverge (memory limits bite), and the "
        "selection algorithms concentrate work on efficient workers."
    )


if __name__ == "__main__":
    main()
