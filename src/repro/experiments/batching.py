"""Shared glue for the experiments' batchable point functions.

Each ported experiment module declares a top-level ``batch_fn`` beside
its per-point ``run_fn`` (the :data:`repro.runner.BatchableFn`
contract).  The pattern is always the same: translate each point's
parameters into a :class:`repro.engine.BatchItem`, hand the whole group
to :func:`repro.engine.run_batch` (which vectorizes structure-sharing
subgroups and falls back to the scalar fast engine everywhere it cannot
prove byte-identity), then format each trace into the point's table
row.  This module keeps that translation loop in one place.
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Sequence

from repro.engine import BatchItem, run_batch

__all__ = ["evaluate_batch"]


def evaluate_batch(
    points: Sequence[Mapping[str, Any]],
    make_item: Callable[[Mapping[str, Any]], BatchItem],
    make_row: Callable[[Mapping[str, Any], Any], Any],
) -> List[Any]:
    """Evaluate ``points`` through the batched engine; rows in order.

    ``make_item`` rebuilds one point's :class:`BatchItem` from its
    parameter mapping (pure, like the per-point function itself);
    ``make_row`` turns ``(params, trace)`` into that point's result.
    The traces come back from :func:`run_batch` byte-identical to
    ``engine="fast"``, so the rows match the scalar path exactly.
    """
    traces = run_batch([make_item(params) for params in points])
    return [make_row(params, trace) for params, trace in zip(points, traces)]
