"""Section 7 — LU factorization costs and pivot-size selection.

Three sub-experiments:

1. **Cost model** — exact communication/computation totals vs the
   paper's closed forms over an ``r`` sweep (documenting that the
   printed communication formula omits the lower-order panel terms).
2. **Homogeneous parallelisation** — worker count ``P = ceil(µw/3c)``
   and the resulting makespan estimate on the UT cluster.
3. **Heterogeneous pivot search** — best pivot size µ on the Table 2
   platform, with the per-worker chunk policies.

The module's campaign groups four sweeps (costs, homogeneous,
policies, simulation); each ``run_*`` helper is the serial wrapper
around its sweep.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import format_table
from repro.core.heterogeneous import chunk_sizes
from repro.core.layout import mu_overlap
from repro.lu import (
    best_pivot_size,
    chunk_policy,
    lu_communication_paper_closed_form,
    lu_computation_closed_form,
    lu_makespan_estimate,
    lu_total_cost,
    lu_worker_count,
    simulate_parallel_lu,
)
from repro.platform.named import table2_platform, ut_cluster_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points

__all__ = [
    "run_costs",
    "run_homogeneous",
    "run_hetero_policies",
    "run_simulation",
    "main",
    "campaign",
]


def _costs_point(params: Mapping) -> dict:
    """Exact totals vs closed forms for one ``r``."""
    r, mu = params["r"], params["mu"]
    comm, comp = lu_total_cost(r, mu)
    return {
        "r": r,
        "mu": mu,
        "comm_exact": comm,
        "comm_paper": lu_communication_paper_closed_form(r, mu),
        "comm_panel_terms": 2.0 * r * (r - mu),
        "comp_exact": comp,
        "comp_paper": lu_computation_closed_form(r, mu),
    }


def _homogeneous_point(params: Mapping) -> dict:
    """Worker count and makespan estimate for one candidate µ."""
    r, p, mu = params["r"], params["p"], params["mu"]
    platform = ut_cluster_platform(p=p)
    wk = platform.workers[0]
    return {
        "mu": mu,
        "P=ceil(mu*w/3c)": lu_worker_count(mu, wk.c, wk.w, p),
        "makespan_est_s": lu_makespan_estimate(r, mu, wk.c, wk.w, p),
    }


def _policies_point(params: Mapping) -> list[dict]:
    """Chunk policies + exhaustive pivot search (couples all workers)."""
    r = params["r"]
    platform = table2_platform()
    best_mu, best_time = best_pivot_size(platform, r)
    mus = chunk_sizes(platform)
    rows = []
    for wk, mu_i in zip(platform.workers, mus):
        pol = chunk_policy(mu_i, best_mu, wk.c, wk.w)
        rows.append(
            {
                "worker": wk.label,
                "mu_i": mu_i,
                "pivot_mu": best_mu,
                "policy": pol.shape,
                "ratio": pol.ratio,
                "virtual": pol.virtual_count,
                "est_total_s": best_time,
            }
        )
    return rows


def _simulation_point(params: Mapping) -> dict:
    """Engine-simulated parallel LU for one µ."""
    r, p, mu = params["r"], params["p"], params["mu"]
    platform = ut_cluster_platform(p=p)
    wk = platform.workers[0]
    trace = simulate_parallel_lu(platform, r, mu)
    return {
        "mu": mu,
        "workers": len(trace.enrolled_workers),
        "sim_makespan_s": trace.makespan,
        "estimate_s": lu_makespan_estimate(r, mu, wk.c, wk.w, p),
        "port_util": trace.port_utilisation(0),
    }


def costs_sweep(
    mu: int = 8, r_values: tuple[int, ...] = (16, 32, 64, 128),
    backend: str | None = None,
) -> Sweep:
    """Declare one cost-model point per ``r``."""
    return Sweep(
        name="lu-costs",
        run_fn=_costs_point,
        points=stamp_points(
            tuple({"r": r, "mu": mu} for r in r_values), backend=backend
        ),
        title="Section 7.1: LU cost model (block units)",
    )


def homogeneous_sweep(
    r: int = 196, p: int = 8, backend: str | None = None
) -> Sweep:
    """Declare one point per candidate pivot size µ."""
    platform = ut_cluster_platform(p=p)
    mu = mu_overlap(platform.workers[0].m)
    candidates = sorted(
        {7, 14, 28, 49, 98, mu} & set(d for d in range(1, r + 1) if r % d == 0)
    )
    return Sweep(
        name="lu-homogeneous",
        run_fn=_homogeneous_point,
        points=stamp_points(
            tuple({"r": r, "p": p, "mu": c} for c in candidates),
            backend=backend,
        ),
        title="Section 7.2: homogeneous LU — workers and makespan estimates",
    )


def policies_sweep(r: int = 36, backend: str | None = None) -> Sweep:
    """Declare the single pivot-search point (all workers coupled)."""
    return Sweep(
        name="lu-policies",
        run_fn=_policies_point,
        points=stamp_points(({"r": r},), backend=backend),
        title="Section 7.3: heterogeneous chunk policies (Table 2 platform)",
    )


def simulation_sweep(
    r: int = 56, p: int = 8, engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare one simulated-LU point per µ dividing ``r``.

    ``engine`` is stamped for interface uniformity; the LU study uses
    its own kernel-level simulator (:func:`simulate_parallel_lu`), so
    the knob is inert here.
    """
    return Sweep(
        name="lu-simulation",
        run_fn=_simulation_point,
        points=stamp_points(
            tuple(
                {"r": r, "p": p, "mu": mu}
                for mu in (7, 14, 28)
                if r % mu == 0
            ),
            engine=engine,
            backend=backend,
        ),
        title="Section 7.2: simulated parallel LU on the UT cluster",
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The four LU sweeps, in the order ``main()`` prints them."""
    return Campaign(
        "lu",
        (
            costs_sweep(backend=backend),
            homogeneous_sweep(backend=backend),
            policies_sweep(backend=backend),
            simulation_sweep(engine=engine, backend=backend),
        ),
    )


def run_costs(
    mu: int = 8, r_values: tuple[int, ...] = (16, 32, 64, 128),
    jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Exact totals vs closed forms for an ``r`` sweep."""
    return run_sweep(
        costs_sweep(mu=mu, r_values=r_values, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def run_homogeneous(
    r: int = 196, p: int = 8, jobs: int = 1, backend: str | None = None
) -> list[dict]:
    """Worker counts and makespan estimates on the UT cluster."""
    return run_sweep(
        homogeneous_sweep(r=r, p=p, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def run_hetero_policies(
    r: int = 36, jobs: int = 1, backend: str | None = None
) -> list[dict]:
    """Chunk policies and the exhaustive pivot search on Table 2."""
    return run_sweep(
        policies_sweep(r=r, backend=backend), jobs=jobs, backend=backend
    ).rows


def run_simulation(
    r: int = 56, p: int = 8, engine: str = "fast",
    jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Engine-simulated parallel LU vs the closed-form estimate."""
    return run_sweep(
        simulation_sweep(r=r, p=p, engine=engine, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def main() -> None:
    """Print all three LU sub-experiments."""
    print(format_table(run_costs(), title="Section 7.1: LU cost model (block units)"))
    print(
        "\nNote: the paper's printed communication closed form equals "
        "pivot+core only; the panel terms (column comm_panel_terms) are "
        "the lower-order difference.\n"
    )
    print(
        format_table(
            run_homogeneous(),
            title="Section 7.2: homogeneous LU — workers and makespan estimates",
        )
    )
    print()
    print(
        format_table(
            run_hetero_policies(),
            title="Section 7.3: heterogeneous chunk policies (Table 2 platform)",
        )
    )
    print()
    print(
        format_table(
            run_simulation(),
            title="Section 7.2: simulated parallel LU on the UT cluster",
        )
    )


if __name__ == "__main__":
    main()
