"""Table 2, Figures 7 and 8 — the incremental selection algorithms.

On the three-worker platform ``c = (2,3,5), w = (2,3,1), µ = (6,18,10)``
the paper derives:

* global selection (Algorithm 3): the first selections are P2 then
  alternating P1/P3, a 13-communication cyclic pattern; asymptotic
  computation-per-communication ratio ≈ 1.17 (Figure 7);
* local selection: same first 13 decisions, diverges at the 14th;
  ratio ≈ 1.21 (Figure 8);
* two-step lookahead: ratio ≈ 1.30;
* steady-state upper bound (no memory limits): 25/18 ≈ 1.39.

``run()`` reproduces all four numbers; ``main()`` also renders the two
Gantt charts.  One sweep point = one selection variant.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.gantt import gantt_selection
from repro.analysis.tables import format_table
from repro.core.heterogeneous import (
    bandwidth_centric_steady_state,
    global_selection,
    local_selection,
    lookahead_selection,
)
from repro.platform.named import table2_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points

__all__ = ["run", "main", "sweep", "campaign"]

#: Large horizon used to estimate asymptotic ratios.
_R, _S, _T = 10**6, 10**7, 10**6


def _point(params: Mapping) -> dict:
    """Asymptotic ratio of one selection variant on the Table 2 platform."""
    platform = table2_platform()
    variant = params["variant"]
    r, s, t = params["r"], params["s"], params["t"]
    if variant == "steady":
        steady = bandwidth_centric_steady_state(platform)
        return {
            "algorithm": "steady-state bound",
            "ratio": steady.throughput,
            "paper": 1.39,
            "first_selections": "-",
        }
    if variant == "global":
        g = global_selection(platform, r, s, t, max_steps=params["steps"])
        return {
            "algorithm": "global (Algorithm 3)",
            "ratio": g.ratio,
            "paper": 1.17,
            "first_selections": "".join(map(str, g.sequence[:14])),
        }
    if variant == "local":
        l = local_selection(platform, r, s, t, max_steps=params["steps"])
        return {
            "algorithm": "local",
            "ratio": l.ratio,
            "paper": 1.21,
            "first_selections": "".join(map(str, l.sequence[:14])),
        }
    depth = params["depth"]
    la = lookahead_selection(
        platform, r, s, t, depth=depth, max_steps=params["steps"]
    )
    return {
        "algorithm": f"lookahead depth={depth}",
        "ratio": la.ratio,
        "paper": 1.30 if depth == 2 else float("nan"),
        "first_selections": "".join(map(str, la.sequence[:14])),
    }


def sweep(
    steps: int = 2000, lookahead_depths: tuple[int, ...] = (2, 3),
    engine: str = "fast", backend: str | None = None,
) -> Sweep:
    """Declare one point per selection variant, in the paper's order.

    ``engine`` is stamped for interface uniformity; the selection
    algorithms do not use the chunk engine, so the knob is inert.
    """
    base = {"r": _R, "s": _S, "t": _T, "steps": steps}
    points: list[dict] = [{"variant": "steady", **base}]
    points.append({"variant": "global", **base})
    points.append({"variant": "local", **base})
    for depth in lookahead_depths:
        points.append({"variant": "lookahead", "depth": depth, **base})
    return Sweep(
        name="table2",
        run_fn=_point,
        points=stamp_points(tuple(points), engine=engine, backend=backend),
        title="Table 2 platform: computation-per-communication ratios",
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The Table 2 campaign (a single sweep)."""
    return Campaign("table2", (sweep(engine=engine, backend=backend),))


def run(
    steps: int = 2000, lookahead_depths: tuple[int, ...] = (2, 3),
    engine: str = "fast", jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Measure asymptotic ratios of every selection variant."""
    return run_sweep(
        sweep(
            steps=steps, lookahead_depths=lookahead_depths, engine=engine,
            backend=backend,
        ),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the ratio table and the Figure 7/8 Gantt charts."""
    print(
        format_table(
            run(),
            title="Table 2 platform: computation-per-communication ratios",
        )
    )
    platform = table2_platform()
    g = global_selection(platform, _R, _S, _T, max_steps=40)
    l = local_selection(platform, _R, _S, _T, max_steps=40)
    horizon = min(g.completion_time, l.completion_time)
    print("\nFigure 7 (global selection):")
    print(gantt_selection(g, workers=3, width=100, max_time=horizon))
    print("\nFigure 8 (local selection):")
    print(gantt_selection(l, workers=3, width=100, max_time=horizon))


if __name__ == "__main__":
    main()
