"""Robustness sweep — scheduler degradation under non-stationary platforms.

The paper's experiments assume stationary platforms, yet its own Figure
11 documents a ~6 % run-to-run spread; real clusters add time-varying
bandwidth, flaky workers and background traffic on top.  This sweep —
an extrapolation *beyond* the paper (see ``docs/paper-mapping.md``) —
measures how gracefully the seven Section-8 algorithms plus the
single-worker MaxReuse reference degrade as non-stationarity grows.

For every (scenario family × severity × algorithm) point the pure
per-point function

1. simulates the algorithm on the stationary UT-cluster platform to get
   the **baseline makespan** (which also sets the scenario's time
   horizon, so one severity means the same *relative* disturbance for
   every algorithm and scale);
2. rebuilds the scenario from its JSON-able spec
   (:func:`repro.scenarios.build_scenario`) and re-simulates under it;
3. reports the **degradation ratio** ``makespan / baseline``.

Scenario families (:data:`repro.scenarios.SCENARIO_KINDS`): ``drift``
(rates re-drawn over time), ``dropout`` (workers suffer severe
slowdowns mid-run), ``congestion`` (background port traffic),
``brownout`` (shared-link bandwidth loss and recovery),
``randomwalk`` (rates wander as a bounded seeded stochastic process)
and ``multidrop`` (a correlated multi-worker dropout cascade — one
rack event, not independent victims).

Expected shape: the demand-driven algorithms (ODDOML, DDOML, BMM,
OBMM) absorb drift and dropout far better than the static assignments
(HoLM, ORROML, OMMOML) — work migrates away from degraded workers by
construction — while congestion and brownout hit everyone roughly in
proportion to their port utilisation.

One deliberate deviation from the runner's "library calls write
nothing" rule: the stationary baselines are persisted through
:func:`repro.runner.cached_call` even when the sweep itself runs
cache-less, because re-simulating a baseline per process is the single
largest waste in this experiment and the whole point of sharing it
across pools, backends and runs.  Set ``$REPRO_CACHE_DIR`` to relocate
that store or ``$REPRO_CACHE_DISABLE=1`` to turn it off (the CLI's
``--cache-dir``/``--no-cache`` export exactly these).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Mapping, Optional, Sequence

from repro.analysis.metrics import summarize_trace
from repro.analysis.tables import format_table
from repro.engine import BatchItem, run_batch, run_scheduler
from repro.platform.named import ut_cluster_platform
from repro.runner import Campaign, Sweep, cached_call, run_sweep, stamp_points
from repro.scenarios import build_scenario, scenario_spec
from repro.schedulers import SECTION8_SCHEDULERS, MaxReuse, section8_scheduler
from repro.workloads import fig10_workloads

__all__ = ["ALGORITHMS", "KINDS", "SEVERITIES", "run", "main", "sweep", "campaign"]

#: The scenario families swept, in reporting order (the ``stationary``
#: family is the implicit severity-0 baseline of every point).
KINDS = (
    "drift", "dropout", "congestion", "brownout", "randomwalk", "multidrop",
)
#: The severity grid.
SEVERITIES = (0.25, 0.5, 1.0)
#: The seven Section-8 algorithms plus the MaxReuse reference.
ALGORITHMS = tuple(SECTION8_SCHEDULERS) + ("MaxReuse",)


def _scheduler_and_platform(algorithm: str, p: int, memory_mb: float, q: int):
    """Build a point's scheduler and platform from its scalars.

    MaxReuse is the single-worker reference algorithm: it runs on a
    one-worker subset of the same cluster (scenario worker indices then
    refer to that subset's worker 1).
    """
    platform = ut_cluster_platform(p=p, memory_mb=memory_mb, q=q)
    if algorithm == "MaxReuse":
        return MaxReuse(), platform.subset((1,), name=f"{platform.name}[P1]")
    return section8_scheduler(algorithm), platform


def _stationary_makespan(
    algorithm: str, p: int, memory_mb: float, q: int, scale: int, engine: str
) -> float:
    """Simulate one algorithm's stationary baseline (uncached kernel)."""
    scheduler, platform = _scheduler_and_platform(algorithm, p, memory_mb, q)
    shape = fig10_workloads(scale)[0].shape(q)
    trace = run_scheduler(scheduler, platform, shape, engine=engine)
    return trace.work_makespan


@lru_cache(maxsize=None)
def _baseline_makespan(
    algorithm: str, p: int, memory_mb: float, q: int, scale: int, engine: str
) -> float:
    """Stationary work makespan of one algorithm, memoized at two levels.

    The baseline is identical across a point's whole (kind × severity)
    grid — only these six scalars matter.  The ``lru_cache`` keeps it
    hot within one process; underneath, :func:`repro.runner.cached_call`
    persists it in the sweep result cache (``$REPRO_CACHE_DIR`` or the
    default location, keyed by these scalars plus the package code
    version), so fresh worker pools, the persistent backend's warm
    workers, and later runs all reuse one simulation per algorithm
    instead of recomputing it per process.
    """
    return cached_call(
        "robustness-baseline",
        _stationary_makespan,
        algorithm, p, memory_mb, q, scale, engine,
    )


def _prepare(params: Mapping) -> tuple:
    """One point's ``(BatchItem, baseline makespan)`` from its scalars."""
    algorithm = params["algorithm"]
    p, memory_mb, q = params["p"], params["memory_mb"], params["q"]
    scale = params["scale"]
    engine = params.get("engine", "fast")
    base_makespan = _baseline_makespan(algorithm, p, memory_mb, q, scale, engine)

    spec = scenario_spec(
        params["scenario_kind"], params["severity"],
        horizon=base_makespan, seed=params["seed"],
    )
    scheduler, platform = _scheduler_and_platform(algorithm, p, memory_mb, q)
    scenario = build_scenario(platform, spec)
    shape = fig10_workloads(scale)[0].shape(q)
    del scheduler  # the item carries a fresh-instance factory instead
    item = BatchItem(
        scheduler=lambda: _scheduler_and_platform(algorithm, p, memory_mb, q)[0],
        platform=platform,
        shape=shape,
        engine=engine,
        scenario=scenario,
    )
    return item, base_makespan


def _row(params: Mapping, base_makespan: float, trace) -> dict:
    makespan = trace.work_makespan
    return {
        "scenario": params["scenario_kind"],
        "severity": params["severity"],
        "algorithm": params["algorithm"],
        "base_makespan_s": base_makespan,
        "makespan_s": makespan,
        "degradation": makespan / base_makespan,
        "workers": summarize_trace(trace).workers_used,
    }


def _point(params: Mapping) -> dict:
    """Baseline + scenario simulation of one algorithm; one table row.

    Makespans are *work* makespans (``Trace.work_makespan``): background
    holds contend for the port but do not themselves count as work, so
    the congestion family measures real delay, not the synthetic hold's
    own end time.
    """
    item, base_makespan = _prepare(params)
    trace = run_scheduler(
        item.scheduler(), item.platform, item.shape,
        engine=item.engine, scenario=item.scenario,
    )
    return _row(params, base_makespan, trace)


def _batch_points(points: Sequence[Mapping]) -> list:
    """Batched robustness evaluation.

    Scenario runs currently route through :func:`run_batch`'s scalar
    fallback (non-stationary rates defeat structure sharing), so this
    is about dispatch uniformity, not speed — the win stays the shared
    persisted baselines.  If scenario batching lands in the engine, the
    sweep picks it up here with no further changes.
    """
    prepared = [_prepare(params) for params in points]
    traces = run_batch([item for item, _ in prepared])
    return [
        _row(params, base, trace)
        for params, (_, base), trace in zip(points, prepared, traces)
    ]


def sweep(
    scale: int = 1,
    p: int = 8,
    memory_mb: float = 512.0,
    q: int = 80,
    engine: str = "fast",
    kinds: Sequence[str] = KINDS,
    severities: Sequence[float] = SEVERITIES,
    seed: int = 0,
    backend: str | None = None,
) -> Sweep:
    """Declare the (kind × severity × algorithm) robustness sweep."""
    points = tuple(
        {
            "scenario_kind": kind,
            "severity": severity,
            "algorithm": name,
            "p": p,
            "memory_mb": memory_mb,
            "q": q,
            "scale": scale,
            "seed": seed,
        }
        for kind in kinds
        for severity in severities
        for name in ALGORITHMS
    )
    return Sweep(
        name="robustness",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Robustness: makespan degradation under non-stationary platforms",
        batch_fn=_batch_points,
    )


def campaign(
    scale: int = 1, engine: str = "fast", scenario: Optional[str] = None,
    backend: str | None = None,
) -> Campaign:
    """The robustness campaign (a single sweep).

    ``scenario`` narrows the grid from the CLI's ``--scenario`` knob:
    ``"dropout"`` keeps only that family, ``"dropout:0.5"`` additionally
    pins the severity.
    """
    kinds: Sequence[str] = KINDS
    severities: Sequence[float] = SEVERITIES
    if scenario is not None:
        from repro.scenarios import parse_scenario_arg

        kind, severity = parse_scenario_arg(scenario)
        if kind == "stationary":
            raise ValueError(
                "the stationary family is the sweep's implicit baseline; "
                f"pick one of {KINDS}"
            )
        kinds = (kind,)
        if severity is not None:
            severities = (severity,)
    return Campaign(
        "robustness",
        (
            sweep(
                scale=scale, engine=engine, kinds=kinds,
                severities=severities, backend=backend,
            ),
        ),
    )


def run(
    scale: int = 1,
    p: int = 8,
    memory_mb: float = 512.0,
    q: int = 80,
    engine: str = "fast",
    kinds: Sequence[str] = KINDS,
    severities: Sequence[float] = SEVERITIES,
    seed: int = 0,
    jobs: int = 1,
    backend: str | None = None,
) -> list[dict]:
    """Run the robustness sweep; one row per (kind, severity, algorithm).

    ``scale`` divides matrix dimensions as in the other experiments
    (the scenario horizon follows the baseline makespan, so severities
    are scale-invariant in their relative effect).
    """
    return run_sweep(
        sweep(
            scale=scale, p=p, memory_mb=memory_mb, q=q, engine=engine,
            kinds=kinds, severities=severities, seed=seed, backend=backend,
        ),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the robustness table."""
    print(
        format_table(
            run(),
            title="Robustness: makespan degradation under non-stationary platforms",
        )
    )
    print(
        "\nExpected shape: demand-driven algorithms (ODDOML, DDOML, BMM, OBMM) "
        "absorb drift/dropout best; static assignments (HoLM, ORROML, OMMOML) "
        "degrade hardest; congestion and brownout scale with port utilisation."
    )


if __name__ == "__main__":
    main()
