"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> list[dict]`` returning the rows the
paper's corresponding table/figure reports, a ``main()`` that prints
them, and a ``campaign()`` declaring the same work as
:class:`repro.runner.Campaign` sweeps for the parallel/cached runner
(``python -m repro sweep <name>``).  The ``benchmarks/`` directory
wraps these in pytest-benchmark targets; the CLI (``python -m repro``)
runs them by name.

| Module              | Reproduces                                             |
|---------------------|--------------------------------------------------------|
| ``fig04``           | Fig. 4 — Thrifty vs Min-min counterexamples            |
| ``bounds``          | §4 — CCR of max-re-use vs the lower bounds             |
| ``maxreuse_trace``  | Figs. 5/6 — max-re-use memory layout walk              |
| ``table1``          | Table 1 — bandwidth-centric memory infeasibility       |
| ``table2``          | Table 2 + Figs. 7/8 — selection-algorithm ratios       |
| ``fig10``           | Fig. 10 — 7 algorithms × 3 matrix sizes                |
| ``fig11``           | Fig. 11 — run-to-run variation                         |
| ``fig12``           | Fig. 12 — impact of block size q                       |
| ``fig13``           | Fig. 13 — impact of worker memory size                 |
| ``lu``              | §7 — LU cost model and pivot-size search               |
| ``hetero``          | §6/§8 — heterogeneity-degree sweep (announced in §8)   |
| ``ablations``       | design-choice ablations (one-port, overlap, lookahead) |
| ``robustness``      | beyond the paper — degradation under non-stationary    |
|                     | platforms (drift, dropout, congestion, brownout)       |
"""

from repro.experiments import (  # noqa: F401  (re-exported for the CLI)
    ablations,
    bounds,
    fig04,
    fig10,
    fig11,
    fig12,
    fig13,
    hetero,
    lu,
    maxreuse_trace,
    robustness,
    table1,
    table2,
)

ALL_EXPERIMENTS = {
    "fig04": fig04,
    "bounds": bounds,
    "maxreuse": maxreuse_trace,
    "table1": table1,
    "table2": table2,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "lu": lu,
    "hetero": hetero,
    "ablations": ablations,
    "robustness": robustness,
}

__all__ = ["ALL_EXPERIMENTS", "campaign_for"]


def campaign_for(
    name: str,
    scale: int | None = None,
    engine: str | None = None,
    scenario: str | None = None,
    backend: str | None = None,
):
    """The :class:`repro.runner.Campaign` for experiment ``name``.

    ``scale`` is forwarded to campaigns that support it (the Figure
    10-13 simulations); experiments with fixed paper instances ignore
    it.  ``engine`` selects the simulation backend (``"fast"``/
    ``"des"``) for campaigns whose sweeps run the chunk engine.
    ``scenario`` (``"KIND[:SEVERITY]"``, see :mod:`repro.scenarios`)
    narrows scenario-aware campaigns (currently ``robustness``) to one
    family; campaigns that ignore it do so silently, like ``scale``.
    ``backend`` stamps the execution backend into every point (see
    :func:`repro.runner.stamp_points` — the point function ignores it,
    but each backend gets its own cache namespace, which is what lets
    the CI matrix compare freshly computed rows across backends).
    Raises ``KeyError`` for unknown names.
    """
    import inspect

    module = ALL_EXPERIMENTS[name]
    factory = module.campaign
    accepted = inspect.signature(factory).parameters
    kwargs = {}
    if scale is not None and "scale" in accepted:
        kwargs["scale"] = scale
    if engine is not None and "engine" in accepted:
        kwargs["engine"] = engine
    if scenario is not None and "scenario" in accepted:
        kwargs["scenario"] = scenario
    if backend is not None and "backend" in accepted:
        kwargs["backend"] = backend
    return factory(**kwargs)
