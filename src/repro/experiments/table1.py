"""Table 1 — the bandwidth-centric solution can be memory-infeasible.

On the two-worker platform ``c = (1, 20), w = (2, 40), µ = (2, 2)``
both workers satisfy ``2c_i/(µ_i w_i) = 1/2``, so the steady-state LP
enrolls both fully (throughput 0.75 updates/s).  But to ride out the
80 s the master spends serving P2's chunk, P1 must hold ~40 blocks of
A/B data — an order of magnitude beyond its buffers.  The table prints
per-worker buffer demand vs capacity.

A single-point sweep: the feasibility analysis couples all workers
through the shared steady state, so the whole table is one evaluation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.tables import format_table
from repro.core.heterogeneous import (
    bandwidth_centric_steady_state,
    chunk_sizes,
    simulate_bandwidth_centric_feasibility,
)
from repro.platform.named import table1_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points

__all__ = ["run", "main", "sweep", "campaign"]


def _point(params: Mapping) -> list[dict]:
    """Rows: one per worker of the Table 1 platform."""
    del params  # the Table 1 platform is fixed by the paper
    platform = table1_platform()
    mus = chunk_sizes(platform)
    steady = bandwidth_centric_steady_state(platform)
    rows = []
    for fb, wk, mu, x in zip(
        simulate_bandwidth_centric_feasibility(platform),
        platform.workers,
        mus,
        steady.x,
    ):
        rows.append(
            {
                "worker": wk.label,
                "c": wk.c,
                "w": wk.w,
                "mu": mu,
                "2c/(mu*w)": 2 * wk.c / (mu * wk.w),
                "steady_x": x,
                "blocks_needed": fb.needed_blocks,
                "blocks_available": fb.available_blocks,
                "feasible": fb.feasible,
            }
        )
    return rows


def _batch_points(points: Sequence[Mapping]) -> list:
    """Degenerate batch function: the feasibility analysis is a closed
    form, not a chunk-engine run, so a "batch" is just the points in
    order.  Declared anyway so the table1 sweep exercises the batched
    dispatch path uniformly with the other experiments."""
    return [_point(params) for params in points]


def sweep(engine: str = "fast", backend: str | None = None) -> Sweep:
    """Declare the single Table 1 feasibility point.

    ``engine`` is stamped for interface uniformity; the steady-state
    analysis does not use the chunk engine, so the knob is inert.
    """
    return Sweep(
        name="table1",
        run_fn=_point,
        points=stamp_points(
            ({"platform": "table1"},), engine=engine, backend=backend
        ),
        title="Table 1: bandwidth-centric steady state vs memory feasibility",
        batch_fn=_batch_points,
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The Table 1 campaign (a single one-point sweep)."""
    return Campaign("table1", (sweep(engine=engine, backend=backend),))


def run(
    engine: str = "fast", jobs: int = 1, backend: str | None = None
) -> list[dict]:
    """Rows: one per worker of the Table 1 platform."""
    return run_sweep(
        sweep(engine=engine, backend=backend), jobs=jobs, backend=backend
    ).rows


def main() -> None:
    """Print the Table 1 feasibility analysis."""
    platform = table1_platform()
    steady = bandwidth_centric_steady_state(platform)
    print(
        format_table(
            run(),
            title="Table 1: bandwidth-centric steady state vs memory feasibility",
        )
    )
    print(
        f"\nSteady-state throughput {steady.throughput:.3g} updates/s is an "
        "upper bound only: P1's buffer demand exceeds its capacity, so the "
        "schedule cannot be realised (motivates incremental selection)."
    )


if __name__ == "__main__":
    main()
