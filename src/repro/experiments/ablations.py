"""Design-choice ablations (DESIGN.md Section 5).

* **one-port vs two-port master** — the paper adopts the strict
  one-port model; the two-port variant lets the master send and receive
  simultaneously.  Quantifies what the modelling choice costs.
* **overlap vs no-overlap layout** — µ²+4µ (spare A/B generation)
  versus µ²+2µ (bigger tiles, serialized receive/compute), i.e. the
  ODDOML-vs-DDOML design axis, swept across memory sizes.
* **start-up overhead** — measured fraction of time lost to C-tile
  I/O versus the paper's analytical bound ``µ/t + 2c/(tw)``.
* **lookahead depth** — selection ratio vs depth on Table 2.

The module's campaign groups the four ablations as four sweeps.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import format_table
from repro.blocks.shape import ProblemShape
from repro.core.heterogeneous import lookahead_selection
from repro.core.homogeneous import startup_overhead_fraction
from repro.core.layout import mu_overlap
from repro.engine import run_scheduler
from repro.platform.model import Platform
from repro.platform.named import table2_platform, ut_cluster_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers import DDOML, HoLM, ODDOML

__all__ = [
    "run_ports",
    "run_overlap",
    "run_startup",
    "run_lookahead",
    "main",
    "campaign",
]


def _ports_point(params: Mapping) -> dict:
    """HoLM makespan under a one- or two-port master."""
    from repro.workloads import FIG10_WORKLOADS

    shape = FIG10_WORKLOADS[0].scaled(params["scale"]).shape(80)
    platform = ut_cluster_platform(p=8)
    two_port = params["two_port"]
    trace = run_scheduler(
        HoLM(), platform, shape, two_port=two_port,
        engine=params.get("engine", "fast"),
    )
    return {
        "model": "two-port" if two_port else "one-port",
        "makespan_s": trace.makespan,
        "send_port_util": trace.port_utilisation(0),
    }


def _ports_aggregate(values: list) -> list[dict]:
    """Add the relative-to-one-port column (needs both rows)."""
    rows = [dict(v) for v in values]
    base = rows[0]["makespan_s"]
    for row in rows:
        row["vs_one_port_pct"] = 100.0 * (row["makespan_s"] - base) / base
    return rows


def _overlap_point(params: Mapping) -> dict:
    """ODDOML vs DDOML at one memory size."""
    m = params["m"]
    shape = ProblemShape(r=24, s=36, t=12, q=16)
    platform = Platform.homogeneous(4, c=0.2, w=0.1, m=m)
    engine = params.get("engine", "fast")
    t_over = run_scheduler(ODDOML(), platform, shape, engine=engine).makespan
    t_flat = run_scheduler(DDOML(), platform, shape, engine=engine).makespan
    return {
        "m_blocks": m,
        "mu_overlap": mu_overlap(m),
        "oddoml_s": t_over,
        "ddoml_s": t_flat,
        "overlap_gain_pct": 100.0 * (t_flat - t_over) / t_over,
    }


def _startup_point(params: Mapping) -> dict:
    """Measured C-tile overhead vs the paper's bound for one ``t``."""
    t = params["t"]
    c, w = 2.0, 4.5  # the paper's own example values
    m = 21  # µ = 3 under the overlap layout
    mu = mu_overlap(m)
    platform = Platform.homogeneous(1, c=c, w=w, m=m)
    shape = ProblemShape(r=mu, s=mu, t=t, q=8)
    trace = run_scheduler(
        HoLM(), platform, shape, engine=params.get("engine", "fast")
    )
    # Time attributable to C traffic = 2µ²c per chunk (1 chunk here).
    c_io = 2 * mu * mu * c
    return {
        "t": t,
        "mu": mu,
        "c_io_fraction": c_io / trace.makespan,
        "paper_bound": startup_overhead_fraction(mu, t, c, w),
    }


def _lookahead_point(params: Mapping) -> dict:
    """Selection ratio at one lookahead depth on the Table 2 platform."""
    platform = table2_platform()
    sel = lookahead_selection(
        platform, 10**6, 10**7, 10**6, depth=params["depth"], max_steps=1200
    )
    return {"depth": params["depth"], "ratio": sel.ratio}


def ports_sweep(
    scale: int = 8, engine: str = "fast", backend: str | None = None
) -> Sweep:
    """Declare the one-port/two-port pair."""
    return Sweep(
        name="ablation-ports",
        run_fn=_ports_point,
        points=stamp_points(
            tuple({"scale": scale, "two_port": tp} for tp in (False, True)),
            engine=engine,
            backend=backend,
        ),
        aggregate=_ports_aggregate,
        title="Ablation: one-port vs two-port master",
    )


def overlap_sweep(
    memories: tuple[int, ...] = (24, 60, 120, 360, 1200),
    engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare one overlap-vs-flat point per memory size."""
    return Sweep(
        name="ablation-overlap",
        run_fn=_overlap_point,
        points=stamp_points(
            tuple({"m": m} for m in memories), engine=engine, backend=backend
        ),
        title="Ablation: overlap vs no-overlap layout",
    )


def startup_sweep(
    t_values: tuple[int, ...] = (10, 25, 50, 100), engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare one start-up-overhead point per inner dimension ``t``."""
    return Sweep(
        name="ablation-startup",
        run_fn=_startup_point,
        points=stamp_points(
            tuple({"t": t} for t in t_values), engine=engine, backend=backend
        ),
        title="Ablation: start-up (C-tile I/O) overhead",
    )


def lookahead_sweep(
    depths: tuple[int, ...] = (1, 2, 3), engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare one selection-ratio point per lookahead depth.

    ``engine`` is stamped for interface uniformity; the selection
    algorithm does not use the chunk engine, so the knob is inert.
    """
    return Sweep(
        name="ablation-lookahead",
        run_fn=_lookahead_point,
        points=stamp_points(
            tuple({"depth": d} for d in depths), engine=engine, backend=backend
        ),
        title="Ablation: lookahead depth (Table 2)",
    )


def campaign(
    scale: int = 8, engine: str = "fast", backend: str | None = None
) -> Campaign:
    """The four ablation sweeps, in the order ``main()`` prints them.

    ``scale`` reaches the one scale-parameterised sweep (ports); the
    other three ablate fixed paper instances.
    """
    return Campaign(
        "ablations",
        (
            ports_sweep(scale=scale, engine=engine, backend=backend),
            overlap_sweep(engine=engine, backend=backend),
            startup_sweep(engine=engine, backend=backend),
            lookahead_sweep(engine=engine, backend=backend),
        ),
    )


def run_ports(
    scale: int = 8, engine: str = "fast",
    jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """HoLM under one-port vs two-port masters."""
    return run_sweep(
        ports_sweep(scale=scale, engine=engine, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def run_overlap(
    memories: tuple[int, ...] = (24, 60, 120, 360, 1200),
    engine: str = "fast",
    jobs: int = 1,
    backend: str | None = None,
) -> list[dict]:
    """ODDOML (overlap) vs DDOML (bigger µ, no overlap) across memory."""
    return run_sweep(
        overlap_sweep(memories=memories, engine=engine, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def run_startup(
    t_values: tuple[int, ...] = (10, 25, 50, 100), engine: str = "fast",
    jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Measured C-tile overhead vs the paper's bound ``µ/t + 2c/tw``."""
    return run_sweep(
        startup_sweep(t_values=t_values, engine=engine, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def run_lookahead(
    depths: tuple[int, ...] = (1, 2, 3), engine: str = "fast",
    jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Selection ratio vs lookahead depth on the Table 2 platform."""
    return run_sweep(
        lookahead_sweep(depths=depths, engine=engine, backend=backend),
        jobs=jobs, backend=backend,
    ).rows


def main() -> None:
    """Print all four ablations."""
    print(format_table(run_ports(), title="Ablation: one-port vs two-port master"))
    print()
    print(format_table(run_overlap(), title="Ablation: overlap vs no-overlap layout"))
    print()
    print(format_table(run_startup(), title="Ablation: start-up (C-tile I/O) overhead"))
    print()
    print(format_table(run_lookahead(), title="Ablation: lookahead depth (Table 2)"))


if __name__ == "__main__":
    main()
