"""Design-choice ablations (DESIGN.md Section 5).

* **one-port vs two-port master** — the paper adopts the strict
  one-port model; the two-port variant lets the master send and receive
  simultaneously.  Quantifies what the modelling choice costs.
* **overlap vs no-overlap layout** — µ²+4µ (spare A/B generation)
  versus µ²+2µ (bigger tiles, serialized receive/compute), i.e. the
  ODDOML-vs-DDOML design axis, swept across memory sizes.
* **start-up overhead** — measured fraction of time lost to C-tile
  I/O versus the paper's analytical bound ``µ/t + 2c/(tw)``.
* **lookahead depth** — selection ratio vs depth on Table 2.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.blocks.shape import ProblemShape
from repro.core.heterogeneous import lookahead_selection
from repro.core.homogeneous import startup_overhead_fraction
from repro.core.layout import mu_overlap
from repro.engine import run_scheduler
from repro.platform.model import Platform
from repro.platform.named import table2_platform, ut_cluster_platform
from repro.schedulers import DDOML, HoLM, ODDOML

__all__ = ["run_ports", "run_overlap", "run_startup", "run_lookahead", "main"]


def run_ports(scale: int = 8) -> list[dict]:
    """HoLM under one-port vs two-port masters."""
    from repro.workloads import FIG10_WORKLOADS

    shape = FIG10_WORKLOADS[0].scaled(scale).shape(80)
    platform = ut_cluster_platform(p=8)
    rows = []
    for two_port in (False, True):
        trace = run_scheduler(HoLM(), platform, shape, two_port=two_port)
        rows.append(
            {
                "model": "two-port" if two_port else "one-port",
                "makespan_s": trace.makespan,
                "send_port_util": trace.port_utilisation(0),
            }
        )
    base = rows[0]["makespan_s"]
    for row in rows:
        row["vs_one_port_pct"] = 100.0 * (row["makespan_s"] - base) / base
    return rows


def run_overlap(memories: tuple[int, ...] = (24, 60, 120, 360, 1200)) -> list[dict]:
    """ODDOML (overlap) vs DDOML (bigger µ, no overlap) across memory."""
    shape = ProblemShape(r=24, s=36, t=12, q=16)
    rows = []
    for m in memories:
        platform = Platform.homogeneous(4, c=0.2, w=0.1, m=m)
        t_over = run_scheduler(ODDOML(), platform, shape).makespan
        t_flat = run_scheduler(DDOML(), platform, shape).makespan
        rows.append(
            {
                "m_blocks": m,
                "mu_overlap": mu_overlap(m),
                "oddoml_s": t_over,
                "ddoml_s": t_flat,
                "overlap_gain_pct": 100.0 * (t_flat - t_over) / t_over,
            }
        )
    return rows


def run_startup(t_values: tuple[int, ...] = (10, 25, 50, 100)) -> list[dict]:
    """Measured C-tile overhead vs the paper's bound ``µ/t + 2c/tw``."""
    rows = []
    c, w = 2.0, 4.5  # the paper's own example values
    for t in t_values:
        m = 21  # µ = 3 under the overlap layout
        mu = mu_overlap(m)
        platform = Platform.homogeneous(1, c=c, w=w, m=m)
        shape = ProblemShape(r=mu, s=mu, t=t, q=8)
        trace = run_scheduler(HoLM(), platform, shape)
        # Time attributable to C traffic = 2µ²c per chunk (1 chunk here).
        c_io = 2 * mu * mu * c
        rows.append(
            {
                "t": t,
                "mu": mu,
                "c_io_fraction": c_io / trace.makespan,
                "paper_bound": startup_overhead_fraction(mu, t, c, w),
            }
        )
    return rows


def run_lookahead(depths: tuple[int, ...] = (1, 2, 3)) -> list[dict]:
    """Selection ratio vs lookahead depth on the Table 2 platform."""
    platform = table2_platform()
    rows = []
    for depth in depths:
        sel = lookahead_selection(
            platform, 10**6, 10**7, 10**6, depth=depth, max_steps=1200
        )
        rows.append({"depth": depth, "ratio": sel.ratio})
    return rows


def main() -> None:
    """Print all four ablations."""
    print(format_table(run_ports(), title="Ablation: one-port vs two-port master"))
    print()
    print(format_table(run_overlap(), title="Ablation: overlap vs no-overlap layout"))
    print()
    print(format_table(run_startup(), title="Ablation: start-up (C-tile I/O) overhead"))
    print()
    print(format_table(run_lookahead(), title="Ablation: lookahead depth (Table 2)"))


if __name__ == "__main__":
    main()
