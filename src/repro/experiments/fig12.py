"""Figure 12 — impact of the block size q.

Runs the algorithms on the same element-level matrices (8000×8000 and
8000×64000) partitioned with q = 40 and q = 80.  The paper's finding:
"the choice of q has little impact on the algorithms performance" —
the per-element communication and computation volumes are unchanged;
only tile granularity shifts.  BMM/OBMM in the paper call DGEMM on
whole memory-tiles and are exactly q-independent.

(The calibrated ``c`` and ``w`` both scale with the block volume, so a
q change leaves per-element rates constant — matching the MPI reality
that bandwidth and flop/s do not depend on the partitioning.)

One sweep point = one (q, algorithm) pair; the aggregate step pivots
the per-point makespans into one row per algorithm with a spread
column, replaying the same merge order as the original serial loop.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import format_table
from repro.engine import run_scheduler
from repro.platform.named import ut_cluster_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
from repro.workloads import FIG12_BLOCK_SIZES, Workload

__all__ = ["run", "main", "sweep", "campaign", "FIG12_WORKLOAD"]

#: The matrix pair of the second experiment set.
FIG12_WORKLOAD = Workload("A 8000x8000, B 8000x64000", 8000, 8000, 64000)


def _point(params: Mapping) -> dict:
    """Makespan of one algorithm at one block size."""
    q = params["q"]
    platform = ut_cluster_platform(p=8, q=q)
    workload = Workload(
        params["workload"], params["n_a"], params["n_ab"], params["n_b"]
    )
    scheduler = section8_scheduler(params["algorithm"])
    trace = run_scheduler(
        scheduler, platform, workload.shape(q),
        engine=params.get("engine", "fast"),
    )
    return {"algorithm": scheduler.name, "q": q, "makespan": trace.makespan}


def _aggregate(values: list) -> list[dict]:
    """Pivot (algorithm, q) makespans into per-algorithm rows + spread."""
    by_algo: dict[str, dict] = {}
    for v in values:
        row = by_algo.setdefault(v["algorithm"], {"algorithm": v["algorithm"]})
        row[f"makespan_q{v['q']}"] = v["makespan"]
    rows = list(by_algo.values())
    for row in rows:
        times = [v for k, v in row.items() if k.startswith("makespan_")]
        row["spread_pct"] = 100.0 * (max(times) - min(times)) / min(times)
    return rows


def sweep(
    scale: int = 1, block_sizes: tuple[int, ...] = FIG12_BLOCK_SIZES,
    engine: str = "fast", backend: str | None = None,
) -> Sweep:
    """Declare the (q × algorithm) sweep, q-major like the paper."""
    workload = FIG12_WORKLOAD.scaled(scale) if scale > 1 else FIG12_WORKLOAD
    points = tuple(
        {
            "workload": workload.name,
            "n_a": workload.n_a,
            "n_ab": workload.n_ab,
            "n_b": workload.n_b,
            "algorithm": name,
            "q": q,
        }
        for q in block_sizes
        for name in SECTION8_SCHEDULERS
    )
    return Sweep(
        name="fig12",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        aggregate=_aggregate,
        title="Figure 12: impact of block size q",
    )


def campaign(
    scale: int = 1, engine: str = "fast", backend: str | None = None
) -> Campaign:
    """The Figure 12 campaign (a single sweep)."""
    return Campaign(
        "fig12", (sweep(scale=scale, engine=engine, backend=backend),)
    )


def run(
    scale: int = 1, block_sizes: tuple[int, ...] = FIG12_BLOCK_SIZES,
    engine: str = "fast", jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """One row per (algorithm, q); columns are makespans."""
    return run_sweep(
        sweep(
            scale=scale, block_sizes=block_sizes, engine=engine,
            backend=backend,
        ),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the Figure 12 block-size comparison."""
    print(format_table(run(), title="Figure 12: impact of block size q"))
    print("\nPaper's finding: q has little impact on performance.")


if __name__ == "__main__":
    main()
