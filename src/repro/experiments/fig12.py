"""Figure 12 — impact of the block size q.

Runs the algorithms on the same element-level matrices (8000×8000 and
8000×64000) partitioned with q = 40 and q = 80.  The paper's finding:
"the choice of q has little impact on the algorithms performance" —
the per-element communication and computation volumes are unchanged;
only tile granularity shifts.  BMM/OBMM in the paper call DGEMM on
whole memory-tiles and are exactly q-independent.

(The calibrated ``c`` and ``w`` both scale with the block volume, so a
q change leaves per-element rates constant — matching the MPI reality
that bandwidth and flop/s do not depend on the partitioning.)
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.engine import run_scheduler
from repro.platform.named import ut_cluster_platform
from repro.schedulers import all_section8_schedulers
from repro.workloads import FIG12_BLOCK_SIZES, Workload

__all__ = ["run", "main", "FIG12_WORKLOAD"]

#: The matrix pair of the second experiment set.
FIG12_WORKLOAD = Workload("A 8000x8000, B 8000x64000", 8000, 8000, 64000)


def run(scale: int = 1, block_sizes: tuple[int, ...] = FIG12_BLOCK_SIZES) -> list[dict]:
    """One row per (algorithm, q); columns are makespans."""
    workload = FIG12_WORKLOAD.scaled(scale) if scale > 1 else FIG12_WORKLOAD
    by_algo: dict[str, dict] = {}
    for q in block_sizes:
        platform = ut_cluster_platform(p=8, q=q)
        shape = workload.shape(q)
        for scheduler in all_section8_schedulers():
            trace = run_scheduler(scheduler, platform, shape)
            row = by_algo.setdefault(scheduler.name, {"algorithm": scheduler.name})
            row[f"makespan_q{q}"] = trace.makespan
    rows = list(by_algo.values())
    for row in rows:
        times = [v for k, v in row.items() if k.startswith("makespan_")]
        row["spread_pct"] = 100.0 * (max(times) - min(times)) / min(times)
    return rows


def main() -> None:
    """Print the Figure 12 block-size comparison."""
    print(format_table(run(), title="Figure 12: impact of block size q"))
    print("\nPaper's finding: q has little impact on performance.")


if __name__ == "__main__":
    main()
