"""Figure 4 — neither Thrifty nor Min-min is optimal.

Runs both greedy algorithms (plus the alternating-greedy single-worker
reference and, when tractable, the brute-force optimum) on the paper's
two counterexample instances:

* (a) ``p=2, c=4, w=7, r=s=3`` — Min-min wins;
* (b) ``p=2, c=8, w=9, r=6, s=3`` — Thrifty wins.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.simple import SimpleInstance, brute_force_best, min_min, thrifty

__all__ = ["INSTANCE_A", "INSTANCE_B", "run", "main"]

#: Figure 4(a): Min-min beats Thrifty.
INSTANCE_A = SimpleInstance(r=3, s=3, p=2, c=4.0, w=7.0)
#: Figure 4(b): Thrifty beats Min-min.
INSTANCE_B = SimpleInstance(r=6, s=3, p=2, c=8.0, w=9.0)


def run(brute_force: bool = True) -> list[dict]:
    """Evaluate both heuristics on both instances.

    ``brute_force`` additionally reports the exhaustive optimum (slow
    for (b); disable for quick runs).
    """
    rows: list[dict] = []
    for label, inst in (("Fig4(a)", INSTANCE_A), ("Fig4(b)", INSTANCE_B)):
        t = thrifty(inst)
        m = min_min(inst)
        row = {
            "instance": label,
            "r": inst.r,
            "s": inst.s,
            "c": inst.c,
            "w": inst.w,
            "thrifty": t.makespan,
            "min_min": m.makespan,
            "winner": "Min-min" if m.makespan < t.makespan else "Thrifty",
        }
        if brute_force and inst.tasks <= 9:
            # Instance (b) (18 tasks, duplicable files) is beyond
            # exhaustive search; only (a) gets a certified optimum.
            row["optimal"] = brute_force_best(inst).makespan
        rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 4 comparison."""
    print(format_table(run(), title="Figure 4: Thrifty vs Min-min (makespans)"))
    print(
        "\nPaper's claim: Min-min wins (a), Thrifty wins (b); "
        "neither greedy is optimal."
    )


if __name__ == "__main__":
    main()
