"""Figure 4 — neither Thrifty nor Min-min is optimal.

Runs both greedy algorithms (plus the alternating-greedy single-worker
reference and, when tractable, the brute-force optimum) on the paper's
two counterexample instances:

* (a) ``p=2, c=4, w=7, r=s=3`` — Min-min wins;
* (b) ``p=2, c=8, w=9, r=6, s=3`` — Thrifty wins.

One sweep point = one counterexample instance.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import format_table
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.simple import SimpleInstance, brute_force_best, min_min, thrifty

__all__ = ["INSTANCE_A", "INSTANCE_B", "run", "main", "sweep", "campaign"]

#: Figure 4(a): Min-min beats Thrifty.
INSTANCE_A = SimpleInstance(r=3, s=3, p=2, c=4.0, w=7.0)
#: Figure 4(b): Thrifty beats Min-min.
INSTANCE_B = SimpleInstance(r=6, s=3, p=2, c=8.0, w=9.0)


def _point(params: Mapping) -> dict:
    """Evaluate both heuristics (and maybe brute force) on one instance."""
    inst = SimpleInstance(
        r=params["r"], s=params["s"], p=params["p"], c=params["c"], w=params["w"]
    )
    t = thrifty(inst)
    m = min_min(inst)
    row = {
        "instance": params["instance"],
        "r": inst.r,
        "s": inst.s,
        "c": inst.c,
        "w": inst.w,
        "thrifty": t.makespan,
        "min_min": m.makespan,
        "winner": "Min-min" if m.makespan < t.makespan else "Thrifty",
    }
    if params["brute_force"] and inst.tasks <= 9:
        # Instance (b) (18 tasks, duplicable files) is beyond
        # exhaustive search; only (a) gets a certified optimum.
        row["optimal"] = brute_force_best(inst).makespan
    return row


def sweep(
    brute_force: bool = True, engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare one point per counterexample instance.

    ``engine`` is stamped for interface uniformity with the simulation
    sweeps; the greedy/brute-force evaluations here do not use the
    chunk engine, so the knob is inert.
    """
    points = tuple(
        {
            "instance": label,
            "r": inst.r,
            "s": inst.s,
            "p": inst.p,
            "c": inst.c,
            "w": inst.w,
            "brute_force": brute_force,
        }
        for label, inst in (("Fig4(a)", INSTANCE_A), ("Fig4(b)", INSTANCE_B))
    )
    return Sweep(
        name="fig04",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Figure 4: Thrifty vs Min-min (makespans)",
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The Figure 4 campaign (a single two-point sweep)."""
    return Campaign("fig04", (sweep(engine=engine, backend=backend),))


def run(
    brute_force: bool = True, engine: str = "fast",
    jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Evaluate both heuristics on both instances.

    ``brute_force`` additionally reports the exhaustive optimum (slow
    for (b); disable for quick runs).
    """
    return run_sweep(
        sweep(brute_force=brute_force, engine=engine, backend=backend),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the Figure 4 comparison."""
    print(format_table(run(), title="Figure 4: Thrifty vs Min-min (makespans)"))
    print(
        "\nPaper's claim: Min-min wins (a), Thrifty wins (b); "
        "neither greedy is optimal."
    )


if __name__ == "__main__":
    main()
