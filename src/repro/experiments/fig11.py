"""Figure 11 — run-to-run variation.

The paper repeats identical executions five times and observes up to a
~6 % spread, concluding that algorithms within 6 % of each other should
be considered equivalent.  We reproduce the *analysis*: the platform's
``c``/``w`` parameters receive lognormal jitter (calibrated σ) per run,
and the maximum relative gap between runs of the same algorithm is
reported.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.engine import run_scheduler
from repro.platform.model import perturbed
from repro.platform.named import ut_cluster_platform
from repro.schedulers import all_section8_schedulers
from repro.workloads import FIG10_WORKLOADS

__all__ = ["run", "main"]


def run(
    runs: int = 5,
    sigma: float = 0.02,
    scale: int = 8,
    seed: int = 2007,
) -> list[dict]:
    """Repeat each algorithm ``runs`` times under platform jitter.

    Returns per-algorithm min/max/mean makespan and the max spread
    ``(max-min)/min`` — the paper's Figure 11 quantity.
    """
    rng = np.random.default_rng(seed)
    base = ut_cluster_platform(p=8)
    shape = FIG10_WORKLOADS[0].scaled(scale).shape(80)
    rows = []
    for scheduler_proto in all_section8_schedulers():
        times = []
        for _ in range(runs):
            platform = perturbed(base, rng, sigma)
            # Fresh scheduler instance per run (some keep per-run state).
            scheduler = type(scheduler_proto)()
            trace = run_scheduler(scheduler, platform, shape)
            times.append(trace.makespan)
        lo, hi = min(times), max(times)
        rows.append(
            {
                "algorithm": scheduler_proto.name,
                "runs": runs,
                "min_s": lo,
                "mean_s": sum(times) / len(times),
                "max_s": hi,
                "spread_pct": 100.0 * (hi - lo) / lo,
            }
        )
    return rows


def main() -> None:
    """Print the Figure 11 variation table."""
    rows = run()
    print(format_table(rows, title="Figure 11: run-to-run variation (jittered platform)"))
    worst = max(r["spread_pct"] for r in rows)
    print(
        f"\nMax spread observed: {worst:.1f}% — the paper reports ~6%; "
        "algorithms within this band count as equivalent."
    )


if __name__ == "__main__":
    main()
