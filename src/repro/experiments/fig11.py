"""Figure 11 — run-to-run variation.

The paper repeats identical executions five times and observes up to a
~6 % spread, concluding that algorithms within 6 % of each other should
be considered equivalent.  We reproduce the *analysis*: the platform's
``c``/``w`` parameters receive lognormal jitter (calibrated σ) per run,
and the maximum relative gap between runs of the same algorithm is
reported.

One sweep point = one algorithm (its ``runs`` jittered executions
happen inside the point).  Each point draws from its own RNG stream,
seeded by ``(seed, algorithm index)``, so points are independent of
execution order — a requirement for parallel fan-out and caching.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.engine import BatchItem, run_batch, run_scheduler
from repro.platform.model import perturbed
from repro.platform.named import ut_cluster_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
from repro.workloads import FIG10_WORKLOADS, Workload

__all__ = ["run", "main", "sweep", "campaign"]


def _platforms(params: Mapping) -> list:
    """The point's ``runs`` jittered platforms, in draw order.

    Drawing them up front consumes the RNG stream exactly as the
    original per-run loop did (scheduler construction never touches the
    stream), so the scalar and batched paths see identical platforms.
    """
    rng = np.random.default_rng((params["seed"], params["algo_index"]))
    base = ut_cluster_platform(p=8)
    return [perturbed(base, rng, params["sigma"]) for _ in range(params["runs"])]


def _shape(params: Mapping):
    return Workload(
        params["workload"], params["n_a"], params["n_ab"], params["n_b"]
    ).shape(80)


def _row(params: Mapping, times: Sequence[float]) -> dict:
    lo, hi = min(times), max(times)
    return {
        "algorithm": params["algorithm"],
        "runs": params["runs"],
        "min_s": lo,
        "mean_s": sum(times) / len(times),
        "max_s": hi,
        "spread_pct": 100.0 * (hi - lo) / lo,
    }


def _point(params: Mapping) -> dict:
    """Repeat one algorithm ``runs`` times under platform jitter."""
    shape = _shape(params)
    times = []
    for platform in _platforms(params):
        # Fresh scheduler instance per run (some keep per-run state).
        scheduler = section8_scheduler(params["algorithm"])
        trace = run_scheduler(
            scheduler, platform, shape, engine=params.get("engine", "fast")
        )
        times.append(trace.makespan)
    return _row(params, times)


def _batch_points(points: Sequence[Mapping]) -> list:
    """Batched fig11 evaluation: flatten every point's jittered runs
    into one item stream so runs group across points as well as within
    them (they share the decision structure whenever the jitter leaves
    scheduler choices untouched)."""
    items, spans = [], []
    for params in points:
        shape = _shape(params)
        start = len(items)
        for platform in _platforms(params):
            items.append(
                BatchItem(
                    scheduler=lambda a=params["algorithm"]: section8_scheduler(a),
                    platform=platform,
                    shape=shape,
                    engine=params.get("engine", "fast"),
                )
            )
        spans.append((start, len(items)))
    traces = run_batch(items)
    return [
        _row(params, [trace.makespan for trace in traces[lo:hi]])
        for params, (lo, hi) in zip(points, spans)
    ]


def sweep(
    runs: int = 5, sigma: float = 0.02, scale: int = 8, seed: int = 2007,
    engine: str = "fast", backend: str | None = None,
) -> Sweep:
    """Declare one jittered-repeat point per Section 8 algorithm."""
    workload = FIG10_WORKLOADS[0].scaled(scale)
    points = tuple(
        {
            "algorithm": name,
            "algo_index": index,
            "runs": runs,
            "sigma": sigma,
            "seed": seed,
            "workload": workload.name,
            "n_a": workload.n_a,
            "n_ab": workload.n_ab,
            "n_b": workload.n_b,
        }
        for index, name in enumerate(SECTION8_SCHEDULERS)
    )
    return Sweep(
        name="fig11",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Figure 11: run-to-run variation (jittered platform)",
        batch_fn=_batch_points,
    )


def campaign(
    scale: int = 8, engine: str = "fast", backend: str | None = None
) -> Campaign:
    """The Figure 11 campaign (a single sweep)."""
    return Campaign(
        "fig11", (sweep(scale=scale, engine=engine, backend=backend),)
    )


def run(
    runs: int = 5,
    sigma: float = 0.02,
    scale: int = 8,
    seed: int = 2007,
    engine: str = "fast",
    jobs: int = 1,
    backend: str | None = None,
) -> list[dict]:
    """Repeat each algorithm ``runs`` times under platform jitter.

    Returns per-algorithm min/max/mean makespan and the max spread
    ``(max-min)/min`` — the paper's Figure 11 quantity.
    """
    return run_sweep(
        sweep(
            runs=runs, sigma=sigma, scale=scale, seed=seed, engine=engine,
            backend=backend,
        ),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the Figure 11 variation table."""
    rows = run()
    print(format_table(rows, title="Figure 11: run-to-run variation (jittered platform)"))
    worst = max(r["spread_pct"] for r in rows)
    print(
        f"\nMax spread observed: {worst:.1f}% — the paper reports ~6%; "
        "algorithms within this band count as equivalent."
    )


if __name__ == "__main__":
    main()
