"""Figures 5 and 6 — the maximum re-use memory layout, illustrated.

Re-creates the paper's worked example: ``m = 21`` buffers give
``µ = 4`` (1 buffer for A, 4 for B, 16 for C).  Runs the executable
MaxReuse scheduler on a 4×4-tile problem, prints the buffer split, the
per-step data movement of the first outer iteration, and verifies the
measured peak memory equals ``1 + µ + µ²``.

A single-point sweep: the walk-through is one (m, t) evaluation.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import format_table
from repro.blocks.shape import ProblemShape
from repro.core.layout import MemoryLayout
from repro.engine import run_scheduler
from repro.platform.model import Platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers.maxreuse import MaxReuse

__all__ = ["run", "main", "sweep", "campaign"]


def _point(params: Mapping) -> dict:
    """The m-buffer walk-through; returns layout and trace stats."""
    m, t = params["m"], params["t"]
    layout = MemoryLayout.max_reuse(m)
    mu = layout.mu
    shape = ProblemShape(r=mu, s=mu, t=t, q=4)
    platform = Platform.homogeneous(1, c=1.0, w=0.5, m=m)
    trace = run_scheduler(
        MaxReuse(), platform, shape, engine=params.get("engine", "fast")
    )
    return {
        "m": m,
        "mu": mu,
        "a_buffers": layout.a_buffers,
        "b_buffers": layout.b_buffers,
        "c_buffers": layout.c_buffers,
        "layout_total": layout.total,
        "peak_measured": trace.memory_peak[1],
        "comm_blocks": trace.comm_blocks,
        "updates": trace.total_updates,
        "ccr": trace.ccr,
        "ccr_formula": 2.0 / t + 2.0 / mu,
    }


def sweep(
    m: int = 21, t: int = 4, engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare the single walk-through point."""
    return Sweep(
        name="maxreuse",
        run_fn=_point,
        points=stamp_points(({"m": m, "t": t},), engine=engine, backend=backend),
        title=f"Figures 5/6: maximum re-use layout on m={m} buffers",
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The Figures 5/6 campaign (a single one-point sweep)."""
    return Campaign("maxreuse", (sweep(engine=engine, backend=backend),))


def run(
    m: int = 21, t: int = 4, engine: str = "fast",
    jobs: int = 1, backend: str | None = None,
) -> dict:
    """Run the m-buffer walk-through; returns layout and trace stats."""
    return run_sweep(
        sweep(m=m, t=t, engine=engine, backend=backend),
        jobs=jobs, backend=backend,
    ).rows[0]


def main() -> None:
    """Print the Figure 5/6 walk-through."""
    row = run()
    print(
        format_table(
            [row],
            title="Figures 5/6: maximum re-use layout on m=21 buffers (mu=4)",
        )
    )
    print(
        "\nPaper's Figure 5: 1 buffer for A, mu for B, mu^2 for C; "
        "peak usage must equal 1 + mu + mu^2 = "
        f"{1 + row['mu'] + row['mu'] ** 2}."
    )


if __name__ == "__main__":
    main()
