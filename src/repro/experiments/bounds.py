"""Section 4 — communication-to-computation bounds.

For a sweep of memory sizes ``m``, tabulates:

* the CCR achieved by the maximum re-use algorithm (``2/µ`` asymptotic,
  and simulated on the engine for a finite ``t``),
* the paper's Loomis–Whitney lower bound ``sqrt(27/8m)``,
* the refined Toledo bound ``sqrt(27/32m)``,
* the previously best published bound ``sqrt(1/8m)``,
* the gap factor max-re-use / Loomis–Whitney (→ ``sqrt(32/27) ≈ 1.09``).

One sweep point = one memory size.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import format_table
from repro.blocks.shape import ProblemShape
from repro.core.bounds import (
    ccr_lower_bound_irony_toledo_tiskin,
    ccr_lower_bound_loomis_whitney,
    ccr_lower_bound_toledo_refined,
    ccr_max_reuse,
    ccr_max_reuse_asymptotic,
)
from repro.core.layout import max_reuse_mu
from repro.engine import run_scheduler
from repro.platform.model import Platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers.maxreuse import MaxReuse

__all__ = ["run", "simulated_ccr", "main", "sweep", "campaign", "DEFAULT_MEMORIES"]

#: Memory sizes (in blocks) swept by default.
DEFAULT_MEMORIES: tuple[int, ...] = (21, 57, 111, 241, 511, 1023, 4095, 10000)


def simulated_ccr(m: int, t: int = 40, engine: str = "fast") -> float:
    """CCR measured by actually running MaxReuse on the engine.

    Uses a single worker whose C grid is one full µ×µ tile and inner
    dimension ``t``, so the measured blocks-per-update matches the
    analytic ``2/t + 2/µ`` exactly.
    """
    mu = max_reuse_mu(m)
    shape = ProblemShape(r=mu, s=mu, t=t, q=4)
    platform = Platform.homogeneous(1, c=1.0, w=1.0, m=m)
    trace = run_scheduler(MaxReuse(), platform, shape, engine=engine)
    return trace.ccr


def _point(params: Mapping) -> dict:
    """Bounds and achieved CCR for one memory size."""
    m, t = params["m"], params["t"]
    lw = ccr_lower_bound_loomis_whitney(m)
    achieved = ccr_max_reuse_asymptotic(m)
    return {
        "m": m,
        "mu": max_reuse_mu(m),
        "ccr_maxreuse(t)": ccr_max_reuse(m, t),
        "ccr_simulated(t)": simulated_ccr(m, t, params.get("engine", "fast")),
        "ccr_maxreuse_inf": achieved,
        "bound_loomis_whitney": lw,
        "bound_toledo_refined": ccr_lower_bound_toledo_refined(m),
        "bound_prev_best": ccr_lower_bound_irony_toledo_tiskin(m),
        "gap_vs_LW": achieved / lw,
    }


def sweep(
    memories: tuple[int, ...] = DEFAULT_MEMORIES, t: int = 40,
    engine: str = "fast", backend: str | None = None,
) -> Sweep:
    """Declare one point per memory size."""
    points = tuple({"m": m, "t": t} for m in memories)
    return Sweep(
        name="bounds",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Section 4: CCR of maximum re-use vs lower bounds (blocks/update)",
    )


def campaign(engine: str = "fast", backend: str | None = None) -> Campaign:
    """The Section 4 bounds campaign (a single sweep)."""
    return Campaign("bounds", (sweep(engine=engine, backend=backend),))


def run(
    memories: tuple[int, ...] = DEFAULT_MEMORIES, t: int = 40,
    engine: str = "fast", jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Tabulate bounds and achieved CCR for each memory size."""
    return run_sweep(
        sweep(memories=memories, t=t, engine=engine, backend=backend),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the Section 4 bound comparison."""
    print(
        format_table(
            run(),
            title="Section 4: CCR of maximum re-use vs lower bounds (blocks/update)",
        )
    )
    print(
        "\nPaper's claims: CCR_opt = sqrt(27/8m) improves sqrt(1/8m) by "
        "sqrt(27); max-re-use sits sqrt(32/27) ~= 1.09 above the bound."
    )


if __name__ == "__main__":
    main()
