"""Figure 10 — the seven algorithms on three matrix sizes.

Simulates every Section 8 algorithm on the UT-cluster platform (1
master + 8 workers, 100 Mb/s Ethernet, calibrated Xeon DGEMM) for the
three workloads of Section 8.3, reporting makespan, workers used, CCR
and port utilisation.

Expected shape (Section 8.4): HoLM, ORROML, ODDOML and DDOML are
fastest and similar (within the ~6 % noise band of Figure 11); OMMOML
is slower and uses few workers; BMM/OBMM (Toledo's layout) are clearly
worse; HoLM matches the leaders while enrolling only 4 of 8 workers.

One sweep point = one (workload, algorithm) pair; the per-point
function rebuilds the platform and workload from the point's scalars so
points are pure, cacheable, and fan out across processes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.metrics import summarize_trace
from repro.analysis.tables import format_table
from repro.engine import BatchItem, run_scheduler
from repro.experiments.batching import evaluate_batch
from repro.platform.model import scaled_bandwidth
from repro.platform.named import ut_cluster_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
from repro.workloads import Workload, fig10_workloads

__all__ = ["run", "main", "sweep", "campaign"]


def _item(params: Mapping) -> BatchItem:
    """Rebuild one point's engine inputs from its scalars."""
    platform = ut_cluster_platform(
        p=params["p"], memory_mb=params["memory_mb"], q=params["q"]
    )
    platform = scaled_bandwidth(platform, params.get("bandwidth_scale", 1.0))
    workload = Workload(
        params["workload"], params["n_a"], params["n_ab"], params["n_b"]
    )
    return BatchItem(
        scheduler=lambda: section8_scheduler(params["algorithm"]),
        platform=platform,
        shape=workload.shape(params["q"]),
        engine=params.get("engine", "fast"),
    )


def _row(params: Mapping, trace) -> dict:
    """Format one point's trace into its table row."""
    s = summarize_trace(trace)
    row = {
        "workload": params["workload"],
        "algorithm": section8_scheduler(params["algorithm"]).name,
        "makespan_s": s.makespan,
        "workers": s.workers_used,
        "ccr": s.ccr,
        "port_util": s.port_utilisation,
    }
    if "bandwidth_scale" in params:
        row["bandwidth_scale"] = params["bandwidth_scale"]
    return row


def _point(params: Mapping) -> dict:
    """Simulate one algorithm on one workload; returns the table row."""
    item = _item(params)
    trace = run_scheduler(
        item.scheduler(), item.platform, item.shape, engine=item.engine
    )
    return _row(params, trace)


def _batch_points(points: Sequence[Mapping]) -> list:
    """Batched evaluation of a fig10 point-group (same rows as _point)."""
    return evaluate_batch(points, _item, _row)


def sweep(
    scale: int = 1, p: int = 8, memory_mb: float = 512.0, q: int = 80,
    engine: str = "fast", backend: str | None = None,
    bandwidth_scales: Sequence[float] | None = None,
) -> Sweep:
    """Declare the 21-point (workload × algorithm) sweep.

    ``bandwidth_scales`` optionally crosses the grid with a link-speed
    axis (each point's platform gets ``c × scale``).  Nearby scales
    leave scheduler decisions unchanged, so the axis groups under the
    batched engine — this is the sweep shape the throughput benchmarks
    measure.  ``None`` (the default) keeps the original 21 points and
    their cache keys.
    """
    points = tuple(
        {
            "workload": workload.name,
            "n_a": workload.n_a,
            "n_ab": workload.n_ab,
            "n_b": workload.n_b,
            "algorithm": name,
            "p": p,
            "memory_mb": memory_mb,
            "q": q,
            **(
                {"bandwidth_scale": bandwidth} if bandwidth is not None else {}
            ),
        }
        for workload in fig10_workloads(scale)
        for name in SECTION8_SCHEDULERS
        for bandwidth in (bandwidth_scales or (None,))
    )
    return Sweep(
        name="fig10",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Figure 10: algorithm makespans on the UT cluster (simulated)",
        batch_fn=_batch_points,
    )


def campaign(
    scale: int = 1, engine: str = "fast", backend: str | None = None
) -> Campaign:
    """The Figure 10 campaign (a single sweep)."""
    return Campaign(
        "fig10", (sweep(scale=scale, engine=engine, backend=backend),)
    )


def run(
    scale: int = 1, p: int = 8, memory_mb: float = 512.0, q: int = 80,
    engine: str = "fast", jobs: int = 1, backend: str | None = None,
) -> list[dict]:
    """Simulate all algorithms × workloads; returns one row per pair.

    ``scale`` divides every matrix dimension (use 4 or 8 for quick
    runs — the ranking is scale-invariant in the port-bound regime);
    ``engine`` selects the simulation backend (``"fast"``/``"des"``);
    ``backend`` selects the execution backend for the points (stamped
    into each point, executed via :func:`repro.runner.run_sweep`).
    """
    return run_sweep(
        sweep(
            scale=scale, p=p, memory_mb=memory_mb, q=q, engine=engine,
            backend=backend,
        ),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the Figure 10 table."""
    print(
        format_table(
            run(),
            title="Figure 10: algorithm makespans on the UT cluster (simulated)",
        )
    )
    print(
        "\nExpected shape: {HoLM, ORROML, ODDOML, DDOML} fastest and similar; "
        "OMMOML slower with fewer workers; BMM/OBMM worst; HoLM needs only "
        "4 of 8 workers."
    )


if __name__ == "__main__":
    main()
