"""Figure 10 — the seven algorithms on three matrix sizes.

Simulates every Section 8 algorithm on the UT-cluster platform (1
master + 8 workers, 100 Mb/s Ethernet, calibrated Xeon DGEMM) for the
three workloads of Section 8.3, reporting makespan, workers used, CCR
and port utilisation.

Expected shape (Section 8.4): HoLM, ORROML, ODDOML and DDOML are
fastest and similar (within the ~6 % noise band of Figure 11); OMMOML
is slower and uses few workers; BMM/OBMM (Toledo's layout) are clearly
worse; HoLM matches the leaders while enrolling only 4 of 8 workers.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize_trace
from repro.analysis.tables import format_table
from repro.engine import run_scheduler
from repro.platform.named import ut_cluster_platform
from repro.schedulers import all_section8_schedulers
from repro.workloads import fig10_workloads

__all__ = ["run", "main"]


def run(scale: int = 1, p: int = 8, memory_mb: float = 512.0, q: int = 80) -> list[dict]:
    """Simulate all algorithms × workloads; returns one row per pair.

    ``scale`` divides every matrix dimension (use 4 or 8 for quick
    runs — the ranking is scale-invariant in the port-bound regime).
    """
    platform = ut_cluster_platform(p=p, memory_mb=memory_mb, q=q)
    rows = []
    for workload in fig10_workloads(scale):
        shape = workload.shape(q)
        for scheduler in all_section8_schedulers():
            trace = run_scheduler(scheduler, platform, shape)
            s = summarize_trace(trace)
            rows.append(
                {
                    "workload": workload.name,
                    "algorithm": scheduler.name,
                    "makespan_s": s.makespan,
                    "workers": s.workers_used,
                    "ccr": s.ccr,
                    "port_util": s.port_utilisation,
                }
            )
    return rows


def main() -> None:
    """Print the Figure 10 table."""
    print(
        format_table(
            run(),
            title="Figure 10: algorithm makespans on the UT cluster (simulated)",
        )
    )
    print(
        "\nExpected shape: {HoLM, ORROML, ODDOML, DDOML} fastest and similar; "
        "OMMOML slower with fewer workers; BMM/OBMM worst; HoLM needs only "
        "4 of 8 workers."
    )


if __name__ == "__main__":
    main()
