"""Figure 13 — impact of the worker memory size.

Sweeps the per-worker memory from 132 MB to 512 MB on the 16000×16000 ×
16000×64000 workload.  The paper's findings: performance improves with
memory for every algorithm; HoLM's resource selection "always performs
in the best possible way", enrolling 2 workers at the low end and 4 at
the high end while staying as fast as the algorithms that use all 8.

One sweep point = one (memory size, algorithm) pair.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.metrics import summarize_trace
from repro.analysis.tables import format_table
from repro.engine import run_scheduler
from repro.platform.named import ut_cluster_platform
from repro.runner import Campaign, Sweep, run_sweep, stamp_points
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
from repro.workloads import FIG13_MEMORY_MB, FIG13_WORKLOAD, Workload

__all__ = ["run", "main", "sweep", "campaign"]


def _point(params: Mapping) -> dict:
    """Simulate one algorithm at one worker memory size."""
    platform = ut_cluster_platform(
        p=8, memory_mb=params["memory_mb"], q=params["q"]
    )
    workload = Workload(
        params["workload"], params["n_a"], params["n_ab"], params["n_b"]
    )
    scheduler = section8_scheduler(params["algorithm"])
    trace = run_scheduler(
        scheduler, platform, workload.shape(params["q"]),
        engine=params.get("engine", "fast"),
    )
    s = summarize_trace(trace)
    return {
        "memory_mb": params["memory_mb"],
        "algorithm": scheduler.name,
        "makespan_s": s.makespan,
        "workers": s.workers_used,
        "ccr": s.ccr,
    }


def sweep(
    scale: int = 1,
    memories_mb: tuple[float, ...] = FIG13_MEMORY_MB,
    q: int = 80,
    engine: str = "fast",
    backend: str | None = None,
) -> Sweep:
    """Declare the (memory × algorithm) sweep, memory-major."""
    workload = FIG13_WORKLOAD.scaled(scale) if scale > 1 else FIG13_WORKLOAD
    points = tuple(
        {
            "workload": workload.name,
            "n_a": workload.n_a,
            "n_ab": workload.n_ab,
            "n_b": workload.n_b,
            "algorithm": name,
            "memory_mb": memory_mb,
            "q": q,
        }
        for memory_mb in memories_mb
        for name in SECTION8_SCHEDULERS
    )
    return Sweep(
        name="fig13",
        run_fn=_point,
        points=stamp_points(points, engine=engine, backend=backend),
        title="Figure 13: impact of worker memory size",
    )


def campaign(
    scale: int = 1, engine: str = "fast", backend: str | None = None
) -> Campaign:
    """The Figure 13 campaign (a single sweep)."""
    return Campaign(
        "fig13", (sweep(scale=scale, engine=engine, backend=backend),)
    )


def run(
    scale: int = 1,
    memories_mb: tuple[float, ...] = FIG13_MEMORY_MB,
    q: int = 80,
    engine: str = "fast",
    jobs: int = 1,
    backend: str | None = None,
) -> list[dict]:
    """One row per (memory, algorithm)."""
    return run_sweep(
        sweep(
            scale=scale, memories_mb=memories_mb, q=q, engine=engine,
            backend=backend,
        ),
        jobs=jobs,
        backend=backend,
    ).rows


def main() -> None:
    """Print the Figure 13 memory sweep."""
    print(format_table(run(), title="Figure 13: impact of worker memory size"))
    print(
        "\nExpected shape: makespans fall as memory grows; HoLM enrolls "
        "2 workers at 132MB and 4 at 512MB yet matches the 8-worker "
        "algorithms."
    )


if __name__ == "__main__":
    main()
