"""Figure 13 — impact of the worker memory size.

Sweeps the per-worker memory from 132 MB to 512 MB on the 16000×16000 ×
16000×64000 workload.  The paper's findings: performance improves with
memory for every algorithm; HoLM's resource selection "always performs
in the best possible way", enrolling 2 workers at the low end and 4 at
the high end while staying as fast as the algorithms that use all 8.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize_trace
from repro.analysis.tables import format_table
from repro.engine import run_scheduler
from repro.platform.named import ut_cluster_platform
from repro.schedulers import all_section8_schedulers
from repro.workloads import FIG13_MEMORY_MB, FIG13_WORKLOAD

__all__ = ["run", "main"]


def run(
    scale: int = 1,
    memories_mb: tuple[float, ...] = FIG13_MEMORY_MB,
    q: int = 80,
) -> list[dict]:
    """One row per (memory, algorithm)."""
    workload = FIG13_WORKLOAD.scaled(scale) if scale > 1 else FIG13_WORKLOAD
    shape = workload.shape(q)
    rows = []
    for memory_mb in memories_mb:
        platform = ut_cluster_platform(p=8, memory_mb=memory_mb, q=q)
        for scheduler in all_section8_schedulers():
            trace = run_scheduler(scheduler, platform, shape)
            s = summarize_trace(trace)
            rows.append(
                {
                    "memory_mb": memory_mb,
                    "algorithm": scheduler.name,
                    "makespan_s": s.makespan,
                    "workers": s.workers_used,
                    "ccr": s.ccr,
                }
            )
    return rows


def main() -> None:
    """Print the Figure 13 memory sweep."""
    print(format_table(run(), title="Figure 13: impact of worker memory size"))
    print(
        "\nExpected shape: makespans fall as memory grows; HoLM enrolls "
        "2 workers at 132MB and 4 at 512MB yet matches the 8-worker "
        "algorithms."
    )


if __name__ == "__main__":
    main()
