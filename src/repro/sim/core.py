"""Core of the discrete-event simulation kernel.

The design follows the classic *process-interaction* world view popularised
by SimPy: simulation logic is written as Python generator functions that
``yield`` *events*; the :class:`Environment` advances a virtual clock and
resumes each process when the event it is waiting for fires.

Only the features needed by this repository are implemented, which keeps
the kernel small enough to be exhaustively tested:

* :class:`Event` — one-shot waitable with success/failure payloads,
* :class:`Timeout` — an event that fires after a fixed delay,
* :class:`Process` — wraps a generator; is itself an event that fires when
  the generator returns (its value is the generator's return value),
* :class:`AllOf` — conjunction of events,
* interrupts — a process may :meth:`Process.interrupt` another.

Determinism guarantee
---------------------
The event queue is a binary heap keyed by ``(time, priority, seq)`` where
``seq`` is a global insertion counter.  Two events scheduled for the same
time therefore fire in scheduling order, making every run reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "Environment",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding a
    non-event, running a finished environment, triggering an event twice).
    """


class Interrupt(Exception):
    """Exception thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Priority used for ordinary events.
NORMAL = 1
#: Priority used urgently (process resumption after an interrupt).
URGENT = 0


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through at most one transition: *pending* →
    *triggered*.  When triggered it carries either a value (success) or an
    exception (failure).  Callbacks registered on the event are invoked by
    the environment when the event is popped from the schedule (the
    environment then drops the list reference so fired events free their
    callback storage immediately).

    ``__slots__`` throughout the event hierarchy: the kernel allocates a
    handful of events per simulated transfer, so avoiding a per-instance
    ``__dict__`` measurably shrinks both allocation time and footprint.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._ok: Optional[bool] = None  # None: pending, True/False once triggered

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or raises its exception on failure)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- state transitions -------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as payload."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exc`` raised."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._exc = exc
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running simulation process.

    Wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process suspends until that event fires.  The
    process is itself an event: it triggers when the generator terminates,
    succeeding with the generator's return value, or failing with the
    exception that escaped it.
    """

    __slots__ = ("_gen", "name", "_target")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        if not hasattr(gen, "throw"):
            raise SimulationError(f"{gen!r} is not a generator")
        super().__init__(env)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._exc = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)
        # Detach from whatever we were waiting on so the original event's
        # callback does not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
            self._target = None

    # -- driver ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active = self
        while True:
            try:
                if event._ok:
                    next_ev = self._gen.send(event._value)
                else:
                    exc = event._exc
                    assert exc is not None
                    next_ev = self._gen.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                break
            except BaseException as exc:  # generator died with an error
                self._ok = False
                self._exc = exc
                self.env._schedule(self, NORMAL, 0.0)
                break

            if not isinstance(next_ev, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._exc = err
                continue

            if next_ev.env is not self.env:
                raise SimulationError("event belongs to a different environment")

            if next_ev.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = next_ev
                continue
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        self.env._active = None


class AllOf(Event):
    """Conjunction: fires when every event in ``events`` has fired.

    Succeeds with a list of the individual event values (in input order).
    Fails as soon as any constituent fails.
    """

    __slots__ = ("_events", "_pending", "_failed")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        self._failed = False
        for ev in self._events:
            if not isinstance(ev, Event):
                raise SimulationError(f"AllOf got non-event {ev!r}")
            if ev.callbacks is None:
                continue  # already processed
            self._pending += 1
            ev.callbacks.append(self._check)
        if self._pending == 0:
            self._finish()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            self._failed = True
            self._ok = False
            self._exc = event._exc
            self.env._schedule(self, NORMAL, 0.0)
            return
        self._pending -= 1
        if self._pending == 0:
            self._finish()

    def _finish(self) -> None:
        if self._ok is not None:  # pragma: no cover - race with failure
            return
        for ev in self._events:
            if not ev._ok:
                self._ok = False
                self._exc = ev._exc
                self.env._schedule(self, NORMAL, 0.0)
                return
        self._ok = True
        self._value = [ev._value for ev in self._events]
        self.env._schedule(self, NORMAL, 0.0)


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Typical use::

        env = Environment()

        def proc(env):
            yield env.timeout(3.0)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.now == 3.0 and p.value == "done"
    """

    __slots__ = ("_now", "_queue", "_seq", "_active")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from generator ``gen``."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create an event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("empty schedule")
        time, _prio, _seq, event = heapq.heappop(self._queue)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event._ok and not callbacks:
            # A failed event (e.g. a crashed process) nobody was waiting
            # on: surface the error instead of losing it silently.
            raise event._exc  # type: ignore[misc]

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the event queue drains.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event is processed and return
          its value (raising if the event failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            while self._queue and not target.processed:
                self.step()
            if not target.processed:
                raise SimulationError("simulation ended before target event fired")
            return target.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"until={deadline} is in the past (now={self._now})")
        while self._queue and self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None
