"""Deterministic discrete-event simulation kernel.

This subpackage is a small, self-contained, SimPy-style discrete-event
simulator.  It provides the substrate on which every master-worker
scheduling algorithm of the paper is executed:

* :class:`~repro.sim.core.Environment` — the event loop and simulated clock,
* :class:`~repro.sim.core.Process` — generator-based cooperative processes,
* :class:`~repro.sim.core.Timeout` / :class:`~repro.sim.core.Event` —
  primitive waitable events,
* :class:`~repro.sim.resources.Resource` — FIFO mutual-exclusion resource
  (used to model the master's one-port network interface),
* :class:`~repro.sim.resources.Store` — FIFO producer/consumer buffer
  (used to model per-worker mailboxes).

The implementation is deterministic: events scheduled for the same
simulated time are processed in the order they were scheduled (FIFO by an
internal monotonically-increasing sequence number), so every simulation in
this repository is exactly reproducible.
"""

from repro.sim.core import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
