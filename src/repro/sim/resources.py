"""Shared resources for the simulation kernel.

Two primitives are provided:

* :class:`Resource` — a counted, FIFO mutual-exclusion resource.  The
  master's network interface under the strict one-port model of the paper
  is a ``Resource(env, capacity=1)``: at most one transfer (in either
  direction) may hold it at a time, and waiters are served in request
  order.  The two-port ablation uses two such resources (one per
  direction).

* :class:`Store` — an unbounded (or bounded) FIFO buffer of Python
  objects, used as per-worker mailboxes: the master ``put``s block
  descriptors, the worker process ``get``s them.

Both follow the kernel's event protocol: ``request()``/``get()`` return
events to ``yield`` on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Request", "Release", "Resource", "Store"]


class Request(Event):
    """Event representing a pending or granted claim on a :class:`Resource`.

    Usable as a context manager::

        with res.request() as req:
            yield req
            ...   # resource held here
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Release(Event):
    """Event for a release; it always succeeds immediately."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        resource._do_release(request)
        self.succeed()


class Resource:
    """Counted FIFO resource with ``capacity`` concurrent slots.

    Statistics for utilization analysis are tracked: total busy time of
    each slot is accumulated in :attr:`busy_time` (summed over slots).
    """

    __slots__ = ("env", "capacity", "users", "queue", "busy_time", "_grant_times")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()
        self.busy_time = 0.0
        self._grant_times: dict[int, float] = {}

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a previously granted slot."""
        return Release(self, request)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        self._grant_times[id(request)] = self.env.now
        request.succeed()

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self.busy_time += self.env.now - self._grant_times.pop(id(request))
        else:
            # Cancelling a queued request is allowed.
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("releasing a request that was never granted")
        while self.queue and len(self.users) < self.capacity:
            self._grant(self.queue.popleft())


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._gets.append(self)
        store._dispatch()


class StorePut(Event):
    """Pending insertion into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class Store:
    """FIFO object buffer with optional capacity bound.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately unless the store is full); ``get()`` returns an event
    that fires with the oldest item once one is available.
    """

    __slots__ = ("env", "capacity", "items", "_gets", "_puts")

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._gets: Deque[StoreGet] = deque()
        self._puts: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; event fires when the store has room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; event fires when one exists."""
        return StoreGet(self)

    def _dispatch(self) -> None:
        # Accept puts while there is room.
        while self._puts and len(self.items) < self.capacity:
            put = self._puts.popleft()
            self.items.append(put.item)
            put.succeed()
        # Serve gets while there are items.
        while self._gets and self.items:
            get = self._gets.popleft()
            get.succeed(self.items.popleft())
        # Accepting a put may have been enabled by a get.
        while self._puts and len(self.items) < self.capacity:
            put = self._puts.popleft()
            self.items.append(put.item)
            put.succeed()
