"""Process fan-out for sweep points.

One helper, :func:`parallel_map`, which applies a pure point function to
a list of parameter mappings across a :mod:`multiprocessing` pool while
preserving input order.  The worker entry point is a module-level
function so it pickles by reference under every start method; ``fork``
is preferred where available (no re-import cost), falling back to the
platform default elsewhere.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Iterator, Mapping, Sequence, Tuple

__all__ = ["parallel_map"]

PointFn = Callable[[Mapping[str, Any]], Any]


def _call_point(task: Tuple[PointFn, Mapping[str, Any]]) -> Tuple[Any, float]:
    """Worker entry: run one point, returning ``(value, seconds)``."""
    fn, params = task
    start = time.perf_counter()
    value = fn(params)
    return value, time.perf_counter() - start


def _context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def parallel_map(
    fn: PointFn, items: Sequence[Mapping[str, Any]], jobs: int
) -> Iterator[Tuple[Any, float]]:
    """Yield ``(value, seconds)`` for each item, in input order.

    ``jobs <= 1`` (or a single item) runs inline — no pool, so closures
    and monkeypatched functions work in tests and callers pay zero
    process overhead on the serial path.
    """
    if jobs <= 1 or len(items) <= 1:
        for params in items:
            yield _call_point((fn, params))
        return
    with _context().Pool(processes=min(jobs, len(items))) as pool:
        yield from pool.imap(_call_point, [(fn, p) for p in items], chunksize=1)
