"""Content-addressed on-disk cache for sweep-point results.

Layout: one JSON file per point, ``<root>/<sweep-name>/<key>.json``,
where ``key`` is the :func:`repro.runner.hashing.point_key` digest,
plus one append-only **manifest** per sweep directory,
``<root>/<sweep-name>/MANIFEST.jsonl``, journalling every entry written
or healed away.  Entries embed the key and parameters that produced
them, so a cache directory is self-describing and human-readable.
(Entries may contain ``NaN`` tokens — Python's JSON dialect — where an
experiment reports a missing paper value, so strict-JSON consumers need
``parse_constant``.)

The manifest is the cache's index: ``cache info`` (:meth:`ResultCache.
stats`) and sweep resume (:meth:`ResultCache.manifest_keys`) fold the
journal instead of globbing and stat-ing every entry file, so their
cost is one small file read per sweep regardless of entry count.
Journal records are single JSON lines::

    {"op": "put", "key": "<digest>", "bytes": N, "created": T}
    {"op": "del", "key": "<digest>"}

    {"op": "quarantine", "key": "<digest>", "params": {...}, "error": "...", "created": T}

and the index is the fold: last ``put`` wins, ``del`` removes, and
``quarantine`` marks a key as a *known-permanent failure* (a point that
exhausted its retry budget under the runner's fault-tolerance layer —
see ``docs/runner.md``).  Quarantined keys have **no entry file**;
they exist only in the journal, so they can never be served as data.
A later successful ``put`` of the same key clears its quarantine
record (the fold is last-op-wins), which is exactly what a
``--retry-quarantined`` run does when the point finally computes.

Robustness rules:

* entry writes are atomic (temp file + :func:`os.replace`), so a killed
  run never leaves a half-written entry;
* unreadable, truncated, or key-mismatched entries are treated as
  misses and deleted (with a ``del`` journal record), so a corrupted
  cache heals itself on the next run;
* manifest appends are single ``O_APPEND`` writes of one line, safe
  under concurrent writers;
* a missing, torn, or corrupt manifest — or a pre-manifest legacy
  sweep directory — is rebuilt from the entry files themselves
  (:meth:`ResultCache.rebuild_manifest`): the entry files are always
  the ground truth, the manifest only an index over them.  The manifest
  being advisory is also what makes it resume-safe: a stale listing is
  re-validated by :meth:`get` before anything trusts it;
* a journal dominated by dead history (overwritten puts, ``del``
  records, cleared quarantines) is **compacted** down to its fold —
  explicitly via ``python -m repro cache compact``
  (:meth:`ResultCache.compact`), or opportunistically whenever an
  index read notices the imbalance.  Compaction writes the new journal
  to a temp file and atomically renames it into place, so a crash
  mid-compaction leaves the old journal intact, never a torn hybrid.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Set, Tuple

from repro.runner.hashing import point_key

__all__ = ["CacheStats", "ResultCache", "cached_call", "default_cache_dir"]

_FORMAT = 1  # bump to invalidate every existing entry
_MANIFEST = "MANIFEST.jsonl"


def _cache_disabled() -> bool:
    """Whether ``$REPRO_CACHE_DISABLE`` asks to bypass the store.

    Conventional 'off' spellings (unset, empty, ``0``, ``false``,
    ``no``) leave the cache on.
    """
    value = os.environ.get("REPRO_CACHE_DISABLE", "")
    return value.strip().lower() not in ("", "0", "false", "no")


def default_cache_dir() -> Path:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sweeps"


@dataclass(frozen=True)
class CacheStats:
    """Aggregate numbers for ``python -m repro cache info``.

    ``per_sweep`` maps sweep name to ``(entries, quarantined)`` so the
    CLI can surface known-permanent failures per namespace without
    another index read.  ``batch_entries`` counts live entries whose
    last ``put`` came from the vectorized batch path (the ``"batch":
    true`` manifest stamp — see :meth:`ResultCache.put`), with
    ``batch_per_sweep`` the per-namespace breakdown; everything else
    was computed by the scalar per-point path.
    """

    entries: int
    bytes: int
    sweeps: Tuple[str, ...]
    quarantined: int = 0
    per_sweep: Tuple[Tuple[str, int, int], ...] = ()
    batch_entries: int = 0
    batch_per_sweep: Tuple[Tuple[str, int], ...] = ()


class ResultCache:
    """A directory of content-addressed sweep-point results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, sweep: str, key: str) -> Path:
        """Entry location for ``key`` in sweep namespace ``sweep``."""
        return self.root / sweep / f"{key}.json"

    def manifest_path(self, sweep: str) -> Path:
        """The sweep's journal file."""
        return self.root / sweep / _MANIFEST

    # -- entries --------------------------------------------------------

    def get(self, sweep: str, key: str) -> Tuple[Any, bool]:
        """Look up ``key``; returns ``(value, hit)``.

        A malformed entry (truncated write, manual tampering, format
        drift) is deleted and reported as a miss — never an exception.
        """
        path = self.path_for(sweep, key)
        try:
            entry = json.loads(path.read_text())
            if entry["format"] != _FORMAT or entry["key"] != key:
                raise ValueError("stale or mismatched cache entry")
            return entry["result"], True
        except FileNotFoundError:
            return None, False
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink(missing_ok=True)
                # Record the heal — but never *create* a manifest out of
                # a lone del record: a legacy directory must keep looking
                # index-less so the next read rebuilds it in full.
                if self.manifest_path(sweep).exists():
                    self._append_manifest(sweep, {"op": "del", "key": key})
            except OSError:
                pass  # e.g. a read-only shared cache: miss, don't crash
            return None, False

    def put(
        self,
        sweep: str,
        key: str,
        params: Mapping[str, Any],
        value: Any,
        batch: bool = False,
    ) -> None:
        """Store ``value`` atomically; raises ``TypeError`` if not JSON-able.

        ``batch`` marks the value as computed by the vectorized batch
        path (:mod:`repro.engine.batch` via a sweep's ``batch_fn``): the
        entry payload and its manifest ``put`` record gain a ``"batch":
        true`` stamp so ``cache info`` can report batch-vs-scalar
        provenance.  The stamp is pure provenance — the key, lookup, and
        the ``result`` payload are identical either way, so batch and
        scalar runs stay interchangeable cache-wise.  (Like the manifest
        itself the stamp is advisory: :meth:`rebuild_manifest` re-derives
        the index from entry *stats* without opening files, so a rebuilt
        journal reports every entry as scalar.)
        """
        record: Dict[str, Any] = {
            "format": _FORMAT,
            "key": key,
            "sweep": sweep,
            "params": dict(params),
            "created": time.time(),
            "result": value,
        }
        if batch:
            record["batch"] = True
        blob = json.dumps(record, indent=None)
        data = blob.encode("utf-8")
        path = self.path_for(sweep, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        try:
            manifest = self.manifest_path(sweep)
            if not manifest.exists() and any(
                p.suffix == ".json" and p.name != f"{key}.json"
                for p in path.parent.iterdir()
            ):
                # First write into a pre-manifest (legacy) sweep
                # directory: index the existing entries too.
                self.rebuild_manifest(sweep)
                return
            put_record: Dict[str, Any] = {
                "op": "put", "key": key, "bytes": len(data),
                "created": time.time(),
            }
            if batch:
                put_record["batch"] = True
            self._append_manifest(sweep, put_record)
        except OSError:
            pass  # entry files are the ground truth; the index can wait

    # -- manifest -------------------------------------------------------

    def _append_manifest(self, sweep: str, record: Mapping[str, Any]) -> None:
        """Append one journal line with a single atomic ``O_APPEND`` write."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        path = self.manifest_path(sweep)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def _read_manifest(
        self, sweep: str
    ) -> Tuple[Dict[str, int], Dict[str, dict], int, Set[str]] | None:
        """Fold the journal into ``({key: bytes}, {key: quarantine},
        records, batch_keys)`` — ``records`` counting every journal line
        so callers can spot a journal dominated by dead history,
        ``batch_keys`` the live keys whose last ``put`` carried the
        batch-provenance stamp — or ``None`` when the manifest is absent
        or any line is unparsable (torn concurrent write, manual edit) —
        the caller rebuilds from entry files."""
        try:
            text = self.manifest_path(sweep).read_text()
        except OSError:
            return None
        live: Dict[str, int] = {}
        quar: Dict[str, dict] = {}
        batch_keys: Set[str] = set()
        records = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op, key = record["op"], record["key"]
            except (ValueError, KeyError, TypeError):
                return None
            records += 1
            if op == "put":
                live[key] = int(record.get("bytes", 0))
                quar.pop(key, None)  # a success clears the quarantine
                if record.get("batch"):
                    batch_keys.add(key)
                else:
                    batch_keys.discard(key)  # last put wins
            elif op == "del":
                live.pop(key, None)
                batch_keys.discard(key)
            elif op == "quarantine":
                quar[key] = record
            else:
                return None
        return live, quar, records, batch_keys

    def rebuild_manifest(self, sweep: str) -> Dict[str, int]:
        """Re-derive the sweep's index from its entry files.

        The self-healing path: keys are the entry filenames and sizes
        come from ``stat``, so no entry is opened.  Quarantine records
        exist *only* in the journal, so the rebuild salvages every
        parsable quarantine line from the old (possibly torn) manifest —
        a single corrupt line must not amnesty a known-permanent
        failure.  The new manifest is written atomically (temp file +
        replace); a concurrent append racing the replace loses at most
        its own record, which the next ``put`` of that key — or the
        next rebuild — restores.  On a read-only cache the derived
        index is returned without being persisted (re-derived on every
        read — correct, just not O(1)).
        """
        target = self.root / sweep
        live: Dict[str, int] = {}
        if target.is_dir():
            for path in target.glob("*.json"):
                try:
                    live[path.stem] = path.stat().st_size
                except OSError:
                    continue  # vanished mid-scan
        else:
            return live
        quar: Dict[str, dict] = {}
        try:
            old = self.manifest_path(sweep).read_text()
        except OSError:
            old = ""
        for line in old.splitlines():
            try:
                record = json.loads(line)
                op, key = record["op"], record["key"]
            except (ValueError, KeyError, TypeError):
                continue  # salvage what parses, skip the torn line
            if op == "quarantine":
                quar[key] = record
            elif op == "put":
                quar.pop(key, None)
        for key in live:
            quar.pop(key, None)  # an entry file on disk outranks it
        lines = "".join(
            json.dumps({"op": "put", "key": key, "bytes": size},
                       separators=(",", ":")) + "\n"
            for key, size in sorted(live.items())
        ) + "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for _, record in sorted(quar.items())
        )
        try:
            fd, tmp = tempfile.mkstemp(dir=target, suffix=".tmp")
        except OSError:
            return live  # e.g. a read-only shared cache
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(lines)
            os.replace(tmp, self.manifest_path(sweep))
        except OSError:
            Path(tmp).unlink(missing_ok=True)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return live

    def manifest(self, sweep: str) -> Dict[str, int]:
        """The sweep's live index, ``{key: bytes}`` (healed if needed).

        Opportunistically compacts a journal whose dead history (puts
        overwritten, ``del`` records, cleared quarantines) outnumbers
        its live entries, so a churned sweep's index read stays one
        small file no matter how long its history grew.
        """
        folded = self._read_manifest(sweep)
        if folded is None:
            return self.rebuild_manifest(sweep)
        live, quar, records, _ = folded
        if self._wants_compaction(live, quar, records):
            self.compact(sweep)
        return live

    @staticmethod
    def _wants_compaction(
        live: Mapping[str, int], quar: Mapping[str, dict], records: int
    ) -> bool:
        """Whether a folded journal is worth rewriting: more dead
        records than live ones, with a small floor so tiny sweeps never
        churn."""
        dead = records - len(live) - len(quar)
        return dead > max(len(live) + len(quar), 4)

    def compact(self, sweep: str) -> int:
        """Rewrite the sweep's journal down to its fold; returns the
        number of dead records dropped.

        Crash-safe by construction: the compacted journal is written to
        a temp file and atomically renamed over the old one, so a crash
        at any instant leaves either the full history or the complete
        fold — never a torn hybrid (the torn-compaction recovery
        guarantee).  An append racing the rename loses at most its own
        record, which the next ``put`` of that key — or a rebuild —
        restores; entry files stay the ground truth throughout.  A
        missing or torn journal is healed through
        :meth:`rebuild_manifest` instead (already minimal).  Best-effort
        on read-only caches: the journal is simply left as it was.
        """
        folded = self._read_manifest(sweep)
        if folded is None:
            self.rebuild_manifest(sweep)
            return 0
        live, quar, records, batch_keys = folded
        dead = records - len(live) - len(quar)
        if dead <= 0:
            return 0
        lines = "".join(
            json.dumps(
                {"op": "put", "key": key, "bytes": size, "batch": True}
                if key in batch_keys
                else {"op": "put", "key": key, "bytes": size},
                separators=(",", ":"),
            ) + "\n"
            for key, size in sorted(live.items())
        ) + "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for _, record in sorted(quar.items())
        )
        target = self.root / sweep
        try:
            fd, tmp = tempfile.mkstemp(dir=target, suffix=".tmp")
        except OSError:
            return 0  # e.g. a read-only shared cache
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(lines)
            os.replace(tmp, self.manifest_path(sweep))
        except OSError:
            Path(tmp).unlink(missing_ok=True)
            return 0
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return dead

    # -- quarantine -----------------------------------------------------

    def quarantine(
        self, sweep: str, key: str, params: Mapping[str, Any], error: str
    ) -> None:
        """Journal ``key`` as a known-permanent failure.

        Written by the runner when a point exhausts its retry budget
        under ``on_error="keep"``: resumes then skip the point instead
        of re-failing it (``--retry-quarantined`` opts back in), and
        ``cache info`` surfaces the count.  Best-effort like every
        index write — a read-only cache loses the record, never the
        run.
        """
        target = self.root / sweep
        try:
            target.mkdir(parents=True, exist_ok=True)
            if not self.manifest_path(sweep).exists() and any(
                p.suffix == ".json" for p in target.iterdir()
            ):
                # Legacy (pre-manifest) directory: index the entries
                # first so the new journal is a complete fold.
                self.rebuild_manifest(sweep)
            self._append_manifest(
                sweep,
                {"op": "quarantine", "key": key, "params": dict(params),
                 "error": str(error), "created": time.time()},
            )
        except OSError:
            pass

    def quarantined(self, sweep: str) -> Dict[str, dict]:
        """The sweep's known-permanent failures, ``{key: record}``.

        Each record carries the offending ``params`` and the final
        ``error`` string.  Keys with a live entry (a later successful
        put) are never listed.
        """
        folded = self._read_manifest(sweep)
        if folded is None:
            self.rebuild_manifest(sweep)  # salvages quarantine lines
            folded = self._read_manifest(sweep)
        if folded is None:
            return {}
        live, quar, records, _ = folded
        if self._wants_compaction(live, quar, records):
            self.compact(sweep)
        return quar

    def manifest_keys(self, sweep: str) -> Set[str]:
        """Keys the index lists for ``sweep`` — the resume fast path.

        One journal read, O(1) in the number of *other* sweeps' entries
        and independent of entry sizes.  Listings are advisory: callers
        must still :meth:`get` (which validates) before trusting one.
        """
        return set(self.manifest(sweep))

    # -- aggregate views ------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """All entry files currently on disk.

        A snapshot, not a lock: a concurrent sweep or :meth:`clear` may
        remove a listed file before the caller touches it, so consumers
        must tolerate vanished paths.  (:meth:`stats` no longer walks
        this — it folds the manifests — but :meth:`clear` and the
        rebuild path still ground-truth against the files.)
        """
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def stats(self) -> CacheStats:
        """Entry count, total size, and the sweep namespaces present.

        Reads one manifest per sweep directory — never the entry files
        themselves — so ``cache info`` costs O(sweeps), not O(entries).
        Sweep directories without a readable manifest (legacy caches,
        torn journals) are healed by :meth:`rebuild_manifest` on the
        way through.
        """
        count = 0
        size = 0
        bad = 0
        batch_total = 0
        sweeps = []
        per_sweep = []
        batch_per_sweep = []
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if not child.is_dir():
                    continue
                folded = self._read_manifest(child.name)
                if folded is None:
                    live = self.rebuild_manifest(child.name)
                    refolded = self._read_manifest(child.name)
                    quar = refolded[1] if refolded is not None else {}
                    batch_keys = refolded[3] if refolded is not None else set()
                else:
                    live, quar, records, batch_keys = folded
                    if self._wants_compaction(live, quar, records):
                        self.compact(child.name)
                if not live and not quar:
                    continue
                batch_live = sum(1 for key in batch_keys if key in live)
                count += len(live)
                size += sum(live.values())
                bad += len(quar)
                batch_total += batch_live
                sweeps.append(child.name)
                per_sweep.append((child.name, len(live), len(quar)))
                if batch_live:
                    batch_per_sweep.append((child.name, batch_live))
        return CacheStats(
            entries=count,
            bytes=size,
            sweeps=tuple(sweeps),
            quarantined=bad,
            per_sweep=tuple(per_sweep),
            batch_entries=batch_total,
            batch_per_sweep=tuple(batch_per_sweep),
        )

    def clear(self, sweep: str | None = None) -> int:
        """Delete all entries (or one sweep's); returns the count removed.

        Counting ground-truths against the entry files (not the index):
        ``clear`` is the maintenance path, and the manifest dies with
        its directory anyway.
        """
        removed = 0
        if sweep is not None:
            target = self.root / sweep
            removed = len(list(target.glob("*.json"))) if target.is_dir() else 0
            shutil.rmtree(target, ignore_errors=True)
            return removed
        removed = len(list(self.entries()))
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed


def cached_call(
    tag: str,
    fn,
    *args: Any,
    cache: ResultCache | None = None,
    code: str | None = None,
    **kwargs: Any,
):
    """Memoize ``fn(*args, **kwargs)`` in the sweep cache.

    Used by the benchmark harness (so repeated ``pytest benchmarks/``
    runs are warm) and by point functions that share expensive
    sub-results across points and processes, e.g. the robustness
    sweep's stationary baselines.  Results that are not JSON-serialisable
    (e.g. trace objects) are computed normally and simply not cached.

    When no explicit ``cache`` is given the store lives at
    :func:`default_cache_dir` (``$REPRO_CACHE_DIR``), and setting
    ``$REPRO_CACHE_DISABLE`` (to anything but ``0``/``false``/``no``)
    bypasses the store — the CLI exports both for the duration of a
    ``sweep`` invocation, so ``--cache-dir``/``--no-cache`` also
    govern the ``cached_call`` lookups made inside worker processes.
    An explicitly passed ``cache`` always wins over the kill switch.
    """
    if cache is None and _cache_disabled():
        return fn(*args, **kwargs)
    cache = cache or ResultCache()
    try:
        params = {"tag": tag, "args": list(args), "kwargs": kwargs}
        key = point_key("bench", params, code)
    except TypeError:
        return fn(*args, **kwargs)
    value, hit = cache.get("bench", key)
    if hit:
        return value
    value = fn(*args, **kwargs)
    try:
        cache.put("bench", key, params, value)
    except (TypeError, OSError):
        # Not JSON-able, or the store is unwritable (read-only shared
        # cache): degrade to compute-without-caching, never crash a
        # point function over its memo store.
        pass
    return value
