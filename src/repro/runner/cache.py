"""Content-addressed on-disk cache for sweep-point results.

Layout: one JSON file per point, ``<root>/<sweep-name>/<key>.json``,
where ``key`` is the :func:`repro.runner.hashing.point_key` digest.
Entries embed the key and parameters that produced them, so a cache
directory is self-describing and human-readable.  (Entries may contain
``NaN`` tokens — Python's JSON dialect — where an experiment reports a
missing paper value, so strict-JSON consumers need ``parse_constant``.)

Robustness rules:

* writes are atomic (temp file + :func:`os.replace`), so a killed run
  never leaves a half-written entry;
* unreadable, truncated, or key-mismatched entries are treated as
  misses and deleted, so a corrupted cache heals itself on the next run.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Tuple

from repro.runner.hashing import point_key

__all__ = ["CacheStats", "ResultCache", "cached_call", "default_cache_dir"]

_FORMAT = 1  # bump to invalidate every existing entry


def default_cache_dir() -> Path:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sweeps"


@dataclass(frozen=True)
class CacheStats:
    """Aggregate numbers for ``python -m repro cache info``."""

    entries: int
    bytes: int
    sweeps: Tuple[str, ...]


class ResultCache:
    """A directory of content-addressed sweep-point results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, sweep: str, key: str) -> Path:
        """Entry location for ``key`` in sweep namespace ``sweep``."""
        return self.root / sweep / f"{key}.json"

    def get(self, sweep: str, key: str) -> Tuple[Any, bool]:
        """Look up ``key``; returns ``(value, hit)``.

        A malformed entry (truncated write, manual tampering, format
        drift) is deleted and reported as a miss — never an exception.
        """
        path = self.path_for(sweep, key)
        try:
            entry = json.loads(path.read_text())
            if entry["format"] != _FORMAT or entry["key"] != key:
                raise ValueError("stale or mismatched cache entry")
            return entry["result"], True
        except FileNotFoundError:
            return None, False
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # e.g. a read-only shared cache: miss, don't crash
            return None, False

    def put(self, sweep: str, key: str, params: Mapping[str, Any], value: Any) -> None:
        """Store ``value`` atomically; raises ``TypeError`` if not JSON-able."""
        blob = json.dumps(
            {
                "format": _FORMAT,
                "key": key,
                "sweep": sweep,
                "params": dict(params),
                "created": time.time(),
                "result": value,
            },
            indent=None,
        )
        path = self.path_for(sweep, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    def entries(self) -> Iterator[Path]:
        """All entry files currently on disk.

        A snapshot, not a lock: a concurrent sweep or :meth:`clear` may
        remove a listed file before the caller touches it, so consumers
        must tolerate vanished paths (as :meth:`stats` does).
        """
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def stats(self) -> CacheStats:
        """Entry count, total size, and the sweep namespaces present.

        Entries removed between the directory scan and the ``stat`` call
        (a concurrent sweep writing/clearing the same cache) are simply
        skipped — never an exception.
        """
        count = 0
        size = 0
        sweeps: set[str] = set()
        for path in self.entries():
            try:
                size += path.stat().st_size
            except OSError:  # vanished mid-scan (FileNotFoundError et al.)
                continue
            count += 1
            sweeps.add(path.parent.name)
        return CacheStats(entries=count, bytes=size, sweeps=tuple(sorted(sweeps)))

    def clear(self, sweep: str | None = None) -> int:
        """Delete all entries (or one sweep's); returns the count removed."""
        removed = 0
        if sweep is not None:
            target = self.root / sweep
            removed = len(list(target.glob("*.json"))) if target.is_dir() else 0
            shutil.rmtree(target, ignore_errors=True)
            return removed
        removed = len(list(self.entries()))
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed


def cached_call(
    tag: str,
    fn,
    *args: Any,
    cache: ResultCache | None = None,
    code: str | None = None,
    **kwargs: Any,
):
    """Memoize ``fn(*args, **kwargs)`` in the sweep cache.

    Used by the benchmark harness so repeated ``pytest benchmarks/``
    runs are warm.  Results that are not JSON-serialisable (e.g. trace
    objects) are computed normally and simply not cached.
    """
    cache = cache or ResultCache()
    try:
        params = {"tag": tag, "args": list(args), "kwargs": kwargs}
        key = point_key("bench", params, code)
    except TypeError:
        return fn(*args, **kwargs)
    value, hit = cache.get("bench", key)
    if hit:
        return value
    value = fn(*args, **kwargs)
    try:
        cache.put("bench", key, params, value)
    except TypeError:
        pass
    return value
