"""Content-addressed on-disk cache for sweep-point results.

Layout: one JSON file per point, sharded by key prefix::

    <root>/<sweep-name>/<key[:2]>/<key>.json
    <root>/<sweep-name>/<key[:2]>/MANIFEST.jsonl

where ``key`` is the :func:`repro.runner.hashing.point_key` digest.
The two-hex-character prefix bounds every directory: a sweep directory
holds at most 256 shard directories however many entries it accrues,
so million-point campaigns never produce a directory listing that
chokes tooling (the bounded fan-out pattern of large content stores).
Each shard carries its own append-only **manifest** journalling every
entry written or healed away inside it.  Entries embed the key and
parameters that produced them, so a cache directory is self-describing
and human-readable.  (Entries may contain ``NaN`` tokens — Python's
JSON dialect — where an experiment reports a missing paper value, so
strict-JSON consumers need ``parse_constant``.)

**Legacy flat layouts stay readable.**  Sweeps written before sharding
kept ``<sweep>/<key>.json`` files indexed by a single
``<sweep>/MANIFEST.jsonl``: reads fall through to the flat location,
index reads merge the legacy fold under the shard folds (the shard
layer wins per key), and ``python -m repro cache migrate`` moves a
flat sweep into shards wholesale — entry files via atomic renames,
manifest records (including quarantines and batch stamps) re-homed to
their shards — after which the legacy manifest is retired.

The manifests are the cache's index: ``cache info``
(:meth:`ResultCache.stats`) and sweep resume
(:meth:`ResultCache.manifest_keys`) fold the journals instead of
globbing and stat-ing every entry file, so their cost is
O(shards-touched), not O(entries); per-file folds are additionally
memoized on ``(mtime_ns, size)`` — like ``code_version()`` — so
repeated index reads of an unchanged shard cost one ``stat``.
Journal records are single JSON lines::

    {"op": "put", "key": "<digest>", "bytes": N, "created": T}
    {"op": "del", "key": "<digest>"}

    {"op": "quarantine", "key": "<digest>", "params": {...}, "error": "...", "created": T}

and the index is the fold: last ``put`` wins, ``del`` removes, and
``quarantine`` marks a key as a *known-permanent failure* (a point that
exhausted its retry budget under the runner's fault-tolerance layer —
see ``docs/runner.md``).  Quarantined keys have **no entry file**;
they exist only in the journal, so they can never be served as data.
A later successful ``put`` of the same key clears its quarantine
record (the fold is last-op-wins), which is exactly what a
``--retry-quarantined`` run does when the point finally computes.

**Bulk I/O.**  :meth:`ResultCache.put_many` stores a resolved batch —
one atomic entry write per point, then a *single* ``O_APPEND`` write
and a *single* ``fsync`` per touched shard manifest, instead of one
append per point; :meth:`ResultCache.get_many` is the bulk read.  A
256-point vectorized batch therefore costs at most a handful of
manifest syncs however it hashes.

Robustness rules:

* entry writes are atomic (temp file + :func:`os.replace`), so a killed
  run never leaves a half-written entry;
* unreadable, truncated, or key-mismatched entries are treated as
  misses and deleted (with a ``del`` journal record), so a corrupted
  cache heals itself on the next run;
* manifest appends are single ``O_APPEND`` writes, safe under
  concurrent writers;
* a missing, torn, or corrupt manifest — or a pre-manifest legacy
  sweep directory — is rebuilt from the entry files themselves
  (:meth:`ResultCache.rebuild_manifest`), shard by shard: the entry
  files are always the ground truth, the manifests only an index over
  them.  The manifests being advisory is also what makes them
  resume-safe (a stale listing is re-validated by :meth:`get` before
  anything trusts it) and what makes ``cache migrate`` crash-safe
  (a killed migration leaves every entry file in exactly one readable
  location; re-running completes it);
* a journal dominated by dead history (overwritten puts, ``del``
  records, cleared quarantines) is **compacted** down to its fold —
  explicitly via ``python -m repro cache compact``
  (:meth:`ResultCache.compact`), or opportunistically whenever an
  index read notices the imbalance.  Compaction rewrites one shard
  journal at a time to a temp file and atomically renames it into
  place, so a crash mid-compaction leaves the old journal intact,
  never a torn hybrid.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any, Container, Dict, Iterable, Iterator, List, Mapping, Set, Tuple,
)

from repro.runner.hashing import point_key

__all__ = ["CacheStats", "ResultCache", "cached_call", "default_cache_dir"]

_FORMAT = 1  # bump to invalidate every existing entry
_MANIFEST = "MANIFEST.jsonl"

#: A folded journal: ``(live {key: bytes}, quarantine {key: record},
#: records-in-journal, batch-stamped live keys)``.
_Fold = Tuple[Dict[str, int], Dict[str, dict], int, Set[str]]


def _cache_disabled() -> bool:
    """Whether ``$REPRO_CACHE_DISABLE`` asks to bypass the store.

    Conventional 'off' spellings (unset, empty, ``0``, ``false``,
    ``no``) leave the cache on.
    """
    value = os.environ.get("REPRO_CACHE_DISABLE", "")
    return value.strip().lower() not in ("", "0", "false", "no")


def default_cache_dir() -> Path:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sweeps"


def shard_prefix(key: str) -> str:
    """The shard directory name for ``key`` — its first two characters.

    ``point_key`` digests are 64 hex characters, giving 256 shards; the
    degenerate short-key case still lands in a well-formed directory.
    """
    return key[:2] if len(key) >= 2 else (key + "__")[:2]


def _fold_lines(text: str) -> _Fold | None:
    """Fold journal text into an index, ``None`` on any unparsable line
    (torn concurrent write, manual edit) — the caller rebuilds from the
    entry files."""
    live: Dict[str, int] = {}
    quar: Dict[str, dict] = {}
    batch_keys: Set[str] = set()
    records = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            op, key = record["op"], record["key"]
        except (ValueError, KeyError, TypeError):
            return None
        records += 1
        if op == "put":
            live[key] = int(record.get("bytes", 0))
            quar.pop(key, None)  # a success clears the quarantine
            if record.get("batch"):
                batch_keys.add(key)
            else:
                batch_keys.discard(key)  # last put wins
        elif op == "del":
            live.pop(key, None)
            batch_keys.discard(key)
        elif op == "quarantine":
            quar[key] = record
        else:
            return None
    return live, quar, records, batch_keys


def _fold_records(fold: _Fold) -> str:
    """Serialise a fold back to minimal journal text (compaction,
    rebuild, migration all converge here so the formats agree)."""
    live, quar, _, batch_keys = fold
    return "".join(
        json.dumps(
            {"op": "put", "key": key, "bytes": size, "batch": True}
            if key in batch_keys
            else {"op": "put", "key": key, "bytes": size},
            separators=(",", ":"),
        ) + "\n"
        for key, size in sorted(live.items())
    ) + "".join(
        json.dumps(record, separators=(",", ":")) + "\n"
        for _, record in sorted(quar.items())
    )


@dataclass(frozen=True)
class CacheStats:
    """Aggregate numbers for ``python -m repro cache info``.

    ``per_sweep`` maps sweep name to ``(entries, quarantined)`` so the
    CLI can surface known-permanent failures per namespace without
    another index read.  ``batch_entries`` counts live entries whose
    last ``put`` came from the vectorized batch path (the ``"batch":
    true`` manifest stamp — see :meth:`ResultCache.put`), with
    ``batch_per_sweep`` the per-namespace breakdown; everything else
    was computed by the scalar per-point path.  ``shards_per_sweep``
    reports each namespace's shard-directory count (0 for a purely
    legacy flat sweep) so fan-out is visible from ``cache info``.
    """

    entries: int
    bytes: int
    sweeps: Tuple[str, ...]
    quarantined: int = 0
    per_sweep: Tuple[Tuple[str, int, int], ...] = ()
    batch_entries: int = 0
    batch_per_sweep: Tuple[Tuple[str, int], ...] = ()
    shards_per_sweep: Tuple[Tuple[str, int], ...] = ()


class ResultCache:
    """A directory of content-addressed sweep-point results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        # str(path) -> ((mtime_ns, size), fold): index reads of an
        # unchanged journal cost one stat (invalidated explicitly by
        # every write path as well, belt and braces).
        self._fold_memo: Dict[str, Tuple[Tuple[int, int], _Fold]] = {}
        # sweep -> whether the flat legacy layer may hold entries; None
        # until first probed.  Lets the hot put/get paths skip flat-file
        # checks entirely for born-sharded sweeps.
        self._flat_possible: Dict[str, bool] = {}

    def path_for(self, sweep: str, key: str) -> Path:
        """Canonical (sharded) entry location for ``key`` in ``sweep``."""
        return self.root / sweep / shard_prefix(key) / f"{key}.json"

    def flat_path_for(self, sweep: str, key: str) -> Path:
        """The pre-sharding flat location, still honoured by reads."""
        return self.root / sweep / f"{key}.json"

    def manifest_path(self, sweep: str) -> Path:
        """The sweep's *legacy* (flat-layout) journal file."""
        return self.root / sweep / _MANIFEST

    def shard_manifest_path(self, sweep: str, prefix: str) -> Path:
        """The journal of one shard directory."""
        return self.root / sweep / prefix / _MANIFEST

    # -- layer probing ---------------------------------------------------

    def _has_flat_layer(self, sweep: str) -> bool:
        """Whether the sweep may hold flat-layout entries (memoized).

        True when the legacy manifest exists or any flat ``*.json``
        does.  A ``False`` verdict is sticky for this handle's lifetime
        — new writes are always sharded, so the flat layer only ever
        shrinks (``migrate``/``clear`` reset it explicitly).
        """
        cached = self._flat_possible.get(sweep)
        if cached is not None:
            return cached
        target = self.root / sweep
        present = False
        try:
            if self.manifest_path(sweep).exists():
                present = True
            else:
                present = any(
                    child.suffix == ".json"
                    for child in target.iterdir()
                )
        except OSError:
            present = False
        self._flat_possible[sweep] = present
        return present

    def _shard_dirs(self, sweep: str) -> List[Path]:
        """The sweep's shard directories (two-character children)."""
        target = self.root / sweep
        try:
            return sorted(
                child for child in target.iterdir()
                if len(child.name) == 2 and child.is_dir()
            )
        except OSError:
            return []

    # -- entries --------------------------------------------------------

    def get(self, sweep: str, key: str) -> Tuple[Any, bool]:
        """Look up ``key``; returns ``(value, hit)``.

        Reads the sharded location first, then the legacy flat one.  A
        malformed entry (truncated write, manual tampering, format
        drift) is deleted and reported as a miss — never an exception.
        """
        prefix = shard_prefix(key)
        path = self.root / sweep / prefix / f"{key}.json"
        flat = False
        try:
            text = path.read_text()
        except FileNotFoundError:
            if not self._has_flat_layer(sweep):
                return None, False
            path = self.root / sweep / f"{key}.json"
            flat = True
            try:
                text = path.read_text()
            except FileNotFoundError:
                return None, False
            except OSError:
                return self._heal_entry(sweep, key, path, flat)
        except OSError:
            return self._heal_entry(sweep, key, path, flat)
        try:
            entry = json.loads(text)
            if entry["format"] != _FORMAT or entry["key"] != key:
                raise ValueError("stale or mismatched cache entry")
            return entry["result"], True
        except (ValueError, KeyError, TypeError):
            return self._heal_entry(sweep, key, path, flat)

    def _heal_entry(
        self, sweep: str, key: str, path: Path, flat: bool
    ) -> Tuple[Any, bool]:
        """Delete a bad entry and journal the del in its own layer."""
        try:
            path.unlink(missing_ok=True)
            # Record the heal — but never *create* a manifest out of a
            # lone del record: an index-less directory must keep looking
            # index-less so the next read rebuilds it in full.
            manifest = (
                self.manifest_path(sweep)
                if flat
                else self.shard_manifest_path(sweep, shard_prefix(key))
            )
            if manifest.exists():
                self._append_lines(
                    manifest,
                    json.dumps({"op": "del", "key": key},
                               separators=(",", ":")) + "\n",
                )
        except OSError:
            pass  # e.g. a read-only shared cache: miss, don't crash
        return None, False

    def _entry_blob(
        self, sweep: str, key: str, params: Mapping[str, Any], value: Any,
        batch: bool,
    ) -> bytes:
        record: Dict[str, Any] = {
            "format": _FORMAT,
            "key": key,
            "sweep": sweep,
            "params": dict(params),
            "created": time.time(),
            "result": value,
        }
        if batch:
            record["batch"] = True
        return json.dumps(record, indent=None).encode("utf-8")

    def _write_entry(self, path: Path, data: bytes) -> None:
        """Atomic entry write: temp file in the target dir + rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    def _retire_flat_duplicate(self, sweep: str, key: str) -> None:
        """Drop a flat-layout copy superseded by a sharded write.

        The shard layer wins every merged fold, so the flat file is
        dead weight; a ``del`` record keeps the legacy journal's fold
        truthful without a rebuild.
        """
        if not self._has_flat_layer(sweep):
            return
        flat = self.root / sweep / f"{key}.json"
        try:
            flat.unlink()
        except OSError:
            return  # absent (the common case) or unwritable
        try:
            manifest = self.manifest_path(sweep)
            if manifest.exists():
                self._append_lines(
                    manifest,
                    json.dumps({"op": "del", "key": key},
                               separators=(",", ":")) + "\n",
                )
        except OSError:
            pass

    def put(
        self,
        sweep: str,
        key: str,
        params: Mapping[str, Any],
        value: Any,
        batch: bool = False,
    ) -> None:
        """Store ``value`` atomically; raises ``TypeError`` if not JSON-able.

        ``batch`` marks the value as computed by the vectorized batch
        path (:mod:`repro.engine.batch` via a sweep's ``batch_fn``): the
        entry payload and its manifest ``put`` record gain a ``"batch":
        true`` stamp so ``cache info`` can report batch-vs-scalar
        provenance.  The stamp is pure provenance — the key, lookup, and
        the ``result`` payload are identical either way, so batch and
        scalar runs stay interchangeable cache-wise.  (Like the manifest
        itself the stamp is advisory: :meth:`rebuild_manifest` re-derives
        the index from entry *stats* without opening files, so a rebuilt
        journal reports every entry as scalar.)
        """
        data = self._entry_blob(sweep, key, params, value, batch)
        prefix = shard_prefix(key)
        path = self.root / sweep / prefix / f"{key}.json"
        self._write_entry(path, data)
        self._retire_flat_duplicate(sweep, key)
        try:
            if self._index_preexisting_shard(sweep, prefix, key):
                return
            put_record: Dict[str, Any] = {
                "op": "put", "key": key, "bytes": len(data),
                "created": time.time(),
            }
            if batch:
                put_record["batch"] = True
            self._append_manifest(sweep, put_record, prefix)
        except OSError:
            pass  # entry files are the ground truth; the index can wait

    def put_many(
        self,
        sweep: str,
        entries: Iterable[Tuple[str, Mapping[str, Any], Any]],
        batch: bool = False,
    ) -> int:
        """Store ``(key, params, value)`` triples with bulk index I/O.

        Every entry file is still written atomically on its own, but
        the journal cost collapses: the put records are grouped by
        shard and each touched shard manifest receives **one**
        ``O_APPEND`` write followed by **one** ``fsync`` — a resolved
        256-point batch costs a handful of syncs, not 256.  Returns the
        number of entries stored.
        """
        by_shard: Dict[str, List[str]] = {}
        pending: Dict[str, set] = {}
        stored = 0
        for key, params, value in entries:
            data = self._entry_blob(sweep, key, params, value, batch)
            prefix = shard_prefix(key)
            path = self.root / sweep / prefix / f"{key}.json"
            self._write_entry(path, data)
            self._retire_flat_duplicate(sweep, key)
            record: Dict[str, Any] = {
                "op": "put", "key": key, "bytes": len(data),
                "created": time.time(),
            }
            if batch:
                record["batch"] = True
            mine = pending.setdefault(prefix, set())
            try:
                # A rebuild may index this entry from its file (without
                # the batch stamp); the queued record still appends and
                # wins under last-op-fold, so queue unconditionally.
                self._index_preexisting_shard(sweep, prefix, key, mine)
            except OSError:
                pass
            by_shard.setdefault(prefix, []).append(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
            mine.add(key)
            stored += 1
        for prefix, lines in by_shard.items():
            try:
                self._append_lines(
                    self.shard_manifest_path(sweep, prefix),
                    "".join(lines),
                    fsync=True,
                )
            except OSError:
                pass  # entry files are the ground truth
        return stored

    def get_many(self, sweep: str, keys: Iterable[str]) -> Dict[str, Any]:
        """Bulk lookup; returns ``{key: value}`` for the hits only.

        Misses (and healed-away corrupt entries) are simply absent, so
        callers resolve a whole resume wave with one call and compute
        the complement.
        """
        hits: Dict[str, Any] = {}
        for key in keys:
            value, hit = self.get(sweep, key)
            if hit:
                hits[key] = value
        return hits

    def _index_preexisting_shard(
        self, sweep: str, prefix: str, key: str, ignore: Container[str] = ()
    ) -> bool:
        """Heal an index-less shard that already holds *other* entries.

        First write into a shard directory whose manifest vanished (or
        a crashed migration's half-moved shard): rebuild the shard's
        journal from its files — which indexes the entry just written
        too, so the caller must skip its own append.  Returns True when
        that happened.  ``put_many`` passes the keys it has already
        written this call as ``ignore`` — its own not-yet-journaled
        entries must not masquerade as a pre-existing index-less shard.
        """
        if self.shard_manifest_path(sweep, prefix).exists():
            return False
        shard_dir = self.root / sweep / prefix
        if any(
            p.suffix == ".json"
            and p.name != f"{key}.json"
            and p.stem not in ignore
            for p in shard_dir.iterdir()
        ):
            self._rebuild_shard(sweep, prefix)
            return True
        return False

    # -- manifest -------------------------------------------------------

    def _append_lines(
        self, path: Path, lines: str, fsync: bool = False
    ) -> None:
        """Append journal text with a single atomic ``O_APPEND`` write."""
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, lines.encode())
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        self._fold_memo.pop(str(path), None)

    def _append_manifest(
        self, sweep: str, record: Mapping[str, Any], prefix: str | None = None
    ) -> None:
        """Append one journal record — to a shard's manifest when
        ``prefix`` is given, to the legacy flat manifest otherwise."""
        path = (
            self.shard_manifest_path(sweep, prefix)
            if prefix is not None
            else self.manifest_path(sweep)
        )
        self._append_lines(
            path, json.dumps(record, separators=(",", ":")) + "\n"
        )

    def _fold_file(self, path: Path) -> _Fold | None:
        """Memoized fold of one journal file.

        ``None`` when the file is missing or torn.  The memo key is the
        ``(mtime_ns, size)`` snapshot — the ``code_version()`` trick —
        so an unchanged journal re-folds for the price of a ``stat``;
        every in-process write additionally drops the memo outright.
        """
        spath = str(path)
        try:
            st = os.stat(path)
        except OSError:
            self._fold_memo.pop(spath, None)
            return None
        sig = (st.st_mtime_ns, st.st_size)
        memo = self._fold_memo.get(spath)
        if memo is not None and memo[0] == sig:
            return memo[1]
        try:
            text = path.read_text()
        except OSError:
            return None
        fold = _fold_lines(text)
        if fold is None:
            self._fold_memo.pop(spath, None)
        else:
            self._fold_memo[spath] = (sig, fold)
        return fold

    def _fold_layer(
        self, sweep: str, prefix: str | None, heal: bool, compact: bool
    ) -> _Fold:
        """One layer's fold — legacy flat (``prefix=None``) or a shard.

        A missing/torn journal is rebuilt from that layer's entry files
        when ``heal``; ``compact`` additionally folds away journals
        dominated by dead history.  Always returns a (possibly empty)
        fold — on a read-only store the derived index is served without
        being persisted.
        """
        path = (
            self.shard_manifest_path(sweep, prefix)
            if prefix is not None
            else self.manifest_path(sweep)
        )
        fold = self._fold_file(path)
        if fold is None:
            if not heal:
                return {}, {}, 0, set()
            if prefix is not None:
                live = self._rebuild_shard(sweep, prefix)
            else:
                live = self._rebuild_flat(sweep)
            fold = self._fold_file(path)
            if fold is None:
                # Could not persist (read-only store): serve the
                # derived index; quarantine lines, if any, are gone
                # with the unreadable journal.
                return live, {}, len(live), set()
            return fold
        if compact and self._wants_compaction(fold):
            self._compact_layer(sweep, prefix)
            return self._fold_file(path) or fold
        return fold

    def _folded_sweep(
        self, sweep: str, heal: bool = True, compact: bool = False
    ) -> _Fold:
        """The sweep's merged index: legacy fold under the shard folds.

        The shard layer wins per key (a sharded rewrite retires the
        flat copy), quarantines lose to a live entry in any layer, and
        ``records`` sums every journal line so callers can see dead
        weight.  Cost is O(shards-touched): one directory listing plus
        one (memoized) fold per journal present.
        """
        target = self.root / sweep
        if not target.is_dir():
            return {}, {}, 0, set()
        live: Dict[str, int] = {}
        quar: Dict[str, dict] = {}
        batch_keys: Set[str] = set()
        records = 0
        if self._has_flat_layer(sweep):
            flive, fquar, frecords, fbatch = self._fold_layer(
                sweep, None, heal, compact
            )
            live.update(flive)
            quar.update(fquar)
            batch_keys |= fbatch
            records += frecords
        for shard in self._shard_dirs(sweep):
            slive, squar, srecords, sbatch = self._fold_layer(
                sweep, shard.name, heal, compact
            )
            for key in slive:
                batch_keys.discard(key)  # the shard layer's verdict wins
            live.update(slive)
            quar.update(squar)
            batch_keys |= sbatch
            records += srecords
        for key in live:
            quar.pop(key, None)  # a live entry outranks any quarantine
        return live, quar, records, batch_keys

    def _rebuild_flat(self, sweep: str) -> Dict[str, int]:
        """Re-derive the legacy flat journal from the flat entry files.

        Keys are the entry filenames and sizes come from ``stat``, so
        no entry is opened.  Quarantine records exist *only* in the
        journal, so every parsable quarantine line of the old (possibly
        torn) manifest is salvaged — a single corrupt line must not
        amnesty a known-permanent failure.  The new manifest is written
        atomically; on a read-only cache the derived index is returned
        without being persisted.
        """
        target = self.root / sweep
        live: Dict[str, int] = {}
        if not target.is_dir():
            return live
        for path in target.glob("*.json"):
            try:
                live[path.stem] = path.stat().st_size
            except OSError:
                continue  # vanished mid-scan
        self._write_rebuilt(
            self.manifest_path(sweep), target, live
        )
        self._flat_possible.pop(sweep, None)
        return live

    def _rebuild_shard(self, sweep: str, prefix: str) -> Dict[str, int]:
        """Re-derive one shard's journal from its entry files."""
        target = self.root / sweep / prefix
        live: Dict[str, int] = {}
        if not target.is_dir():
            return live
        for path in target.glob("*.json"):
            try:
                live[path.stem] = path.stat().st_size
            except OSError:
                continue  # vanished mid-scan
        self._write_rebuilt(
            self.shard_manifest_path(sweep, prefix), target, live
        )
        return live

    def _write_rebuilt(
        self, manifest: Path, target: Path, live: Dict[str, int]
    ) -> None:
        """Atomically persist a rebuilt journal, salvaging quarantines."""
        quar: Dict[str, dict] = {}
        try:
            old = manifest.read_text()
        except OSError:
            old = ""
        for line in old.splitlines():
            try:
                record = json.loads(line)
                op, key = record["op"], record["key"]
            except (ValueError, KeyError, TypeError):
                continue  # salvage what parses, skip the torn line
            if op == "quarantine":
                quar[key] = record
            elif op == "put":
                quar.pop(key, None)
        for key in live:
            quar.pop(key, None)  # an entry file on disk outranks it
        lines = _fold_records((live, quar, 0, set()))
        try:
            fd, tmp = tempfile.mkstemp(dir=target, suffix=".tmp")
        except OSError:
            return  # e.g. a read-only shared cache
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(lines)
            os.replace(tmp, manifest)
        except OSError:
            Path(tmp).unlink(missing_ok=True)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self._fold_memo.pop(str(manifest), None)

    def rebuild_manifest(self, sweep: str) -> Dict[str, int]:
        """Re-derive every journal of ``sweep`` from its entry files.

        The self-healing path, now per layer: the legacy flat journal is
        rebuilt whenever the flat layer exists, and each shard journal
        from its own directory.  Returns the merged live index.  A
        concurrent append racing a rebuild loses at most its own
        record, which the next ``put`` of that key — or the next
        rebuild — restores.
        """
        target = self.root / sweep
        if not target.is_dir():
            return {}
        live: Dict[str, int] = {}
        if self._has_flat_layer(sweep) or self.manifest_path(sweep).exists():
            live.update(self._rebuild_flat(sweep))
        elif not self._shard_dirs(sweep):
            # Entry-less, shard-less directory: persist an (empty)
            # index so the heal is visible, matching the flat era.
            live.update(self._rebuild_flat(sweep))
        for shard in self._shard_dirs(sweep):
            live.update(self._rebuild_shard(sweep, shard.name))
        return live

    def manifest(self, sweep: str) -> Dict[str, int]:
        """The sweep's live index, ``{key: bytes}`` (healed if needed).

        Opportunistically compacts any journal whose dead history
        (puts overwritten, ``del`` records, cleared quarantines)
        outnumbers its live entries, so a churned sweep's index read
        stays O(shards-touched) no matter how long its history grew.
        """
        live, _, _, _ = self._folded_sweep(sweep, heal=True, compact=True)
        return live

    @staticmethod
    def _wants_compaction(fold: _Fold) -> bool:
        """Whether a folded journal is worth rewriting: more dead
        records than live ones, with a small floor so tiny journals
        never churn."""
        live, quar, records, _ = fold
        dead = records - len(live) - len(quar)
        return dead > max(len(live) + len(quar), 4)

    def _compact_layer(self, sweep: str, prefix: str | None) -> int:
        """Rewrite one journal down to its fold; returns dead records
        dropped.  Crash-safe: temp file + atomic rename, so a crash at
        any instant leaves either the full history or the complete fold
        — never a torn hybrid.  Best-effort on read-only caches."""
        path = (
            self.shard_manifest_path(sweep, prefix)
            if prefix is not None
            else self.manifest_path(sweep)
        )
        fold = self._fold_file(path)
        if fold is None:
            return 0
        live, quar, records, _ = fold
        dead = records - len(live) - len(quar)
        if dead <= 0:
            return 0
        target = path.parent
        try:
            fd, tmp = tempfile.mkstemp(dir=target, suffix=".tmp")
        except OSError:
            return 0  # e.g. a read-only shared cache
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_fold_records(fold))
            os.replace(tmp, path)
        except OSError:
            Path(tmp).unlink(missing_ok=True)
            return 0
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self._fold_memo.pop(str(path), None)
        return dead

    def compact(self, sweep: str) -> int:
        """Fold dead history away, journal by journal; returns the
        total number of dead records dropped.

        Each layer (the legacy flat journal and every shard journal)
        is rewritten independently and atomically, so a crash
        mid-compaction affects at most the one journal being renamed —
        and that one is either fully old or fully folded (the
        torn-compaction recovery guarantee).  Missing or torn journals
        are healed through :meth:`rebuild_manifest` instead (already
        minimal).
        """
        target = self.root / sweep
        if not target.is_dir():
            return 0
        dead = 0
        rebuilt = False
        if self._has_flat_layer(sweep):
            if self._fold_file(self.manifest_path(sweep)) is None:
                self._rebuild_flat(sweep)
                rebuilt = True
            else:
                dead += self._compact_layer(sweep, None)
        for shard in self._shard_dirs(sweep):
            if self._fold_file(
                self.shard_manifest_path(sweep, shard.name)
            ) is None:
                self._rebuild_shard(sweep, shard.name)
                rebuilt = True
            else:
                dead += self._compact_layer(sweep, shard.name)
        del rebuilt  # rebuilds count no dead records, matching the flat era
        return dead

    # -- migration ------------------------------------------------------

    def migrate(self, sweep: str | None = None) -> Dict[str, int]:
        """Move legacy flat sweeps into the sharded layout.

        For each sweep (or just ``sweep``): every flat entry file is
        renamed into its shard (atomic ``os.replace``), its journal
        record — including the batch-provenance stamp — is re-homed to
        the shard manifest, quarantine records follow their key's
        shard, and the legacy manifest is removed once empty of
        meaning.  Returns ``{sweep: entries-moved}`` (quarantine-only
        re-homes count 0 but still retire the journal).

        Crash-safe by the same advisory-index argument as everything
        else: entry files move one atomic rename at a time, reads
        consult both layouts, and re-running the migration finishes
        whatever a crash left behind.  A sweep with no flat layer is a
        no-op.
        """
        if sweep is None:
            moved: Dict[str, int] = {}
            if not self.root.is_dir():
                return moved
            for child in sorted(self.root.iterdir()):
                if child.is_dir():
                    result = self.migrate(child.name)
                    moved.update(result)
            return moved

        target = self.root / sweep
        if not target.is_dir() or not self._has_flat_layer(sweep):
            return {}
        # Heal first so the fold below is complete (pre-manifest legacy
        # directories, torn journals).
        if self._fold_file(self.manifest_path(sweep)) is None:
            self._rebuild_flat(sweep)
        flive, fquar, _, fbatch = self._fold_layer(
            sweep, None, heal=True, compact=False
        )
        by_shard: Dict[str, List[str]] = {}
        count = 0
        for path in sorted(target.glob("*.json")):
            key = path.stem
            prefix = shard_prefix(key)
            dest = target / prefix / f"{key}.json"
            try:
                if dest.exists():
                    # A sharded rewrite already superseded this copy.
                    path.unlink(missing_ok=True)
                    continue
                dest.parent.mkdir(parents=True, exist_ok=True)
                try:
                    size = path.stat().st_size
                except OSError:
                    continue  # vanished mid-walk
                os.replace(path, dest)
            except OSError:
                continue  # unwritable: leave it readable where it is
            record: Dict[str, Any] = {
                "op": "put", "key": key,
                "bytes": flive.get(key, size),
            }
            if key in fbatch:
                record["batch"] = True
            by_shard.setdefault(prefix, []).append(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
            count += 1
        for key, record in sorted(fquar.items()):
            prefix = shard_prefix(key)
            shard_live = self._fold_layer(
                sweep, prefix, heal=True, compact=False
            )[0]
            if key in shard_live:
                continue  # a sharded success already cleared it
            by_shard.setdefault(prefix, []).append(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
        for prefix, lines in by_shard.items():
            try:
                shard_dir = target / prefix
                shard_dir.mkdir(parents=True, exist_ok=True)
                self._append_lines(
                    self.shard_manifest_path(sweep, prefix),
                    "".join(lines),
                    fsync=True,
                )
            except OSError:
                pass  # entry files are already in place — index heals later
        try:
            self.manifest_path(sweep).unlink(missing_ok=True)
        except OSError:
            pass
        self._fold_memo.pop(str(self.manifest_path(sweep)), None)
        self._flat_possible.pop(sweep, None)
        return {sweep: count}

    # -- quarantine -----------------------------------------------------

    def quarantine(
        self, sweep: str, key: str, params: Mapping[str, Any], error: str
    ) -> None:
        """Journal ``key`` as a known-permanent failure.

        Written by the runner when a point exhausts its retry budget
        under ``on_error="keep"``: resumes then skip the point instead
        of re-failing it (``--retry-quarantined`` opts back in), and
        ``cache info`` surfaces the count.  The record lives in the
        key's *shard* manifest, so it follows the entry through every
        per-shard operation.  Best-effort like every index write — a
        read-only cache loses the record, never the run.
        """
        prefix = shard_prefix(key)
        shard_dir = self.root / sweep / prefix
        try:
            shard_dir.mkdir(parents=True, exist_ok=True)
            if not self.shard_manifest_path(sweep, prefix).exists() and any(
                p.suffix == ".json" for p in shard_dir.iterdir()
            ):
                # Index-less shard (crashed migration): index the
                # entries first so the new journal is a complete fold.
                self._rebuild_shard(sweep, prefix)
            self._append_manifest(
                sweep,
                {"op": "quarantine", "key": key, "params": dict(params),
                 "error": str(error), "created": time.time()},
                prefix,
            )
        except OSError:
            pass

    def quarantined(self, sweep: str) -> Dict[str, dict]:
        """The sweep's known-permanent failures, ``{key: record}``.

        Each record carries the offending ``params`` and the final
        ``error`` string.  Keys with a live entry (a later successful
        put) are never listed — in any layer.
        """
        _, quar, _, _ = self._folded_sweep(sweep, heal=True, compact=True)
        return quar

    def manifest_keys(self, sweep: str) -> Set[str]:
        """Keys the index lists for ``sweep`` — the resume fast path.

        One (memoized) journal fold per shard touched, O(1) in the
        number of *other* sweeps' entries and independent of entry
        sizes.  Listings are advisory: callers must still :meth:`get`
        (which validates) before trusting one.
        """
        return set(self.manifest(sweep))

    # -- aggregate views ------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """All entry files currently on disk, sharded and flat.

        A snapshot, not a lock: a concurrent sweep or :meth:`clear` may
        remove a listed file before the caller touches it, so consumers
        must tolerate vanished paths.  (:meth:`stats` no longer walks
        this — it folds the manifests — but :meth:`clear` and the
        rebuild path still ground-truth against the files.)
        """
        if not self.root.is_dir():
            return iter(())
        return (
            path
            for pattern in ("*/*.json", "*/*/*.json")
            for path in self.root.glob(pattern)
        )

    def stats(self) -> CacheStats:
        """Entry count, total size, and the sweep namespaces present.

        Reads one journal per layer present — never the entry files
        themselves — so ``cache info`` costs O(shards), not
        O(entries); with warm fold memos it is O(shards) ``stat``
        calls.  Layers without a readable journal (legacy caches, torn
        journals, half-migrated shards) are healed on the way through.
        """
        count = 0
        size = 0
        bad = 0
        batch_total = 0
        sweeps = []
        per_sweep = []
        batch_per_sweep = []
        shards_per_sweep = []
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if not child.is_dir():
                    continue
                live, quar, _, batch_keys = self._folded_sweep(
                    child.name, heal=True, compact=True
                )
                if not live and not quar:
                    continue
                batch_live = sum(1 for key in batch_keys if key in live)
                count += len(live)
                size += sum(live.values())
                bad += len(quar)
                batch_total += batch_live
                sweeps.append(child.name)
                per_sweep.append((child.name, len(live), len(quar)))
                if batch_live:
                    batch_per_sweep.append((child.name, batch_live))
                nshards = len(self._shard_dirs(child.name))
                if nshards:
                    shards_per_sweep.append((child.name, nshards))
        return CacheStats(
            entries=count,
            bytes=size,
            sweeps=tuple(sweeps),
            quarantined=bad,
            per_sweep=tuple(per_sweep),
            batch_entries=batch_total,
            batch_per_sweep=tuple(batch_per_sweep),
            shards_per_sweep=tuple(shards_per_sweep),
        )

    def clear(self, sweep: str | None = None) -> int:
        """Delete all entries (or one sweep's); returns the count removed.

        Counting ground-truths against the entry files (not the index):
        ``clear`` is the maintenance path, and the manifests die with
        their directories anyway.
        """
        self._fold_memo.clear()
        self._flat_possible.clear()
        if sweep is not None:
            target = self.root / sweep
            removed = (
                len(list(target.rglob("*.json"))) if target.is_dir() else 0
            )
            shutil.rmtree(target, ignore_errors=True)
            return removed
        removed = len(list(self.entries()))
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
        return removed


def cached_call(
    tag: str,
    fn,
    *args: Any,
    cache: ResultCache | None = None,
    code: str | None = None,
    **kwargs: Any,
):
    """Memoize ``fn(*args, **kwargs)`` in the sweep cache.

    Used by the benchmark harness (so repeated ``pytest benchmarks/``
    runs are warm) and by point functions that share expensive
    sub-results across points and processes, e.g. the robustness
    sweep's stationary baselines.  Results that are not JSON-serialisable
    (e.g. trace objects) are computed normally and simply not cached.

    When no explicit ``cache`` is given the store lives at
    :func:`default_cache_dir` (``$REPRO_CACHE_DIR``), and setting
    ``$REPRO_CACHE_DISABLE`` (to anything but ``0``/``false``/``no``)
    bypasses the store — the CLI exports both for the duration of a
    ``sweep`` invocation, so ``--cache-dir``/``--no-cache`` also
    govern the ``cached_call`` lookups made inside worker processes.
    An explicitly passed ``cache`` always wins over the kill switch.
    """
    if cache is None and _cache_disabled():
        return fn(*args, **kwargs)
    cache = cache or ResultCache()
    try:
        params = {"tag": tag, "args": list(args), "kwargs": kwargs}
        key = point_key("bench", params, code)
    except TypeError:
        return fn(*args, **kwargs)
    value, hit = cache.get("bench", key)
    if hit:
        return value
    value = fn(*args, **kwargs)
    try:
        cache.put("bench", key, params, value)
    except (TypeError, OSError):
        # Not JSON-able, or the store is unwritable (read-only shared
        # cache): degrade to compute-without-caching, never crash a
        # point function over its memo store.
        pass
    return value
