"""The declarative sweep runner.

A :class:`Sweep` is a named list of parameter *points* plus a pure
per-point function; a :class:`Campaign` is an ordered collection of
sweeps (one experiment module may expose several, e.g. the LU study).
:func:`run_sweep` fans the points out over a process pool, consults the
content-addressed result cache first, streams progress back through a
callback, and hands the ordered point results to the sweep's
``aggregate`` hook to build the experiment's published rows.

Design rules the experiment modules follow:

* **points are data** — JSON-able mappings of scalars, so they hash
  stably (:mod:`repro.runner.hashing`) and cross process boundaries;
* **the point function is pure and top-level** — it rebuilds platform /
  workload objects from the point's parameters, returns JSON-able
  values, and is picklable by reference for the pool;
* **aggregation is deterministic in point order** — results are always
  delivered to ``aggregate`` in declaration order, so serial, parallel
  and cached runs produce byte-identical rows.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.hashing import code_version, point_key
from repro.runner.pool import parallel_map

__all__ = [
    "Campaign",
    "CampaignResult",
    "PointOutcome",
    "Progress",
    "Sweep",
    "SweepResult",
    "run_campaign",
    "run_sweep",
    "stamp_points",
]


def stamp_points(
    points: Sequence[Mapping[str, Any]], **common: Any
) -> Tuple[Mapping[str, Any], ...]:
    """Stamp shared knob values into every point of a sweep.

    The uniform way experiment declarations thread cross-cutting knobs
    (currently the simulation ``engine``) into their points: the knob
    lands in each point mapping, so it reaches the pure per-point
    function, participates in the cache key, and crosses process
    boundaries like any other parameter.  ``None`` values are skipped
    (knob not applicable / leave the per-point default).

    Stamping deliberately splits the cache namespace per knob value —
    even for sweeps where a knob is inert — so cache entries always
    record exactly the parameters the point ran with.
    """
    common = {k: v for k, v in common.items() if v is not None}
    if not common:
        return tuple(points)
    return tuple({**p, **common} for p in points)


PointFn = Callable[[Mapping[str, Any]], Any]
AggregateFn = Callable[[List[Any]], Any]


def _normalize(value: Any) -> Any:
    """JSON-round-trip a computed value so it matches its cached shape.

    Cached points come back from disk JSON-decoded (tuples as lists,
    non-string dict keys as strings); normalizing fresh results the
    same way keeps cold, warm, and partially-warm runs byte-identical.
    Values outside JSON (only possible in cache-less library use) pass
    through untouched.
    """
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return value


def _concat(values: List[Any]) -> Any:
    """Default aggregation: concatenate list results, else keep the list."""
    if values and all(isinstance(v, list) for v in values):
        rows: List[Any] = []
        for v in values:
            rows.extend(v)
        return rows
    return list(values)


@dataclass(frozen=True)
class Sweep:
    """A named set of points evaluated by one pure function.

    Attributes:
        name: cache namespace and progress label (e.g. ``"fig10"``).
        run_fn: top-level pure function mapping one point's parameters
            to a JSON-able result.
        points: the parameter mappings, in publication order.
        aggregate: combines the ordered point results into the
            experiment's rows; defaults to list concatenation.
        title: heading used when the CLI prints the aggregated table.
    """

    name: str
    run_fn: PointFn
    points: Tuple[Mapping[str, Any], ...]
    aggregate: Optional[AggregateFn] = None
    title: Optional[str] = None

    def rows(self, values: List[Any]) -> Any:
        """Aggregated rows for point results ``values`` (in order)."""
        return (self.aggregate or _concat)(values)


@dataclass(frozen=True)
class Campaign:
    """An ordered collection of sweeps run and reported together."""

    name: str
    sweeps: Tuple[Sweep, ...]


@dataclass(frozen=True)
class Progress:
    """One progress event, emitted as each point resolves (in order)."""

    sweep: str
    index: int
    total: int
    params: Mapping[str, Any]
    cached: bool
    seconds: float


@dataclass(frozen=True)
class PointOutcome:
    """A resolved point: parameters, cache key (empty string when run
    without a cache), value, provenance."""

    params: Mapping[str, Any]
    key: str
    value: Any
    cached: bool
    seconds: float


@dataclass
class SweepResult:
    """Everything :func:`run_sweep` learned about one sweep."""

    name: str
    outcomes: List[PointOutcome] = field(default_factory=list)
    rows: Any = None
    elapsed: float = 0.0
    title: Optional[str] = None

    @property
    def hits(self) -> int:
        """Points served from the cache."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def misses(self) -> int:
        """Points actually computed this run."""
        return len(self.outcomes) - self.hits


@dataclass
class CampaignResult:
    """Ordered sweep results plus campaign-level totals."""

    name: str
    sweeps: List[SweepResult] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.sweeps)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.sweeps)

    @property
    def elapsed(self) -> float:
        return sum(s.elapsed for s in self.sweeps)

    @property
    def tables(self) -> dict:
        """Sweep name → aggregated rows."""
        return {s.name: s.rows for s in self.sweeps}


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[Progress], None] | None = None,
    code: str | None = None,
) -> SweepResult:
    """Evaluate every point of ``sweep``, cheapest source first.

    Args:
        sweep: the declaration to run.
        jobs: worker processes for the cache-miss points (1 = inline).
        cache: result cache, or ``None`` to recompute everything and
            write nothing (the default — library callers like the
            experiments' ``run()`` helpers stay side-effect free).
        progress: callback fired once per point, in point order.
        code: code-version override for the cache keys (tests only).

    Point results reach ``sweep.aggregate`` in declaration order no
    matter which points were cached or how many processes ran, so the
    aggregated rows are identical across all execution modes.
    """
    start = time.perf_counter()
    total = len(sweep.points)
    if cache and code is None:
        # Resolve the code version once per sweep: one cheap re-stat of
        # the package sources, and every point of the sweep is keyed
        # against the same snapshot.
        code = code_version()
    keys = [point_key(sweep.name, p, code) for p in sweep.points] if cache else []
    resolved: List[Optional[PointOutcome]] = [None] * total

    missing: List[int] = []
    for idx, params in enumerate(sweep.points):
        if cache:
            value, hit = cache.get(sweep.name, keys[idx])
            if hit:
                resolved[idx] = PointOutcome(params, keys[idx], value, True, 0.0)
                continue
        missing.append(idx)

    miss_points = [sweep.points[i] for i in missing]
    for slot, (value, seconds) in zip(
        missing, parallel_map(sweep.run_fn, miss_points, jobs)
    ):
        value = _normalize(value)
        key = keys[slot] if cache else ""
        if cache:
            cache.put(sweep.name, key, sweep.points[slot], value)
        resolved[slot] = PointOutcome(sweep.points[slot], key, value, False, seconds)

    result = SweepResult(name=sweep.name, title=sweep.title)
    for idx, outcome in enumerate(resolved):
        assert outcome is not None  # every slot is either cached or computed
        result.outcomes.append(outcome)
        if progress:
            progress(
                Progress(
                    sweep=sweep.name,
                    index=idx,
                    total=total,
                    params=outcome.params,
                    cached=outcome.cached,
                    seconds=outcome.seconds,
                )
            )
    result.rows = sweep.rows([o.value for o in result.outcomes])
    result.elapsed = time.perf_counter() - start
    return result


def run_campaign(
    campaign: Campaign,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[Progress], None] | None = None,
    code: str | None = None,
) -> CampaignResult:
    """Run every sweep of ``campaign`` in order; see :func:`run_sweep`."""
    result = CampaignResult(name=campaign.name)
    for sweep in campaign.sweeps:
        result.sweeps.append(run_sweep(sweep, jobs, cache, progress, code))
    return result
