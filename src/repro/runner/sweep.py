"""The declarative sweep runner.

A :class:`Sweep` is a named list of parameter *points* plus a pure
per-point function; a :class:`Campaign` is an ordered collection of
sweeps (one experiment module may expose several, e.g. the LU study).
:func:`run_sweep` consults the content-addressed result cache first,
fans the remaining points out over an execution backend
(:mod:`repro.runner.backends` — inline, fresh process pool, or warm
persistent workers), streams ordered progress back through a callback
as each point resolves, and hands the ordered point results to the
sweep's ``aggregate`` hook to build the experiment's published rows.

Design rules the experiment modules follow:

* **points are data** — JSON-able mappings of scalars, so they hash
  stably (:mod:`repro.runner.hashing`) and cross process boundaries;
* **the point function is pure and top-level** — it rebuilds platform /
  workload objects from the point's parameters, returns JSON-able
  values, and is importable by reference for the pooled backends;
* **aggregation is deterministic in point order** — results are always
  delivered to ``aggregate`` in declaration order, so serial, pooled
  and cached runs produce byte-identical rows.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from repro.runner.backends import ExecutionBackend, resolve_backend
from repro.runner.cache import ResultCache
from repro.runner.hashing import code_version, point_key

__all__ = [
    "Campaign",
    "CampaignResult",
    "FAILED",
    "PointOutcome",
    "Progress",
    "Sweep",
    "SweepPointError",
    "SweepResult",
    "run_campaign",
    "run_sweep",
    "stamp_points",
]


def stamp_points(
    points: Sequence[Mapping[str, Any]], **common: Any
) -> Tuple[Mapping[str, Any], ...]:
    """Stamp shared knob values into every point of a sweep.

    The uniform way experiment declarations thread cross-cutting knobs
    (the simulation ``engine``, the execution ``backend``) into their
    points: the knob lands in each point mapping, so it reaches the pure
    per-point function, participates in the cache key, and crosses
    process boundaries like any other parameter.  ``None`` values are
    skipped (knob not applicable / leave the per-point default).

    Stamping deliberately splits the cache namespace per knob value —
    even for sweeps where a knob is inert — so cache entries always
    record exactly the parameters the point ran with.  (That is what
    makes the CI backend matrix meaningful: each backend computes its
    own entries, and the rows can be compared for byte-identity instead
    of the later backends trivially replaying the first one's cache.)
    """
    common = {k: v for k, v in common.items() if v is not None}
    if not common:
        return tuple(points)
    return tuple({**p, **common} for p in points)


PointFn = Callable[[Mapping[str, Any]], Any]
AggregateFn = Callable[[List[Any]], Any]


class SweepPointError(RuntimeError):
    """A sweep point raised and the ``on_error="raise"`` policy is active.

    Carries the failing sweep/params and the worker's formatted
    traceback; the original exception object is chained (``__cause__``)
    when the point ran in-process.
    """

    def __init__(self, sweep: str, params: Mapping[str, Any], error: str):
        self.sweep = sweep
        self.params = dict(params)
        self.error = error
        super().__init__(
            f"point {self.params!r} of sweep {sweep!r} failed:\n{error}"
        )


def _normalize(value: Any) -> Any:
    """JSON-round-trip a computed value so it matches its cached shape.

    Cached points come back from disk JSON-decoded (tuples as lists,
    non-string dict keys as strings); normalizing fresh results the
    same way keeps cold, warm, and partially-warm runs byte-identical.
    Values outside JSON (only possible in cache-less library use) pass
    through untouched.
    """
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return value


#: Placeholder for a failed point's slot in the values an aggregate
#: sees under ``on_error="keep"`` — a sentinel rather than ``None`` so
#: a point function that legitimately returns ``None`` is never
#: confused with a failure.
FAILED = object()


def _concat(values: List[Any]) -> Any:
    """Default aggregation: concatenate list results, else keep the list.

    :data:`FAILED` holes (failed points under ``on_error="keep"``) are
    dropped; successful rows — including legitimate ``None`` results —
    still publish.
    """
    values = [v for v in values if v is not FAILED]
    if values and all(isinstance(v, list) for v in values):
        rows: List[Any] = []
        for v in values:
            rows.extend(v)
        return rows
    return list(values)


@dataclass(frozen=True)
class Sweep:
    """A named set of points evaluated by one pure function.

    Attributes:
        name: cache namespace and progress label (e.g. ``"fig10"``).
        run_fn: top-level pure function mapping one point's parameters
            to a JSON-able result.
        points: the parameter mappings, in publication order.
        aggregate: combines the ordered point results into the
            experiment's rows; defaults to list concatenation.
        title: heading used when the CLI prints the aggregated table.
    """

    name: str
    run_fn: PointFn
    points: Tuple[Mapping[str, Any], ...]
    aggregate: Optional[AggregateFn] = None
    title: Optional[str] = None

    def rows(self, values: List[Any]) -> Any:
        """Aggregated rows for point results ``values`` (in order)."""
        return (self.aggregate or _concat)(values)


@dataclass(frozen=True)
class Campaign:
    """An ordered collection of sweeps run and reported together."""

    name: str
    sweeps: Tuple[Sweep, ...]


@dataclass(frozen=True)
class Progress:
    """One progress event, streamed as each point resolves (in order)."""

    sweep: str
    index: int
    total: int
    params: Mapping[str, Any]
    cached: bool
    seconds: float
    status: str = "ok"


@dataclass(frozen=True)
class PointOutcome:
    """A resolved point: parameters, cache key (empty string when run
    without a cache), value, provenance.

    ``status`` is ``"ok"`` or ``"error"``; errored points (only possible
    under ``on_error="keep"``) carry the worker traceback in ``error``,
    a ``None`` value, and are never written to the cache — a later
    ``--resume`` run re-computes exactly those.
    """

    params: Mapping[str, Any]
    key: str
    value: Any
    cached: bool
    seconds: float
    status: str = "ok"
    error: Optional[str] = None


@dataclass
class SweepResult:
    """Everything :func:`run_sweep` learned about one sweep."""

    name: str
    outcomes: List[PointOutcome] = field(default_factory=list)
    rows: Any = None
    elapsed: float = 0.0
    title: Optional[str] = None

    @property
    def hits(self) -> int:
        """Points served from the cache."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def errors(self) -> int:
        """Points that failed (kept under ``on_error="keep"``)."""
        return sum(1 for o in self.outcomes if o.status == "error")

    @property
    def misses(self) -> int:
        """Points actually computed this run (successfully or not)."""
        return len(self.outcomes) - self.hits


@dataclass
class CampaignResult:
    """Ordered sweep results plus campaign-level totals."""

    name: str
    sweeps: List[SweepResult] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.sweeps)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.sweeps)

    @property
    def errors(self) -> int:
        return sum(s.errors for s in self.sweeps)

    @property
    def elapsed(self) -> float:
        return sum(s.elapsed for s in self.sweeps)

    @property
    def tables(self) -> dict:
        """Sweep name → aggregated rows."""
        return {s.name: s.rows for s in self.sweeps}


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[Progress], None] | None = None,
    code: str | None = None,
    backend: ExecutionBackend | str | None = None,
    resume: bool = False,
    on_error: str = "raise",
) -> SweepResult:
    """Evaluate every point of ``sweep``, cheapest source first.

    Args:
        sweep: the declaration to run.
        jobs: worker processes for the cache-miss points (1 = inline).
        cache: result cache, or ``None`` to recompute everything and
            write nothing (the default — library callers like the
            experiments' ``run()`` helpers stay side-effect free).
        progress: callback streamed one event per point, in point
            order, as each point resolves (cached points immediately,
            computed points as the backend delivers them).
        code: code-version override for the cache keys (tests only).
        backend: execution backend — a registry name (``"serial"``,
            ``"process"``, ``"persistent"``), an already-constructed
            :class:`~repro.runner.backends.ExecutionBackend` (the
            campaign path: pass one instance to keep persistent workers
            warm across sweeps), or ``None``/``"auto"`` for the historic
            default (inline when ``jobs <= 1``, fresh pool otherwise).
        resume: consult the sweep's cache manifest (one O(1) index
            read) for which points already exist instead of probing
            every entry file; points missing from the index — the tail
            a killed run never wrote, or failed points, which are never
            cached — are recomputed, everything else is loaded.
            Requires ``cache``.
        on_error: ``"raise"`` (default) re-raises the first failing
            point as :class:`SweepPointError`; ``"keep"`` records the
            failure as a ``status="error"`` outcome and keeps the
            sweep running.  Aggregation then sees the failed points as
            :data:`FAILED` sentinel holes in their original positions
            (the default aggregation drops them; a custom aggregate
            that raises on the holes yields the successful values
            unaggregated).

    Point results reach ``sweep.aggregate`` in declaration order no
    matter which points were cached or which backend ran the rest, so
    the aggregated rows are identical across all execution modes.
    """
    if resume and cache is None:
        raise ValueError("resume=True requires a cache")
    if on_error not in ("raise", "keep"):
        raise ValueError(f"on_error must be 'raise' or 'keep', got {on_error!r}")
    start = time.perf_counter()
    total = len(sweep.points)
    if cache and code is None:
        # Resolve the code version once per sweep: one cheap re-stat of
        # the package sources, and every point of the sweep is keyed
        # against the same snapshot.
        code = code_version()
    keys = [point_key(sweep.name, p, code) for p in sweep.points] if cache else []
    resolved: List[Optional[PointOutcome]] = [None] * total

    known = cache.manifest_keys(sweep.name) if (cache and resume) else None
    missing: List[int] = []
    for idx, params in enumerate(sweep.points):
        if cache and (known is None or keys[idx] in known):
            # A manifest listing is a hint, not a promise: get() still
            # validates the entry file and reports a stale index entry
            # (deleted/corrupted file) as a miss to recompute.
            value, hit = cache.get(sweep.name, keys[idx])
            if hit:
                resolved[idx] = PointOutcome(params, keys[idx], value, True, 0.0)
                continue
        missing.append(idx)

    exec_backend, owned = resolve_backend(backend, jobs)
    result = SweepResult(name=sweep.name, title=sweep.title)
    miss_points = [sweep.points[i] for i in missing]
    computed = exec_backend.map(sweep.run_fn, miss_points)
    try:
        for idx in range(total):
            outcome = resolved[idx]
            if outcome is None:
                task = next(computed)
                params, key = sweep.points[idx], keys[idx] if cache else ""
                if task.error is not None:
                    if on_error == "raise":
                        raise SweepPointError(
                            sweep.name, params, task.error
                        ) from task.exception
                    outcome = PointOutcome(
                        params, key, None, False, task.seconds,
                        status="error", error=task.error,
                    )
                else:
                    value = _normalize(task.value)
                    if cache:
                        cache.put(sweep.name, key, params, value)
                    outcome = PointOutcome(params, key, value, False, task.seconds)
            result.outcomes.append(outcome)
            if progress:
                progress(
                    Progress(
                        sweep=sweep.name,
                        index=idx,
                        total=total,
                        params=outcome.params,
                        cached=outcome.cached,
                        seconds=outcome.seconds,
                        status=outcome.status,
                    )
                )
    finally:
        close = getattr(computed, "close", None)
        if close is not None:
            close()  # tear down a mid-sweep pool on error paths
        if owned:
            exec_backend.close()
    # Aggregates are positional, so they always see the full-length
    # values list — failed points (on_error="keep") appear as the
    # :data:`FAILED` sentinel in their slots rather than silently
    # shifting later values into earlier ones.  The default aggregation
    # drops the holes; a custom aggregate that cannot digest them falls
    # back to the successful values unaggregated (a partial sweep has
    # no trustworthy table).
    values = [
        o.value if o.status == "ok" else FAILED for o in result.outcomes
    ]
    if result.errors == 0:
        result.rows = sweep.rows(values)
    else:
        try:
            result.rows = sweep.rows(values)
        except Exception:
            result.rows = [v for v in values if v is not FAILED]
    result.elapsed = time.perf_counter() - start
    return result


def run_campaign(
    campaign: Campaign,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[Progress], None] | None = None,
    code: str | None = None,
    backend: ExecutionBackend | str | None = None,
    resume: bool = False,
    on_error: str = "raise",
) -> CampaignResult:
    """Run every sweep of ``campaign`` in order; see :func:`run_sweep`.

    The backend is resolved **once** for the whole campaign, so a
    ``"persistent"`` spec keeps its warm workers (and their in-process
    memo caches) alive from sweep to sweep — the scenario that backend
    exists for.
    """
    exec_backend, owned = resolve_backend(backend, jobs)
    result = CampaignResult(name=campaign.name)
    try:
        for sweep in campaign.sweeps:
            result.sweeps.append(
                run_sweep(
                    sweep, jobs, cache, progress, code,
                    backend=exec_backend, resume=resume, on_error=on_error,
                )
            )
    finally:
        if owned:
            exec_backend.close()
    return result
