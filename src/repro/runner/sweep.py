"""The declarative sweep runner.

A :class:`Sweep` is a named list of parameter *points* plus a pure
per-point function; a :class:`Campaign` is an ordered collection of
sweeps (one experiment module may expose several, e.g. the LU study).
:func:`run_sweep` consults the content-addressed result cache first,
fans the remaining points out over an execution backend
(:mod:`repro.runner.backends` — inline, fresh process pool, or warm
persistent workers), streams ordered progress back through a callback
as each point resolves, and hands the ordered point results to the
sweep's ``aggregate`` hook to build the experiment's published rows.

Design rules the experiment modules follow:

* **points are data** — JSON-able mappings of scalars, so they hash
  stably (:mod:`repro.runner.hashing`) and cross process boundaries;
* **the point function is pure and top-level** — it rebuilds platform /
  workload objects from the point's parameters, returns JSON-able
  values, and is importable by reference for the pooled backends;
* **aggregation is deterministic in point order** — results are always
  delivered to ``aggregate`` in declaration order, so serial, pooled
  and cached runs produce byte-identical rows.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner.backends import CacheContext, ExecutionBackend, resolve_backend
from repro.runner.backends.persistent import _token_for
from repro.runner.cache import ResultCache
from repro.runner.hashing import code_version, point_key

__all__ = [
    "BatchableFn",
    "Campaign",
    "CampaignResult",
    "CircuitOpenError",
    "FAILED",
    "FailureReport",
    "PointOutcome",
    "Progress",
    "RetryPolicy",
    "Sweep",
    "SweepPointError",
    "SweepResult",
    "run_campaign",
    "run_sweep",
    "stamp_points",
]


def stamp_points(
    points: Sequence[Mapping[str, Any]], **common: Any
) -> Tuple[Mapping[str, Any], ...]:
    """Stamp shared knob values into every point of a sweep.

    The uniform way experiment declarations thread cross-cutting knobs
    (the simulation ``engine``, the execution ``backend``) into their
    points: the knob lands in each point mapping, so it reaches the pure
    per-point function, participates in the cache key, and crosses
    process boundaries like any other parameter.  ``None`` values are
    skipped (knob not applicable / leave the per-point default).

    Stamping deliberately splits the cache namespace per knob value —
    even for sweeps where a knob is inert — so cache entries always
    record exactly the parameters the point ran with.  (That is what
    makes the CI backend matrix meaningful: each backend computes its
    own entries, and the rows can be compared for byte-identity instead
    of the later backends trivially replaying the first one's cache.)
    """
    common = {k: v for k, v in common.items() if v is not None}
    if not common:
        return tuple(points)
    return tuple({**p, **common} for p in points)


PointFn = Callable[[Mapping[str, Any]], Any]
AggregateFn = Callable[[List[Any]], Any]
#: The batched-evaluation contract: a top-level pure function mapping a
#: *list* of point parameter mappings to the list of their results, in
#: order — element ``i`` must be byte-identical to ``run_fn(points[i])``.
#: Sweeps declare one beside their per-point ``run_fn`` (see
#: :attr:`Sweep.batch_fn`); the runner dispatches whole point-groups
#: through it and falls back to the scalar path per point whenever a
#: group fails.
BatchableFn = Callable[[List[Mapping[str, Any]]], List[Any]]


@dataclass(frozen=True)
class RetryPolicy:
    """The sweep runner's fault-tolerance knobs.

    The default-constructed policy is **inert**: no retries, no
    timeout, no breaker — and, by design, byte-invisible (an inert
    policy makes :func:`run_sweep` issue exactly the same backend
    calls, cache keys, and manifest records as a build without the
    retry layer at all).

    Attributes:
        retries: extra attempts per failed point (0 = fail fast).
        backoff: base delay before retry round 1, seconds; round ``r``
            waits ``backoff * 2**(r-1)``, capped at ``backoff_cap``.
        backoff_cap: upper bound on any single round's delay.
        jitter: fraction of the delay randomized *downward* —
            deterministically, seeded by ``(seed, sweep, round)`` — so
            reruns sleep identical amounts while distinct sweeps
            desynchronize.
        seed: jitter seed.
        timeout: per-point wall-clock limit, seconds, enforced inside
            the worker by the process/persistent backends (the serial
            backend never interrupts a point — see ``docs/runner.md``).
            A timed-out point fails with a ``PointTimeout`` error and
            is retried like any other failure.
        max_failures: circuit breaker — abort the whole sweep with a
            :class:`CircuitOpenError` (carrying a structured
            :class:`FailureReport`) as soon as this many points have
            *permanently* failed, i.e. exhausted their retry budget
            under ``on_error="keep"``.  ``None`` disables the breaker.
    """

    retries: int = 0
    backoff: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    timeout: Optional[float] = None
    max_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_failures is not None and self.max_failures < 1:
            raise ValueError(
                f"max_failures must be >= 1, got {self.max_failures}"
            )

    @property
    def active(self) -> bool:
        """Whether any knob departs from the inert default."""
        return bool(
            self.retries or self.timeout is not None
            or self.max_failures is not None
        )

    def delay(self, round_no: int, token: str = "") -> float:
        """Seconds to sleep before retry round ``round_no`` (1-based).

        Exponential in the round, capped, with deterministic jitter:
        the same ``(seed, token, round)`` always sleeps the same
        amount, so retried runs stay reproducible end to end.
        """
        base = min(self.backoff * (2.0 ** (round_no - 1)), self.backoff_cap)
        if base <= 0 or not self.jitter:
            return max(base, 0.0)
        digest = hashlib.sha256(
            f"{self.seed}\0{token}\0{round_no}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 - self.jitter * frac)


@dataclass(frozen=True)
class FailureReport:
    """What the circuit breaker knew when it opened.

    ``failures`` holds one mapping per permanently failed point:
    ``{"params": {...}, "error": <summary line>, "attempts": n}``.
    ``resolved`` counts points with final outcomes (cached, computed,
    or failed) at trip time — the rest of the sweep was abandoned.
    """

    sweep: str
    total: int
    resolved: int
    max_failures: int
    failures: Tuple[Mapping[str, Any], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "total": self.total,
            "resolved": self.resolved,
            "max_failures": self.max_failures,
            "failures": [dict(f) for f in self.failures],
        }

    def render(self) -> str:
        lines = [
            f"sweep {self.sweep!r}: circuit breaker opened after "
            f"{len(self.failures)} permanent point failure(s) "
            f"(max-failures={self.max_failures}); "
            f"{self.resolved}/{self.total} points resolved before abort"
        ]
        for failure in self.failures:
            lines.append(
                f"  - params={failure['params']!r} "
                f"attempts={failure['attempts']}: {failure['error']}"
            )
        return "\n".join(lines)


class CircuitOpenError(RuntimeError):
    """Too many permanent point failures — the sweep was aborted.

    Raised by :func:`run_sweep` when :attr:`RetryPolicy.max_failures`
    is reached; carries the structured :class:`FailureReport` as
    ``.report``.
    """

    def __init__(self, report: FailureReport):
        self.report = report
        super().__init__(report.render())


def _error_summary(error: Optional[str]) -> str:
    """One informative line out of a worker's error text.

    Tracebacks end with ``ExceptionType: message``; the runner's own
    synthesized errors (timeouts, dead workers) lead with it.
    """
    lines = [l for l in (error or "").strip().splitlines() if l.strip()]
    if not lines:
        return "unknown error"
    return lines[-1] if lines[0].startswith("Traceback") else lines[0]


class SweepPointError(RuntimeError):
    """A sweep point raised and the ``on_error="raise"`` policy is active.

    Carries the failing sweep/params and the worker's formatted
    traceback; the original exception object is chained (``__cause__``)
    when the point ran in-process.
    """

    def __init__(self, sweep: str, params: Mapping[str, Any], error: str):
        self.sweep = sweep
        self.params = dict(params)
        self.error = error
        super().__init__(
            f"point {self.params!r} of sweep {sweep!r} failed:\n{error}"
        )


def _normalize(value: Any) -> Any:
    """JSON-round-trip a computed value so it matches its cached shape.

    Cached points come back from disk JSON-decoded (tuples as lists,
    non-string dict keys as strings); normalizing fresh results the
    same way keeps cold, warm, and partially-warm runs byte-identical.
    Values outside JSON (only possible in cache-less library use) pass
    through untouched.
    """
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return value


#: Placeholder for a failed point's slot in the values an aggregate
#: sees under ``on_error="keep"`` — a sentinel rather than ``None`` so
#: a point function that legitimately returns ``None`` is never
#: confused with a failure.
FAILED = object()


def _concat(values: List[Any]) -> Any:
    """Default aggregation: concatenate list results, else keep the list.

    :data:`FAILED` holes (failed points under ``on_error="keep"``) are
    dropped; successful rows — including legitimate ``None`` results —
    still publish.
    """
    values = [v for v in values if v is not FAILED]
    if values and all(isinstance(v, list) for v in values):
        rows: List[Any] = []
        for v in values:
            rows.extend(v)
        return rows
    return list(values)


@dataclass(frozen=True)
class Sweep:
    """A named set of points evaluated by one pure function.

    Attributes:
        name: cache namespace and progress label (e.g. ``"fig10"``).
        run_fn: top-level pure function mapping one point's parameters
            to a JSON-able result.
        points: the parameter mappings, in publication order.
        aggregate: combines the ordered point results into the
            experiment's rows; defaults to list concatenation.
        title: heading used when the CLI prints the aggregated table.
        batch_fn: optional :data:`BatchableFn` — a top-level pure
            function evaluating a whole list of points at once
            (typically via :func:`repro.engine.run_batch`), returning
            one result per point in order, each byte-identical to
            ``run_fn`` on that point.  When present (and batching is
            enabled), the runner dispatches cache-miss points in groups
            through it; any group that errors falls back to the scalar
            per-point path, so caching, retries, and quarantine stay
            per-point either way.
    """

    name: str
    run_fn: PointFn
    points: Tuple[Mapping[str, Any], ...]
    aggregate: Optional[AggregateFn] = None
    title: Optional[str] = None
    batch_fn: Optional[BatchableFn] = None

    def rows(self, values: List[Any]) -> Any:
        """Aggregated rows for point results ``values`` (in order)."""
        return (self.aggregate or _concat)(values)


@dataclass(frozen=True)
class Campaign:
    """An ordered collection of sweeps run and reported together."""

    name: str
    sweeps: Tuple[Sweep, ...]


@dataclass(frozen=True)
class Progress:
    """One progress event, streamed as each point resolves (in order)."""

    sweep: str
    index: int
    total: int
    params: Mapping[str, Any]
    cached: bool
    seconds: float
    status: str = "ok"


@dataclass(frozen=True)
class PointOutcome:
    """A resolved point: parameters, cache key (empty string when run
    without a cache), value, provenance.

    ``status`` is ``"ok"``, ``"error"``, or ``"quarantined"``.  Errored
    points (only possible under ``on_error="keep"``) carry the worker
    traceback in ``error``, a ``None`` value, and are never written to
    the cache — a later ``--resume`` run re-computes exactly those,
    *except* points the cache has quarantined as known-permanent
    failures: those resolve as ``status="quarantined"`` without being
    computed (pass ``retry_quarantined=True`` to opt back in).

    ``batch`` is provenance: the value was computed by the sweep's
    ``batch_fn`` as part of a dispatched point-group rather than by a
    scalar ``run_fn`` call (the value itself is identical either way).
    """

    params: Mapping[str, Any]
    key: str
    value: Any
    cached: bool
    seconds: float
    status: str = "ok"
    error: Optional[str] = None
    batch: bool = False


@dataclass
class SweepResult:
    """Everything :func:`run_sweep` learned about one sweep.

    ``batch_groups`` counts the point-groups the batched dispatch path
    resolved (0 for scalar-only runs); ``shards`` counts the distinct
    cache shard directories the run's fresh results landed in (0 when
    running cache-less).  Both feed the CLI's ``[K groups, S shards]``
    summary suffix.
    """

    name: str
    outcomes: List[PointOutcome] = field(default_factory=list)
    rows: Any = None
    elapsed: float = 0.0
    title: Optional[str] = None
    batch_groups: int = 0
    shards: int = 0

    @property
    def hits(self) -> int:
        """Points served from the cache."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def errors(self) -> int:
        """Points that failed (kept under ``on_error="keep"``)."""
        return sum(1 for o in self.outcomes if o.status == "error")

    @property
    def quarantined(self) -> int:
        """Points skipped as known-permanent failures on resume."""
        return sum(1 for o in self.outcomes if o.status == "quarantined")

    @property
    def misses(self) -> int:
        """Points actually computed this run (successfully or not)."""
        return len(self.outcomes) - self.hits - self.quarantined


@dataclass
class CampaignResult:
    """Ordered sweep results plus campaign-level totals."""

    name: str
    sweeps: List[SweepResult] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.sweeps)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.sweeps)

    @property
    def errors(self) -> int:
        return sum(s.errors for s in self.sweeps)

    @property
    def quarantined(self) -> int:
        return sum(s.quarantined for s in self.sweeps)

    @property
    def batch_groups(self) -> int:
        return sum(s.batch_groups for s in self.sweeps)

    @property
    def shards(self) -> int:
        return sum(s.shards for s in self.sweeps)

    @property
    def elapsed(self) -> float:
        return sum(s.elapsed for s in self.sweeps)

    @property
    def tables(self) -> dict:
        """Sweep name → aggregated rows."""
        return {s.name: s.rows for s in self.sweeps}


def _map(
    backend: ExecutionBackend,
    fn: PointFn,
    items: Sequence[Mapping[str, Any]],
    timeout: Optional[float],
    attempt: int,
    context: Optional[CacheContext] = None,
):
    """Dispatch to the backend, invisibly when fault tolerance is off.

    With no timeout and attempt 0 the call is *argument-identical* to
    the pre-fault-tolerance runner — the byte-invisibility guarantee:
    a failure-free default run issues exactly the historic backend
    calls (so third-party backends without the new keywords keep
    working, and nothing about dispatch order or results can shift).

    ``context`` (cache addressing for the points being mapped) is only
    ever non-``None`` for backends that declared ``supports_context``
    — the ``remote`` backend, so the serve daemon can serve cache hits
    and journal fresh results — and those calls carry the keyword
    explicitly; every other backend keeps seeing the historic
    signatures above.
    """
    if context is not None:
        return backend.map(
            fn, items, timeout=timeout, attempt=attempt, context=context
        )
    if timeout is None and attempt == 0:
        return backend.map(fn, items)
    return backend.map(fn, items, timeout=timeout, attempt=attempt)


def _close(computed) -> None:
    """Close a backend result generator, if it is one."""
    close = getattr(computed, "close", None)
    if close is not None:
        close()


#: Largest point-group one batch dispatch carries.  Matches the
#: vectorized engine's sweet spot (per-event numpy overhead amortizes
#: well before 64 points, while group trace matrices stay small) and
#: bounds what one group failure forfeits to the scalar fallback.
_MAX_BATCH = 64


def _batch_groups(indices: Sequence[int], jobs: int) -> List[List[int]]:
    """Slice point indices into contiguous declaration-order groups.

    Contiguity matters: neighbouring sweep points usually share decision
    structure (same algorithm, stepped rates), which is exactly what the
    vectorized engine groups on.  Size targets one group per worker so
    batch dispatch still fans out, capped at :data:`_MAX_BATCH`.
    """
    size = max(1, min(_MAX_BATCH, -(-len(indices) // max(1, jobs))))
    return [list(indices[i : i + size]) for i in range(0, len(indices), size)]


def _batch_entry(item: Mapping[str, Any]) -> List[Any]:
    """Worker-side batch adapter: one dispatched point-group.

    A top-level function so every backend can ship it by import token;
    the *sweep's* batch function travels inside the item as its own
    ``(module, qualname)`` token plus the group's point mappings —
    exactly the purity rules per-point dispatch already imposes.
    """
    obj: Any = importlib.import_module(item["module"])
    for part in item["qualname"].split("."):
        obj = getattr(obj, part)
    return obj([dict(p) for p in item["points"]])


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[Progress], None] | None = None,
    code: str | None = None,
    backend: ExecutionBackend | str | None = None,
    resume: bool = False,
    on_error: str = "raise",
    retry: RetryPolicy | None = None,
    retry_quarantined: bool = False,
    batch: bool = True,
) -> SweepResult:
    """Evaluate every point of ``sweep``, cheapest source first.

    Args:
        sweep: the declaration to run.
        jobs: worker processes for the cache-miss points (1 = inline).
        cache: result cache, or ``None`` to recompute everything and
            write nothing (the default — library callers like the
            experiments' ``run()`` helpers stay side-effect free).
        progress: callback streamed one event per point, in point
            order, as each point resolves (cached points immediately,
            computed points as the backend delivers them).
        code: code-version override for the cache keys (tests only).
        backend: execution backend — a registry name (``"serial"``,
            ``"process"``, ``"persistent"``), an already-constructed
            :class:`~repro.runner.backends.ExecutionBackend` (the
            campaign path: pass one instance to keep persistent workers
            warm across sweeps), or ``None``/``"auto"`` for the historic
            default (inline when ``jobs <= 1``, fresh pool otherwise).
        resume: consult the sweep's cache manifest (one O(1) index
            read) for which points already exist instead of probing
            every entry file; points missing from the index — the tail
            a killed run never wrote, or failed points, which are never
            cached — are recomputed, everything else is loaded.
            Requires ``cache``.
        on_error: ``"raise"`` (default) re-raises the first failing
            point as :class:`SweepPointError`; ``"keep"`` records the
            failure as a ``status="error"`` outcome and keeps the
            sweep running.  Aggregation then sees the failed points as
            :data:`FAILED` sentinel holes in their original positions
            (the default aggregation drops them; a custom aggregate
            that raises on the holes yields the successful values
            unaggregated).
        retry: the :class:`RetryPolicy` — bounded per-point retries
            with deterministic backoff, a per-point timeout, and the
            ``max_failures`` circuit breaker.  ``None`` (the default)
            is the inert policy: the runner behaves, byte for byte,
            as if the fault-tolerance layer did not exist.
        retry_quarantined: on a ``resume`` run, re-attempt points the
            cache has quarantined as known-permanent failures instead
            of skipping them (a success clears the quarantine record).
        batch: allow batched dispatch (default on).  Takes effect only
            when the sweep declares a ``batch_fn``, the backend opted in
            (``supports_batches``), and the batch function is shippable
            by import token; cache-miss points then go out as whole
            point-groups first, and any group that fails re-enters the
            ordinary scalar path — per-point retries, quarantine, and
            ``on_error`` semantics included.  ``--no-batch`` (or
            ``batch=False``) restores pure per-point dispatch.  Cache
            keys, point order, and aggregated rows are identical either
            way; only the manifest's provenance stamps differ.

    Point results reach ``sweep.aggregate`` in declaration order no
    matter which points were cached or which backend ran the rest, so
    the aggregated rows are identical across all execution modes.
    Retries change neither: a point that succeeds on attempt ``k``
    produces the same value, cache key, and manifest record as one
    that succeeds on attempt 0, and results still stream in
    declaration order (a retried point simply resolves late, after a
    ``status="retry"`` progress event per failed attempt).
    """
    if resume and cache is None:
        raise ValueError("resume=True requires a cache")
    if on_error not in ("raise", "keep"):
        raise ValueError(f"on_error must be 'raise' or 'keep', got {on_error!r}")
    policy = retry or RetryPolicy()
    start = time.perf_counter()
    total = len(sweep.points)
    if cache and code is None:
        # Resolve the code version once per sweep: one cheap re-stat of
        # the package sources, and every point of the sweep is keyed
        # against the same snapshot.
        code = code_version()
    keys = [point_key(sweep.name, p, code) for p in sweep.points] if cache else []
    resolved: List[Optional[PointOutcome]] = [None] * total

    known = cache.manifest_keys(sweep.name) if (cache and resume) else None
    quarantined = (
        cache.quarantined(sweep.name)
        if (cache and resume and not retry_quarantined)
        else {}
    )
    missing: List[int] = []
    for idx, params in enumerate(sweep.points):
        if cache and keys[idx] in quarantined:
            # A known-permanent failure from a previous run: resolve it
            # as quarantined instead of burning its full retry budget
            # again.  --retry-quarantined opts back in.
            resolved[idx] = PointOutcome(
                params, keys[idx], None, False, 0.0,
                status="quarantined",
                error=quarantined[keys[idx]].get("error"),
            )
            continue
        if cache and (known is None or keys[idx] in known):
            # A manifest listing is a hint, not a promise: get() still
            # validates the entry file and reports a stale index entry
            # (deleted/corrupted file) as a miss to recompute.
            value, hit = cache.get(sweep.name, keys[idx])
            if hit:
                resolved[idx] = PointOutcome(params, keys[idx], value, True, 0.0)
                continue
        missing.append(idx)

    exec_backend, owned = resolve_backend(backend, jobs)
    result = SweepResult(name=sweep.name, title=sweep.title)
    touched_shards: set = set()  # cache shard prefixes fresh puts land in

    def emit(idx: int, outcome: PointOutcome) -> None:
        if progress:
            progress(
                Progress(
                    sweep=sweep.name,
                    index=idx,
                    total=total,
                    params=outcome.params,
                    cached=outcome.cached,
                    seconds=outcome.seconds,
                    status=outcome.status,
                )
            )

    def emit_retry(idx: int, task) -> None:
        if progress:
            progress(
                Progress(
                    sweep=sweep.name,
                    index=idx,
                    total=total,
                    params=sweep.points[idx],
                    cached=False,
                    seconds=task.seconds,
                    status="retry",
                )
            )

    def succeed(idx: int, task) -> None:
        params, key = sweep.points[idx], keys[idx] if cache else ""
        value = _normalize(task.value)
        if cache:
            cache.put(sweep.name, key, params, value)
            touched_shards.add(key[:2])
        outcome = PointOutcome(params, key, value, False, task.seconds)
        resolved[idx] = outcome
        emit(idx, outcome)

    failures: List[Dict[str, Any]] = []

    def fail(idx: int, task, attempts: int) -> None:
        """A point is out of attempts: keep, raise, or trip the breaker."""
        params, key = sweep.points[idx], keys[idx] if cache else ""
        if on_error == "raise":
            raise SweepPointError(
                sweep.name, params, task.error
            ) from task.exception
        outcome = PointOutcome(
            params, key, None, False, task.seconds,
            status="error", error=task.error,
        )
        resolved[idx] = outcome
        if cache and policy.retries > 0:
            # The point failed every attempt of an explicit retry
            # budget: quarantine it so resumes stop paying for it.
            # (Without a retry policy nothing is journalled — failed
            # points stay uncached and resume recomputes them, the
            # historic behaviour.)
            cache.quarantine(sweep.name, key, params, _error_summary(task.error))
        failures.append(
            {"params": dict(params), "error": _error_summary(task.error),
             "attempts": attempts}
        )
        emit(idx, outcome)
        if policy.max_failures is not None and len(failures) >= policy.max_failures:
            raise CircuitOpenError(
                FailureReport(
                    sweep=sweep.name,
                    total=total,
                    resolved=sum(1 for o in resolved if o is not None),
                    max_failures=policy.max_failures,
                    failures=tuple(failures),
                )
            )

    def _context(indices: Sequence[int]) -> Optional[CacheContext]:
        """Cache addressing for a dispatch round, for backends that
        asked for it (``supports_context``)."""
        if cache is None or not getattr(exec_backend, "supports_context", False):
            return None
        return CacheContext(
            sweep=sweep.name,
            root=str(cache.root),
            code=code,
            keys=tuple(keys[i] for i in indices),
        )

    if (
        batch
        and missing
        and sweep.batch_fn is not None
        and getattr(exec_backend, "supports_batches", False)
    ):
        token = _token_for(sweep.batch_fn)
        if token is not None:
            # Batched dispatch: ship whole point-groups through the
            # sweep's batch function first.  Each successful group
            # resolves (and caches) its points here — the emit loop
            # below still streams them in declaration order — while a
            # failed group simply leaves its points in ``missing``, so
            # the scalar path (with its per-point retries, quarantine,
            # and error policy) picks them up untouched.
            groups = _batch_groups(missing, jobs)
            items = [
                {
                    "module": token[0],
                    "qualname": token[1],
                    "points": [dict(sweep.points[i]) for i in group],
                }
                for group in groups
            ]
            group_timeout = (
                policy.timeout * max(len(g) for g in groups)
                if policy.timeout is not None
                else None
            )
            leftover: List[int] = []
            dispatched = _map(
                exec_backend, _batch_entry, items, group_timeout, 0
            )
            try:
                for group, task in zip(groups, dispatched):
                    values = task.value if task.error is None else None
                    if not isinstance(values, list) or len(values) != len(group):
                        leftover.extend(group)
                        continue
                    seconds = task.seconds / len(group)
                    entries: List[Tuple[str, Mapping[str, Any], Any]] = []
                    for idx, value in zip(group, values):
                        params = sweep.points[idx]
                        key = keys[idx] if cache else ""
                        value = _normalize(value)
                        if cache:
                            entries.append((key, params, value))
                            touched_shards.add(key[:2])
                        resolved[idx] = PointOutcome(
                            params, key, value, False, seconds, batch=True
                        )
                    if cache:
                        # Bulk index I/O: the whole resolved group costs
                        # one manifest append + one fsync per shard
                        # touched, not one per point.
                        cache.put_many(sweep.name, entries, batch=True)
                    result.batch_groups += 1
            finally:
                _close(dispatched)
            missing = leftover

    miss_points = [sweep.points[i] for i in missing]
    computed = _map(
        exec_backend, sweep.run_fn, miss_points, policy.timeout, 0,
        _context(missing),
    )
    try:
        pending: List[int] = []
        for idx in range(total):
            outcome = resolved[idx]
            if outcome is not None:
                emit(idx, outcome)
                continue
            task = next(computed)
            if task.error is None:
                succeed(idx, task)
            elif policy.retries > 0:
                pending.append(idx)
                emit_retry(idx, task)
            else:
                fail(idx, task, attempts=1)
        for round_no in range(1, policy.retries + 1):
            if not pending:
                break
            delay = policy.delay(round_no, sweep.name)
            if delay > 0:
                time.sleep(delay)
            _close(computed)
            computed = _map(
                exec_backend,
                sweep.run_fn,
                [sweep.points[i] for i in pending],
                policy.timeout,
                round_no,
                _context(pending),
            )
            still_failing: List[int] = []
            for idx in pending:
                task = next(computed)
                if task.error is None:
                    succeed(idx, task)
                elif round_no < policy.retries:
                    still_failing.append(idx)
                    emit_retry(idx, task)
                else:
                    fail(idx, task, attempts=round_no + 1)
            pending = still_failing
    finally:
        _close(computed)  # tear down a mid-sweep pool on error paths
        if owned:
            exec_backend.close()
    result.outcomes.extend(resolved)
    # Aggregates are positional, so they always see the full-length
    # values list — failed points (on_error="keep") appear as the
    # :data:`FAILED` sentinel in their slots rather than silently
    # shifting later values into earlier ones.  The default aggregation
    # drops the holes; a custom aggregate that cannot digest them falls
    # back to the successful values unaggregated (a partial sweep has
    # no trustworthy table).
    values = [
        o.value if o.status == "ok" else FAILED for o in result.outcomes
    ]
    if result.errors == 0 and result.quarantined == 0:
        result.rows = sweep.rows(values)
    else:
        try:
            result.rows = sweep.rows(values)
        except Exception:
            result.rows = [v for v in values if v is not FAILED]
    result.shards = len(touched_shards)
    result.elapsed = time.perf_counter() - start
    return result


def run_campaign(
    campaign: Campaign,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[Progress], None] | None = None,
    code: str | None = None,
    backend: ExecutionBackend | str | None = None,
    resume: bool = False,
    on_error: str = "raise",
    retry: RetryPolicy | None = None,
    retry_quarantined: bool = False,
    batch: bool = True,
) -> CampaignResult:
    """Run every sweep of ``campaign`` in order; see :func:`run_sweep`.

    The backend is resolved **once** for the whole campaign, so a
    ``"persistent"`` spec keeps its warm workers (and their in-process
    memo caches) alive from sweep to sweep — the scenario that backend
    exists for.  The retry policy (and its circuit breaker budget)
    applies per sweep.
    """
    exec_backend, owned = resolve_backend(backend, jobs)
    result = CampaignResult(name=campaign.name)
    try:
        for sweep in campaign.sweeps:
            result.sweeps.append(
                run_sweep(
                    sweep, jobs, cache, progress, code,
                    backend=exec_backend, resume=resume, on_error=on_error,
                    retry=retry, retry_quarantined=retry_quarantined,
                    batch=batch,
                )
            )
    finally:
        if owned:
            exec_backend.close()
    return result
