"""Model-tier pre-screening: rank sweep points before simulating them.

Capacity-planning sweeps ask "which few configurations are worth a full
simulation?" — a question the analytic model engine
(:mod:`repro.engine.model`) answers 2–3 orders of magnitude cheaper
than either simulating engine.  :func:`prescreen_sweep` evaluates every
point of a sweep with ``engine="model"`` stamped in, scores the
estimated rows, and returns the same sweep narrowed to the most
promising points — which then run through the normal cached/parallel
:func:`~repro.runner.sweep.run_sweep` machinery at full fidelity.

The kept points are the *original* point mappings, untouched: their
cache keys are identical to a full run's, so a later unfiltered sweep
reuses every entry the screened run produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Mapping, Optional, Tuple

from repro.runner.sweep import Sweep, stamp_points

__all__ = [
    "PrescreenResult",
    "PrescreenUnsupported",
    "ScoredPoint",
    "default_score",
    "prescreen_sweep",
]


class PrescreenUnsupported(RuntimeError):
    """The sweep cannot be model-screened.

    Raised when a point function fails under ``engine="model"`` (e.g.
    it never simulates, or its scheduler needs raw kernel processes) or
    when no score can be extracted from the estimated rows.  Callers
    should fall back to running the sweep unfiltered.
    """


#: Row keys probed, in order, by :func:`default_score`.
_SCORE_KEYS = ("makespan_s", "makespan", "work_makespan")


def default_score(params: Mapping[str, Any], value: Any) -> float:
    """Score a point by its estimated makespan (lower is better).

    Understands the experiment conventions: a row mapping with one of
    ``makespan_s`` / ``makespan`` / ``work_makespan``, or a list of
    such rows (scored by their minimum).
    """
    if isinstance(value, Mapping):
        for key in _SCORE_KEYS:
            v = value.get(key)
            if isinstance(v, (int, float)):
                return float(v)
    elif isinstance(value, (list, tuple)) and value:
        try:
            return min(default_score(params, item) for item in value)
        except PrescreenUnsupported:
            pass
    raise PrescreenUnsupported(
        f"no makespan-like field to score in point result {value!r} "
        f"(pass an explicit score function)"
    )


@dataclass(frozen=True)
class ScoredPoint:
    """One screened point: original params, model row, and its score."""

    params: Mapping[str, Any]
    value: Any
    score: float


@dataclass(frozen=True)
class PrescreenResult:
    """Outcome of :func:`prescreen_sweep`.

    Attributes:
        sweep: the input sweep narrowed to the kept points (declaration
            order preserved), ready for ``run_sweep``.
        scored: every point with its model row and score, best first.
        kept: how many points survived the screen.
    """

    sweep: Sweep
    scored: Tuple[ScoredPoint, ...]
    kept: int

    @property
    def dropped(self) -> int:
        """Points filtered out by the screen."""
        return len(self.scored) - self.kept


def prescreen_sweep(
    sweep: Sweep,
    keep: float,
    score: Optional[Callable[[Mapping[str, Any], Any], float]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    batch: bool = True,
) -> PrescreenResult:
    """Narrow ``sweep`` to its ``keep`` best points via the model engine.

    Args:
        sweep: any sweep whose point function honours the ``engine``
            point parameter (all simulating experiments do, via
            ``params.get("engine", "fast")``).
        keep: how much to keep — an integer count (``keep >= 1``) or a
            fraction in ``(0, 1)`` of the point total (rounded up).
            At least one point always survives.
        score: maps ``(params, model_value)`` to a float, lower is
            better; defaults to :func:`default_score` (estimated
            makespan).
        progress: optional ``(done, total)`` callback per screened
            point.
        batch: evaluate the screen through the sweep's ``batch_fn``
            when it declares one (default on).  The batch layer groups
            the model-stamped points and runs each group's closed-form
            recurrence vectorized (:mod:`repro.engine.model_batch`),
            which is where the model tier's raw points/sec headroom
            actually cashes out for large grids; results are
            bitwise-identical to the scalar loop, so scores — and the
            kept set — cannot shift.  Any batch-path failure falls back
            to the scalar loop silently.

    Returns a :class:`PrescreenResult`; raises
    :class:`PrescreenUnsupported` when the sweep cannot be screened
    (callers should then run it unfiltered).

    The screen itself runs inline (in-process, uncached): model points
    cost microseconds, so fan-out and memoization overheads would
    dominate the work being screened.
    """
    total = len(sweep.points)
    if total == 0:
        return PrescreenResult(sweep=sweep, scored=(), kept=0)
    if keep <= 0:
        raise ValueError(f"keep must be positive, got {keep}")
    n_keep = math.ceil(keep * total) if 0 < keep < 1 else int(keep)
    n_keep = max(1, min(n_keep, total))

    score_fn = score or default_score
    model_points = stamp_points(sweep.points, engine="model")

    values: Optional[List[Any]] = None
    if batch and sweep.batch_fn is not None:
        try:
            batched = sweep.batch_fn([dict(p) for p in model_points])
            if isinstance(batched, list) and len(batched) == total:
                values = batched
        except Exception:
            values = None  # scalar fallback owns the error reporting

    scored: List[Tuple[float, int, ScoredPoint]] = []
    for idx, (params, model_params) in enumerate(zip(sweep.points, model_points)):
        try:
            value = (
                values[idx] if values is not None
                else sweep.run_fn(model_params)
            )
        except PrescreenUnsupported:
            raise
        except Exception as exc:
            raise PrescreenUnsupported(
                f"point {dict(params)!r} of sweep {sweep.name!r} failed "
                f"under engine='model': {exc}"
            ) from exc
        s = score_fn(params, value)
        scored.append((s, idx, ScoredPoint(params, value, s)))
        if progress is not None:
            progress(idx + 1, total)

    scored.sort(key=lambda item: (item[0], item[1]))
    kept_indices = sorted(idx for _, idx, _ in scored[:n_keep])
    narrowed = replace(
        sweep, points=tuple(sweep.points[i] for i in kept_indices)
    )
    return PrescreenResult(
        sweep=narrowed,
        scored=tuple(sp for _, _, sp in scored),
        kept=n_keep,
    )
