"""Stable content hashing for sweep points.

Cache keys must be reproducible across processes and machines (Python's
built-in ``hash`` is salted per process), and must change when the code
that produced a result changes.  Keys are therefore SHA-256 digests of

* the experiment (sweep) name,
* the point's parameters, rendered as canonical JSON (sorted keys, no
  whitespace, tuples coerced to lists, numpy scalars to Python ones),
* a *code version* — a digest over every ``.py`` source file of the
  :mod:`repro` package, so editing any module invalidates old entries.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

__all__ = ["canonical_params", "code_version", "point_key"]


def _coerce(value: Any) -> Any:
    """JSON fallback for the scalar types sweeps are allowed to carry."""
    for attr, cast in (("item", None), ("__float__", float), ("__int__", int)):
        if hasattr(value, attr):
            return value.item() if attr == "item" else cast(value)
    raise TypeError(
        f"sweep parameters must be JSON-serialisable scalars/lists/dicts, "
        f"got {type(value).__name__}: {value!r}"
    )


def canonical_params(params: Mapping[str, Any]) -> str:
    """Render ``params`` as canonical JSON (stable across processes)."""
    return json.dumps(
        params, sort_keys=True, separators=(",", ":"), default=_coerce
    )


def _source_snapshot(root: Path) -> Tuple[Tuple[str, int, int], ...]:
    """``(relative path, mtime_ns, size)`` of every source file under ``root``.

    Files vanishing mid-scan (a concurrent editor save or branch switch)
    are skipped — they are equally absent from the digest pass below.
    """
    entries = []
    for path in sorted(root.rglob("*.py")):
        try:
            st = path.stat()
        except OSError:
            continue
        entries.append((path.relative_to(root).as_posix(), st.st_mtime_ns, st.st_size))
    return tuple(entries)


#: Last computed version, keyed by the (root, snapshot) that produced it.
_code_cache: Optional[Tuple[Tuple[Path, tuple], str]] = None


def code_version(root: Path | str | None = None) -> str:
    """Digest of the :mod:`repro` package sources (or of ``root``).

    Any edit to any ``repro/**/*.py`` file yields a new version, so the
    cache never serves results computed by stale code — *including
    within one process*: the digest is memoized against a cheap
    ``(path, mtime_ns, size)`` snapshot that is re-taken on every call,
    so a long-lived session (REPL, Jupyter) that edits a module and
    re-runs a sweep gets a fresh key.  (A process-lifetime ``lru_cache``
    here once served stale results in exactly that workflow.)
    """
    global _code_cache
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    else:
        root = Path(root).resolve()
    snapshot = _source_snapshot(root)
    cached = _code_cache
    if cached is not None and cached[0] == (root, snapshot):
        return cached[1]
    digest = hashlib.sha256()
    for rel, _mtime, _size in snapshot:
        try:
            blob = (root / rel).read_bytes()
        except OSError:
            continue  # vanished since the snapshot: treated as absent
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(blob)
    version = digest.hexdigest()[:16]
    _code_cache = ((root, snapshot), version)
    return version


def point_key(
    experiment: str, params: Mapping[str, Any], code: str | None = None
) -> str:
    """Content address of one sweep point.

    Args:
        experiment: sweep name (cache namespace).
        params: the point's parameters (JSON-able mapping).
        code: code-version override; defaults to :func:`code_version`.
            Tests pass explicit values to simulate code changes.
    """
    payload = (
        f'{{"code":"{code if code is not None else code_version()}",'
        f'"experiment":{json.dumps(experiment)},'
        f'"params":{canonical_params(params)}}}'
    )
    return hashlib.sha256(payload.encode()).hexdigest()
