"""Stable content hashing for sweep points.

Cache keys must be reproducible across processes and machines (Python's
built-in ``hash`` is salted per process), and must change when the code
that produced a result changes.  Keys are therefore SHA-256 digests of

* the experiment (sweep) name,
* the point's parameters, rendered as canonical JSON (sorted keys, no
  whitespace, tuples coerced to lists, numpy scalars to Python ones),
* a *code version* — a digest over every ``.py`` source file of the
  :mod:`repro` package, so editing any module invalidates old entries.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping

__all__ = ["canonical_params", "code_version", "point_key"]


def _coerce(value: Any) -> Any:
    """JSON fallback for the scalar types sweeps are allowed to carry."""
    for attr, cast in (("item", None), ("__float__", float), ("__int__", int)):
        if hasattr(value, attr):
            return value.item() if attr == "item" else cast(value)
    raise TypeError(
        f"sweep parameters must be JSON-serialisable scalars/lists/dicts, "
        f"got {type(value).__name__}: {value!r}"
    )


def canonical_params(params: Mapping[str, Any]) -> str:
    """Render ``params`` as canonical JSON (stable across processes)."""
    return json.dumps(
        params, sort_keys=True, separators=(",", ":"), default=_coerce
    )


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed :mod:`repro` package sources.

    Any edit to any ``repro/**/*.py`` file yields a new version, so the
    cache never serves results computed by stale code.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def point_key(
    experiment: str, params: Mapping[str, Any], code: str | None = None
) -> str:
    """Content address of one sweep point.

    Args:
        experiment: sweep name (cache namespace).
        params: the point's parameters (JSON-able mapping).
        code: code-version override; defaults to :func:`code_version`.
            Tests pass explicit values to simulate code changes.
    """
    payload = (
        f'{{"code":"{code if code is not None else code_version()}",'
        f'"experiment":{json.dumps(experiment)},'
        f'"params":{canonical_params(params)}}}'
    )
    return hashlib.sha256(payload.encode()).hexdigest()
