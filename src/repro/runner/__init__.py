"""Unified sweep runner: declarative experiments, pluggable execution
backends, a manifest-indexed result store.

The experiment modules declare their work as :class:`Sweep`\\ s (points +
a pure per-point function) grouped into :class:`Campaign`\\ s;
:func:`run_sweep` / :func:`run_campaign` execute them on an
interchangeable :class:`~repro.runner.backends.ExecutionBackend`
(``serial`` inline, ``process`` fresh pool, ``persistent`` warm
workers) with results memoized in a content-addressed on-disk
:class:`ResultCache` whose per-sweep manifests make ``cache info`` and
``--resume`` O(1) index reads.  ``python -m repro sweep <name>`` is the
CLI front-end; ``benchmarks/conftest.py`` reuses the same cache through
:func:`cached_call`.  A :class:`RetryPolicy` adds the fault-tolerance
layer — bounded retries with deterministic backoff, per-point
timeouts, a ``max_failures`` circuit breaker, and cache-level
quarantine of known-permanent failures — proven against the
deterministic :class:`~repro.runner.backends.ChaosBackend` fault
injector.  See ``docs/runner.md`` for the architecture.
"""

from repro.runner.backends import (
    BACKENDS,
    CacheContext,
    ChaosBackend,
    ChaosFault,
    ChaosSpec,
    ExecutionBackend,
    PersistentBackend,
    PointTimeout,
    ProcessBackend,
    RemoteBackend,
    SerialBackend,
    TaskResult,
    create_backend,
    parallel_map,
    resolve_backend,
)
from repro.runner.cache import (
    CacheStats,
    ResultCache,
    cached_call,
    default_cache_dir,
)
from repro.runner.hashing import canonical_params, code_version, point_key
from repro.runner.prescreen import (
    PrescreenResult,
    PrescreenUnsupported,
    ScoredPoint,
    default_score,
    prescreen_sweep,
)
from repro.runner.sweep import (
    FAILED,
    BatchableFn,
    Campaign,
    CampaignResult,
    CircuitOpenError,
    FailureReport,
    PointOutcome,
    Progress,
    RetryPolicy,
    Sweep,
    SweepPointError,
    SweepResult,
    run_campaign,
    run_sweep,
    stamp_points,
)

__all__ = [
    "BACKENDS",
    "BatchableFn",
    "CacheContext",
    "CacheStats",
    "Campaign",
    "CampaignResult",
    "ChaosBackend",
    "ChaosFault",
    "ChaosSpec",
    "CircuitOpenError",
    "ExecutionBackend",
    "FAILED",
    "FailureReport",
    "PersistentBackend",
    "PointOutcome",
    "PointTimeout",
    "PrescreenResult",
    "PrescreenUnsupported",
    "ProcessBackend",
    "Progress",
    "RemoteBackend",
    "ResultCache",
    "RetryPolicy",
    "ScoredPoint",
    "SerialBackend",
    "Sweep",
    "SweepPointError",
    "SweepResult",
    "TaskResult",
    "cached_call",
    "canonical_params",
    "code_version",
    "create_backend",
    "default_cache_dir",
    "default_score",
    "parallel_map",
    "point_key",
    "prescreen_sweep",
    "resolve_backend",
    "run_campaign",
    "run_sweep",
    "stamp_points",
]
