"""Unified sweep runner: declarative experiments, parallel fan-out, caching.

The experiment modules declare their work as :class:`Sweep`\\ s (points +
a pure per-point function) grouped into :class:`Campaign`\\ s;
:func:`run_sweep` / :func:`run_campaign` execute them serially or across
a process pool with results memoized in a content-addressed on-disk
:class:`ResultCache`.  ``python -m repro sweep <name>`` is the CLI
front-end; ``benchmarks/conftest.py`` reuses the same cache through
:func:`cached_call`.
"""

from repro.runner.cache import (
    CacheStats,
    ResultCache,
    cached_call,
    default_cache_dir,
)
from repro.runner.hashing import canonical_params, code_version, point_key
from repro.runner.sweep import (
    Campaign,
    CampaignResult,
    PointOutcome,
    Progress,
    Sweep,
    SweepResult,
    run_campaign,
    run_sweep,
    stamp_points,
)

__all__ = [
    "CacheStats",
    "Campaign",
    "CampaignResult",
    "PointOutcome",
    "Progress",
    "ResultCache",
    "Sweep",
    "SweepResult",
    "cached_call",
    "canonical_params",
    "code_version",
    "default_cache_dir",
    "point_key",
    "run_campaign",
    "run_sweep",
    "stamp_points",
]
