"""Warm-worker persistent pool — the campaign backend.

One long-lived ``multiprocessing`` pool per backend instance, reused
across every ``map`` call (i.e. across all sweeps of a campaign and
across repeated campaigns in one session).  Three design points:

* **function shipping** — tasks never pickle the point function.  Each
  task carries a ``(module, qualname)`` token; a worker resolves the
  token by import **once**, caches the callable in a per-process
  registry, and serves every later batch of any sweep using that
  function from the cache.  The parent verifies the token resolves back
  to the very callable it was given, so a closure, lambda or
  monkeypatched function silently falls back to inline execution
  instead of running the wrong code.
* **batching** — points are grouped into batches sized to a few batches
  per worker, amortising the per-task IPC round-trip that dominates
  cheap points.  Results are flattened back into strict input order.
* **failure isolation** — a worker wraps every point individually; a
  raising point yields an errored :class:`TaskResult` while the rest of
  the batch, the worker, and the pool live on.

Use it whenever one session runs more than one sweep: the pool spin-up
that the ``process`` backend pays per sweep is paid once here, and
in-process memo caches inside worker processes (e.g. the robustness
baseline lookup) stay warm from sweep to sweep.
"""

from __future__ import annotations

import importlib
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.runner.backends.base import (
    PointFn,
    TaskResult,
    pool_context,
    register,
    run_one,
)

__all__ = ["PersistentBackend"]

Token = Tuple[str, str]  # (module, qualname)

#: Per-worker registry: token -> resolved point function.
_FN_CACHE: dict = {}
#: Test hook installed by the pool initializer; called on cache misses.
_RESOLVE_PROBE: Optional[Callable[[Token], None]] = None


def _init_worker(resolve_probe: Optional[Callable[[Token], None]]) -> None:
    """Pool initializer: start each worker with an empty function cache."""
    global _RESOLVE_PROBE
    _FN_CACHE.clear()
    _RESOLVE_PROBE = resolve_probe


def _resolve(token: Token) -> PointFn:
    """Import-resolve ``token``; memoized for the worker's lifetime."""
    fn = _FN_CACHE.get(token)
    if fn is None:
        if _RESOLVE_PROBE is not None:
            _RESOLVE_PROBE(token)
        module_name, qualname = token
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        fn = _FN_CACHE[token] = obj
    return fn


def _run_batch(
    task: Tuple[Token, List[Mapping[str, Any]]]
) -> List[Tuple[Any, float, Optional[str]]]:
    """Worker task: evaluate one batch of points with the token's function.

    Every point is isolated; a resolution failure (module vanished
    between parent check and worker import) errors the whole batch but
    still returns results instead of raising through the pool.
    """
    token, batch = task
    try:
        fn = _resolve(token)
    except Exception:
        import traceback

        error = traceback.format_exc()
        return [(None, 0.0, error) for _ in batch]
    out = []
    for params in batch:
        result = run_one(fn, params)
        out.append((result.value, result.seconds, result.error))
    return out


def _token_for(fn: PointFn) -> Optional[Token]:
    """The importable address of ``fn``, or ``None`` when it has none.

    ``None`` (lambdas, closures, methods, monkeypatched replacements
    whose module attribute no longer is ``fn``) routes the call to the
    inline fallback.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    try:
        obj: Any = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except Exception:
        return None
    return (module, qualname) if obj is fn else None


@register
class PersistentBackend:
    """A warm worker pool shared by every sweep of a session."""

    name = "persistent"

    def __init__(
        self,
        jobs: int = 1,
        batch_size: Optional[int] = None,
        resolve_probe: Optional[Callable[[Token], None]] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.batch_size = batch_size  # None: sized per map call
        self._resolve_probe = resolve_probe
        self._pool = None

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = pool_context().Pool(
                processes=self.jobs,
                initializer=_init_worker,
                initargs=(self._resolve_probe,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down; the next ``map`` would start a fresh one."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Drop the pool *now*, abandoning any queued batches.

        The abort path: ``close()`` would first drain everything
        already submitted, which on an errored sweep means silently
        simulating the whole remainder before the failure surfaces.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PersistentBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def _batches(
        self, token: Token, items: Sequence[Mapping[str, Any]]
    ) -> List[Tuple[Token, List[Mapping[str, Any]]]]:
        """Slice ``items`` into order-preserving batches.

        Default size targets ~4 batches per worker — large enough to
        amortise IPC on cheap points, small enough that the tail of a
        sweep still load-balances across the pool.
        """
        size = self.batch_size or max(1, len(items) // (self.jobs * 4))
        return [
            (token, list(items[i : i + size]))
            for i in range(0, len(items), size)
        ]

    def map(
        self, fn: PointFn, items: Sequence[Mapping[str, Any]]
    ) -> Iterator[TaskResult]:
        if not items:
            return
        token = _token_for(fn)
        if token is None or self.jobs <= 1:
            # Unshippable function, or nothing to fan out over: inline
            # is byte-identical and cheaper.
            for params in items:
                yield run_one(fn, params)
            return
        pool = self._ensure_pool()
        results = pool.imap(_run_batch, self._batches(token, items), chunksize=1)
        delivered = 0
        try:
            for batch_result in results:
                for value, seconds, error in batch_result:
                    delivered += 1  # before the yield: a close() while
                    # suspended there must count this result as served
                    yield TaskResult(value=value, seconds=seconds, error=error)
        except GeneratorExit:
            # Closed by the consumer.  After the final result the frame
            # is still suspended at its last yield, so a close() on a
            # fully-served sweep lands here too — and must leave the
            # warm pool alone.  Only a genuine mid-sweep abandonment
            # (error abort with work still queued) terminates the pool:
            # the queued batches must not silently run to completion.
            if delivered < len(items):
                self.terminate()
            raise
