"""Warm-worker persistent pool — the campaign backend, self-healing.

One long-lived set of worker processes per backend instance, reused
across every ``map`` call (i.e. across all sweeps of a campaign and
across repeated campaigns in one session).  Unlike the first
incarnation (a ``multiprocessing.Pool``), the workers are managed
directly so the pool can *survive its own workers dying*:

* **function shipping** — tasks never pickle the point function.  Each
  task carries a ``(module, qualname)`` token; a worker resolves the
  token by import **once**, caches the callable in a per-process
  registry, and serves every later batch of any sweep using that
  function from the cache.  The parent verifies the token resolves back
  to the very callable it was given, so a closure, lambda or
  monkeypatched function silently falls back to inline execution
  instead of running the wrong code.
* **batching** — points are grouped into batches sized to a few batches
  per worker, amortising the per-task IPC round-trip that dominates
  cheap points.  Each worker holds at most two batches (one running,
  one prefetched) so a crash forfeits little; results are flattened
  back into strict input order.
* **failure isolation** — a worker wraps every point individually; a
  raising point yields an errored :class:`TaskResult` while the rest of
  the batch, the worker, and the pool live on.
* **self-healing** — the parent polls worker liveness (``exitcode``)
  while waiting for results.  A worker that dies (``kill -9``, OOM, a
  segfaulting extension) is respawned and its in-flight batches are
  requeued to the survivors, so an external kill costs only the points
  of the forfeited batches.  A batch that kills its worker repeatedly
  (:data:`MAX_BATCH_REQUEUES` exceeded) comes back as errored results
  instead of crash-looping the pool.
* **timeouts** — a per-point wall-clock ``timeout`` (see
  :meth:`PersistentBackend.map`) is enforced *inside* each worker via
  ``SIGALRM`` (:func:`repro.runner.backends.base.run_one`), so a hung
  point becomes an ordinary errored result, not a stuck sweep.

Use it whenever one session runs more than one sweep: the pool spin-up
that the ``process`` backend pays per sweep is paid once here, and
in-process memo caches inside worker processes (e.g. the robustness
baseline lookup) stay warm from sweep to sweep.
"""

from __future__ import annotations

import importlib
import os
import queue as queue_mod
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.runner.backends.base import (
    PointFn,
    TaskResult,
    pool_context,
    register,
    run_one,
)

__all__ = ["MAX_BATCH_REQUEUES", "PersistentBackend"]

Token = Tuple[str, str]  # (module, qualname)
#: A worker-side wrapper spec: factory token plus JSON-able kwargs.  The
#: worker resolves the factory by import and applies it to the resolved
#: point function (``factory(fn, requeue=n, **kwargs)``) — how the chaos
#: backend injects faults inside real workers without pickling closures.
WrapSpec = Tuple[str, str, Mapping[str, Any]]

#: Times a batch is re-dispatched after killing its worker before its
#: points are reported as errors instead (guards against a point that
#: deterministically crashes every process it touches).
MAX_BATCH_REQUEUES = 2

#: How often (seconds) the parent wakes from the result wait to poll
#: worker liveness.
_POLL_S = 0.05

#: Per-worker registry: token -> resolved point function.
_FN_CACHE: dict = {}
#: Test hook installed by the pool initializer; called on cache misses.
_RESOLVE_PROBE: Optional[Callable[[Token], None]] = None


def _init_worker(resolve_probe: Optional[Callable[[Token], None]]) -> None:
    """Worker start-up: begin with an empty function cache."""
    global _RESOLVE_PROBE
    _FN_CACHE.clear()
    _RESOLVE_PROBE = resolve_probe


def _resolve(token: Token) -> PointFn:
    """Import-resolve ``token``; memoized for the worker's lifetime."""
    fn = _FN_CACHE.get(token)
    if fn is None:
        if _RESOLVE_PROBE is not None:
            _RESOLVE_PROBE(token)
        module_name, qualname = token
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        fn = _FN_CACHE[token] = obj
    return fn


def apply_wrap(fn: PointFn, wrap: Optional[WrapSpec], requeue: int = 0) -> PointFn:
    """Apply a :data:`WrapSpec` to ``fn`` (identity when ``wrap`` is None).

    ``requeue`` is how many times the executing batch has already been
    re-dispatched after a worker crash; wrappers that model transient
    faults fold it into their attempt accounting.
    """
    if wrap is None:
        return fn
    module_name, qualname, kwargs = wrap
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj(fn, requeue=requeue, **kwargs)


def _run_batch(
    token: Token, batch: List[Mapping[str, Any]], options: Mapping[str, Any]
) -> List[Tuple[Any, float, Optional[str]]]:
    """Worker: evaluate one batch of points with the token's function.

    Every point is isolated; a resolution failure (module vanished
    between parent check and worker import) errors the whole batch but
    still returns results instead of raising through the pool.
    """
    try:
        fn = apply_wrap(
            _resolve(token), options.get("wrap"), options.get("requeue", 0)
        )
    except Exception:
        import traceback

        error = traceback.format_exc()
        return [(None, 0.0, error) for _ in batch]
    timeout = options.get("timeout")
    out = []
    for params in batch:
        result = run_one(fn, params, timeout=timeout)
        out.append((result.value, result.seconds, result.error))
    return out


def _worker_main(inq, outq, resolve_probe) -> None:
    """Worker process loop: serve batches until the ``None`` sentinel.

    The blocking ``get`` is bounded so the worker can notice it has
    been orphaned: a parent that is SIGKILLed never sends the sentinel,
    and a worker blocked forever on a dead queue leaks one process per
    crash.  Reparenting (``getppid`` changes) is the exit signal.
    """
    _init_worker(resolve_probe)
    parent = os.getppid()
    poll_s = float(os.environ.get("REPRO_WORKER_ORPHAN_POLL_S", "5.0"))
    while True:
        try:
            task = inq.get(timeout=poll_s)
        except queue_mod.Empty:
            if os.getppid() != parent:
                break  # orphaned: the pool owner died without cleanup
            continue
        if task is None:
            break
        gen, batch_id, token, batch, options = task
        outq.put((gen, batch_id, _run_batch(token, batch, options)))


def _token_for(fn: PointFn) -> Optional[Token]:
    """The importable address of ``fn``, or ``None`` when it has none.

    ``None`` (lambdas, closures, methods, monkeypatched replacements
    whose module attribute no longer is ``fn``) routes the call to the
    inline fallback.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    try:
        obj: Any = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except Exception:
        return None
    return (module, qualname) if obj is fn else None


class _Batch:
    """Parent-side bookkeeping for one dispatched batch."""

    __slots__ = ("id", "items", "requeues")

    def __init__(self, batch_id: int, items: List[Mapping[str, Any]]):
        self.id = batch_id
        self.items = items
        self.requeues = 0


class _Worker:
    """One managed worker process plus its private task queue."""

    __slots__ = ("process", "inq", "in_flight")

    def __init__(self, ctx, outq, resolve_probe):
        self.inq = ctx.Queue()
        self.in_flight: List[_Batch] = []
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.inq, outq, resolve_probe),
            daemon=True,
        )
        self.process.start()

    def alive(self) -> bool:
        return self.process.is_alive()


@register
class PersistentBackend:
    """A warm, self-healing worker pool shared by every sweep of a session."""

    name = "persistent"
    #: The chaos backend probes this: wrappers travel as import tokens
    #: in the task options and are applied inside the real workers.
    supports_wrap = True
    #: Group dispatch: batch items are plain mappings resolved by import
    #: token worker-side, exactly like per-point tasks.
    supports_batches = True

    def __init__(
        self,
        jobs: int = 1,
        batch_size: Optional[int] = None,
        resolve_probe: Optional[Callable[[Token], None]] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.batch_size = batch_size  # None: sized per map call
        self._resolve_probe = resolve_probe
        self._ctx = pool_context()
        self._workers: List[_Worker] = []
        self._outq = None
        self._gen = 0  # map-call generation; stale results are discarded
        #: Workers respawned after unexpected deaths (observability/tests).
        self.respawns = 0

    # -- pool lifecycle -------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._outq is None:
            self._outq = self._ctx.Queue()
        while len(self._workers) < self.jobs:
            self._workers.append(
                _Worker(self._ctx, self._outq, self._resolve_probe)
            )

    def warm(self) -> None:
        """Spawn the pool now instead of lazily at the first ``map``.

        The serve daemon calls this before starting any service thread,
        so the ``fork`` happens while the process is still
        single-threaded.
        """
        self._ensure_workers()

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (diagnostics and crash tests)."""
        return [
            w.process.pid for w in self._workers
            if w.process.pid is not None and w.alive()
        ]

    @property
    def _pool(self):
        """Truthy while warm workers exist (kept for back-compat probes)."""
        return tuple(self._workers) or None

    def close(self) -> None:
        """Shut the pool down; the next ``map`` would start a fresh one."""
        for worker in self._workers:
            try:
                worker.inq.put(None)
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join()
        self._drop_queues()

    def terminate(self) -> None:
        """Drop the pool *now*, abandoning any queued batches.

        The abort path: ``close()`` would first drain everything
        already submitted, which on an errored sweep means silently
        simulating the whole remainder before the failure surfaces.
        """
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join()
        self._drop_queues()

    def _drop_queues(self) -> None:
        self._workers = []
        if self._outq is not None:
            self._outq.close()
            self._outq = None

    def __enter__(self) -> "PersistentBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def _batches(self, items: Sequence[Mapping[str, Any]]) -> List[_Batch]:
        """Slice ``items`` into order-preserving batches.

        Default size targets ~4 batches per worker — large enough to
        amortise IPC on cheap points, small enough that the tail of a
        sweep still load-balances across the pool (and that a crashed
        worker forfeits little).
        """
        size = self.batch_size or max(1, len(items) // (self.jobs * 4))
        return [
            _Batch(i // size, list(items[i : i + size]))
            for i in range(0, len(items), size)
        ]

    def _dispatch(self, worker: _Worker, batch: _Batch, token, options) -> None:
        worker.in_flight.append(batch)
        worker.inq.put(
            (self._gen, batch.id, token, batch.items,
             {**options, "requeue": batch.requeues})
        )

    def _heal(self, pending: List[_Batch], done: Dict[int, list]) -> None:
        """Respawn dead workers, requeueing whatever they were running.

        A batch that has already crashed :data:`MAX_BATCH_REQUEUES`
        workers is completed as errored results instead of re-dispatched
        — one poisonous point must not crash-loop the pool forever.
        """
        for idx, worker in enumerate(self._workers):
            if worker.alive():
                continue
            worker.process.join()  # reap
            orphans, worker.in_flight = worker.in_flight, []
            self._workers[idx] = _Worker(
                self._ctx, self._outq, self._resolve_probe
            )
            self.respawns += 1
            for batch in orphans:
                if batch.id in done:
                    continue  # its result raced in just before the death
                batch.requeues += 1
                if batch.requeues > MAX_BATCH_REQUEUES:
                    done[batch.id] = [
                        (None, 0.0,
                         f"worker died {batch.requeues} times while computing "
                         f"this batch (params: {dict(params)!r})")
                        for params in batch.items
                    ]
                else:
                    pending.insert(0, batch)

    def map(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        attempt: int = 0,
        wrap: Optional[WrapSpec] = None,
    ) -> Iterator[TaskResult]:
        if not items:
            return
        token = _token_for(fn)
        if token is None or self.jobs <= 1:
            # Unshippable function, or nothing to fan out over: inline
            # is byte-identical and cheaper.  Wrappers still apply (the
            # chaos backend downgrades worker kills to exceptions here);
            # timeouts are not enforced inline, as with the serial
            # backend.
            inline_fn = apply_wrap(fn, wrap)
            for params in items:
                yield run_one(inline_fn, params)
            return

        self._gen += 1
        gen = self._gen
        self._ensure_workers()
        options = {"timeout": timeout, "wrap": wrap}
        batches = self._batches(items)
        total_batches = len(batches)
        pending = list(batches)
        done: Dict[int, list] = {}  # batch id -> raw result triples
        next_out = 0  # next batch id to yield
        delivered = 0

        def fill_workers() -> None:
            # Each worker holds at most 2 batches: one running, one
            # prefetched — enough to hide the dispatch round-trip, small
            # enough that a crash forfeits little work.
            for worker in self._workers:
                while pending and len(worker.in_flight) < 2:
                    self._dispatch(worker, pending.pop(0), token, options)

        def reap(batch_id: int) -> None:
            for worker in self._workers:
                for batch in worker.in_flight:
                    if batch.id == batch_id:
                        worker.in_flight.remove(batch)
                        return

        try:
            fill_workers()
            while next_out < total_batches:
                while next_out not in done:
                    try:
                        rgen, batch_id, results = self._outq.get(
                            timeout=_POLL_S
                        )
                    except queue_mod.Empty:
                        self._heal(pending, done)
                        fill_workers()
                        continue
                    if rgen != gen or batch_id in done:
                        continue  # stale generation or post-requeue duplicate
                    done[batch_id] = results
                    reap(batch_id)
                    fill_workers()
                for value, seconds, error in done.pop(next_out):
                    delivered += 1  # before the yield: a close() while
                    # suspended there must count this result as served
                    yield TaskResult(value=value, seconds=seconds, error=error)
                next_out += 1
        except GeneratorExit:
            # Closed by the consumer.  After the final result the frame
            # is still suspended at its last yield, so a close() on a
            # fully-served sweep lands here too — and must leave the
            # warm pool alone.  Only a genuine mid-sweep abandonment
            # (error abort with work still queued) terminates the pool:
            # the queued batches must not silently run to completion.
            if delivered < len(items):
                self.terminate()
            raise
