"""The execution-backend contract and registry.

An :class:`ExecutionBackend` turns a pure point function plus a list of
parameter mappings into an ordered stream of :class:`TaskResult`\\ s.
The sweep orchestrator (:mod:`repro.runner.sweep`) is the only caller;
it neither knows nor cares whether points ran inline, across a fresh
process pool, or on warm persistent workers — every backend obeys the
same three rules:

* **order** — results are yielded in input order, lazily, so the
  orchestrator can stream progress while later points still compute;
* **isolation** — a point that raises is reported as a
  :class:`TaskResult` with ``error`` set (full traceback text), never
  as an exception that kills the rest of the sweep.  The orchestrator
  decides whether to re-raise (:func:`repro.runner.sweep.run_sweep`'s
  ``on_error`` policy);
* **purity** — the point function must be a top-level callable and the
  items JSON-able mappings, exactly the rules sweep declarations
  already follow.

Backends are registered by name in :data:`BACKENDS`; future backends
(async, remote workers, sharded dispatch) plug in here without touching
the orchestrator.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "TaskResult",
    "create_backend",
    "resolve_backend",
]

PointFn = Callable[[Mapping[str, Any]], Any]


@dataclass(frozen=True)
class TaskResult:
    """One evaluated point, as reported by a backend.

    ``error`` is ``None`` on success, otherwise the formatted traceback
    text from the worker (process boundaries cannot reliably ship the
    exception object itself).  ``exception`` carries the original
    exception where one is available in-process (serial backend and
    inline fallbacks) so the orchestrator can chain it when re-raising.
    """

    value: Any
    seconds: float
    error: Optional[str] = None
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the sweep orchestrator requires of an execution backend."""

    name: str

    def map(
        self, fn: PointFn, items: Sequence[Mapping[str, Any]]
    ) -> Iterator[TaskResult]:
        """Yield one :class:`TaskResult` per item, lazily, in order."""
        ...

    def close(self) -> None:
        """Release any long-lived resources (worker pools)."""
        ...


def run_one(fn: PointFn, params: Mapping[str, Any]) -> TaskResult:
    """Evaluate one point inline, capturing failure as a result.

    The shared serial building block: the serial backend, the small-input
    fast paths of the pooled backends, and the persistent backend's
    unresolvable-function fallback all route through here, so error
    capture is identical everywhere.
    """
    start = time.perf_counter()
    try:
        value = fn(params)
    except Exception as exc:  # isolate the point, keep the sweep alive
        return TaskResult(
            value=None,
            seconds=time.perf_counter() - start,
            error=traceback.format_exc(),
            exception=exc,
        )
    return TaskResult(value=value, seconds=time.perf_counter() - start)


def pool_context() -> multiprocessing.context.BaseContext:
    """The pool start-method shared by every process-based backend:
    ``fork`` where available (no re-import cost, monkeypatched modules
    and pytest-loaded benchmark modules survive into workers), the
    platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: name -> backend class; classes take a single ``jobs`` constructor arg.
BACKENDS: Dict[str, Any] = {}


def register(cls):
    """Class decorator adding a backend to the registry by its ``name``."""
    BACKENDS[cls.name] = cls
    return cls


def create_backend(name: str, jobs: int = 1) -> ExecutionBackend:
    """Instantiate the backend registered as ``name``.

    Raises ``ValueError`` for unknown names (the CLI turns that into
    exit code 2).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return cls(jobs=jobs)


def resolve_backend(
    backend: "ExecutionBackend | str | None", jobs: int
) -> Tuple[ExecutionBackend, bool]:
    """Resolve a backend spec to ``(instance, owned)``.

    ``backend`` may be an instance (campaign-level reuse — the caller
    keeps ownership, so persistent workers stay warm across sweeps), a
    registry name, or ``None``/``"auto"``, which preserves the historic
    default: inline execution for ``jobs <= 1``, a fresh process pool
    otherwise.  ``owned`` tells the caller whether it must ``close()``
    the instance when done.
    """
    if backend is None or backend == "auto":
        name = "serial" if jobs <= 1 else "process"
        return create_backend(name, jobs), True
    if isinstance(backend, str):
        return create_backend(backend, jobs), True
    return backend, False
