"""The execution-backend contract and registry.

An :class:`ExecutionBackend` turns a pure point function plus a list of
parameter mappings into an ordered stream of :class:`TaskResult`\\ s.
The sweep orchestrator (:mod:`repro.runner.sweep`) is the only caller;
it neither knows nor cares whether points ran inline, across a fresh
process pool, or on warm persistent workers — every backend obeys the
same three rules:

* **order** — results are yielded in input order, lazily, so the
  orchestrator can stream progress while later points still compute;
* **isolation** — a point that raises is reported as a
  :class:`TaskResult` with ``error`` set (full traceback text), never
  as an exception that kills the rest of the sweep.  The orchestrator
  decides whether to re-raise (:func:`repro.runner.sweep.run_sweep`'s
  ``on_error`` policy);
* **purity** — the point function must be a top-level callable and the
  items JSON-able mappings, exactly the rules sweep declarations
  already follow.

Backends are registered by name in :data:`BACKENDS`; future backends
(async, remote workers, sharded dispatch) plug in here without touching
the orchestrator.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "BACKENDS",
    "CacheContext",
    "ExecutionBackend",
    "PointTimeout",
    "TaskResult",
    "create_backend",
    "resolve_backend",
]

PointFn = Callable[[Mapping[str, Any]], Any]


@dataclass(frozen=True)
class CacheContext:
    """Where a ``map`` call's results would be cached, for backends that
    can use it.

    The sweep orchestrator normally owns all cache traffic; a
    *distributed* backend (the ``remote`` backend and the ``repro
    serve`` daemon behind it) wants the addressing too, so the daemon
    can serve already-cached points without recomputing them and can
    journal freshly computed ones into the shared store the moment they
    finish — which is what bounds a daemon crash to the in-flight
    batches.  Backends opt in by setting ``supports_context = True``;
    everyone else keeps receiving the historic call signature, so the
    fault-tolerance layer's byte-invisibility guarantee is untouched.

    ``keys`` is aligned with the ``items`` of the same ``map`` call
    (one :func:`repro.runner.hashing.point_key` digest per item).
    """

    sweep: str
    root: str
    code: Optional[str]
    keys: Tuple[str, ...]


class PointTimeout(Exception):
    """A point exceeded its per-point wall-clock timeout.

    Raised *inside* the evaluating process by the ``SIGALRM`` guard in
    :func:`run_one`, so it is captured like any other point failure —
    an errored :class:`TaskResult` whose traceback names this class —
    and the retry layer above can treat timeouts as transient faults.
    """


@dataclass(frozen=True)
class TaskResult:
    """One evaluated point, as reported by a backend.

    ``error`` is ``None`` on success, otherwise the formatted traceback
    text from the worker (process boundaries cannot reliably ship the
    exception object itself).  ``exception`` carries the original
    exception where one is available in-process (serial backend and
    inline fallbacks) so the orchestrator can chain it when re-raising.
    """

    value: Any
    seconds: float
    error: Optional[str] = None
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the sweep orchestrator requires of an execution backend."""

    name: str

    def map(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        attempt: int = 0,
    ) -> Iterator[TaskResult]:
        """Yield one :class:`TaskResult` per item, lazily, in order.

        ``timeout`` asks for a per-point wall-clock bound; the pooled
        backends enforce it inside their workers (``SIGALRM``), the
        serial backend cannot preempt inline code and ignores it.
        ``attempt`` is the retry round the orchestrator is on (0 for
        the first pass); plain backends ignore it — it exists so the
        chaos wrapper can make injected faults *transient* (a fault
        triggered on attempt 0 deterministically clears on a retry).
        """
        ...

    def close(self) -> None:
        """Release any long-lived resources (worker pools)."""
        ...


def _alarm_handler(signum, frame):  # pragma: no cover - trivial
    raise PointTimeout("point exceeded its wall-clock timeout")


def run_one(
    fn: PointFn, params: Mapping[str, Any], timeout: Optional[float] = None
) -> TaskResult:
    """Evaluate one point inline, capturing failure as a result.

    The shared serial building block: the serial backend, the small-input
    fast paths of the pooled backends, and the persistent backend's
    unresolvable-function fallback all route through here, so error
    capture is identical everywhere.

    ``timeout`` (pooled workers only — the caller decides) arms a
    ``SIGALRM`` interval timer around the evaluation; an expiry raises
    :class:`PointTimeout`, captured like any other point failure.  The
    guard is skipped entirely when ``timeout`` is ``None``, keeping the
    failure-free default path byte-identical to the historic one, and
    is only effective in a process's main thread on platforms with
    ``setitimer`` (everywhere this repository targets).

    The guard is a save/restore bracket around ``SIGALRM``: a handler
    someone else installed before this call is put back afterwards, and
    a pending alarm they had armed is re-armed with whatever time it had
    left (floored at a tick so an alarm that would have fired during the
    point still fires promptly).  A point function is therefore free to
    run its own ``signal.alarm`` brackets — the guard re-checks the
    installed handler per point instead of trusting a sticky install —
    with the one unavoidable caveat that the user's alarm and the guard
    share the single ``ITIMER_REAL`` timer, so whichever was armed last
    wins for the remainder of that point.  The common case (consecutive
    guarded points, nothing else touching ``SIGALRM``) pays one
    ``getsignal`` and two ``setitimer`` calls, staying inside the retry
    layer's <5 % dispatch-overhead budget on batches of cheap points.
    """
    start = time.perf_counter()
    armed = False
    displaced_handler: Any = None
    restore_handler = False
    remaining = 0.0
    try:
        if timeout is not None and hasattr(signal, "setitimer"):
            try:
                displaced_handler = signal.getsignal(signal.SIGALRM)
                if displaced_handler is not _alarm_handler:
                    signal.signal(signal.SIGALRM, _alarm_handler)
                    restore_handler = True
                remaining = signal.setitimer(signal.ITIMER_REAL, timeout)[0]
                armed = True
            except ValueError:
                pass  # not the main thread: run unguarded
        try:
            value = fn(params)
        finally:
            if armed:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                if restore_handler:
                    signal.signal(signal.SIGALRM, displaced_handler)
                if remaining > 0.0:
                    elapsed = time.perf_counter() - start
                    signal.setitimer(
                        signal.ITIMER_REAL, max(remaining - elapsed, 1e-4)
                    )
    except Exception as exc:  # isolate the point, keep the sweep alive
        if isinstance(exc, PointTimeout):
            error = (
                f"PointTimeout: point exceeded the {timeout:g}s wall-clock "
                f"timeout\nparams: {dict(params)!r}\n"
            )
        else:
            error = traceback.format_exc()
        return TaskResult(
            value=None,
            seconds=time.perf_counter() - start,
            error=error,
            exception=exc,
        )
    return TaskResult(value=value, seconds=time.perf_counter() - start)


def pool_context() -> multiprocessing.context.BaseContext:
    """The pool start-method shared by every process-based backend:
    ``fork`` where available (no re-import cost, monkeypatched modules
    and pytest-loaded benchmark modules survive into workers), the
    platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: name -> backend class; classes take a single ``jobs`` constructor arg.
BACKENDS: Dict[str, Any] = {}


def register(cls):
    """Class decorator adding a backend to the registry by its ``name``."""
    BACKENDS[cls.name] = cls
    return cls


def create_backend(name: str, jobs: int = 1) -> ExecutionBackend:
    """Instantiate the backend registered as ``name``.

    Raises ``ValueError`` for unknown names (the CLI turns that into
    exit code 2).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return cls(jobs=jobs)


def resolve_backend(
    backend: "ExecutionBackend | str | None", jobs: int
) -> Tuple[ExecutionBackend, bool]:
    """Resolve a backend spec to ``(instance, owned)``.

    ``backend`` may be an instance (campaign-level reuse — the caller
    keeps ownership, so persistent workers stay warm across sweeps), a
    registry name, or ``None``/``"auto"``, which preserves the historic
    default: inline execution for ``jobs <= 1``, a fresh process pool
    otherwise.  ``owned`` tells the caller whether it must ``close()``
    the instance when done.
    """
    if backend is None or backend == "auto":
        name = "serial" if jobs <= 1 else "process"
        return create_backend(name, jobs), True
    if isinstance(backend, str):
        return create_backend(backend, jobs), True
    return backend, False
