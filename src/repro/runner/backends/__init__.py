"""Pluggable execution backends for the sweep runner.

Importing this package registers the built-in backends:

========== ==========================================================
``serial``     inline, zero overhead — the reference semantics
``process``    fresh pool per sweep, function shipped via initializer
``persistent`` warm self-healing workers reused across sweeps,
               batched dispatch, crash recovery
``chaos``      deterministic fault injection around any of the above
``remote``     dispatch through a ``repro serve`` daemon's warm pool
               over a local socket (leases, reconnect, resume tokens)
========== ==========================================================

See :mod:`repro.runner.backends.base` for the contract and
``docs/runner.md`` for when to pick which (including the
fault-tolerance semantics: per-point timeouts, worker respawn, chaos
profiles).
"""

from repro.runner.backends.base import (
    BACKENDS,
    CacheContext,
    ExecutionBackend,
    PointTimeout,
    TaskResult,
    create_backend,
    resolve_backend,
)
from repro.runner.backends.chaos import ChaosBackend, ChaosFault, ChaosSpec
from repro.runner.backends.persistent import PersistentBackend
from repro.runner.backends.process import ProcessBackend, parallel_map
from repro.runner.backends.remote import RemoteBackend
from repro.runner.backends.serial import SerialBackend

__all__ = [
    "BACKENDS",
    "CacheContext",
    "ChaosBackend",
    "ChaosFault",
    "ChaosSpec",
    "ExecutionBackend",
    "PersistentBackend",
    "PointTimeout",
    "ProcessBackend",
    "RemoteBackend",
    "SerialBackend",
    "TaskResult",
    "create_backend",
    "parallel_map",
    "resolve_backend",
]
