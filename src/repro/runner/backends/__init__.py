"""Pluggable execution backends for the sweep runner.

Importing this package registers the three built-in backends:

========== ==========================================================
``serial``     inline, zero overhead — the reference semantics
``process``    fresh pool per sweep, function shipped via initializer
``persistent`` warm workers reused across sweeps, batched dispatch
========== ==========================================================

See :mod:`repro.runner.backends.base` for the contract and
``docs/runner.md`` for when to pick which.
"""

from repro.runner.backends.base import (
    BACKENDS,
    ExecutionBackend,
    TaskResult,
    create_backend,
    resolve_backend,
)
from repro.runner.backends.persistent import PersistentBackend
from repro.runner.backends.process import ProcessBackend, parallel_map
from repro.runner.backends.serial import SerialBackend

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "PersistentBackend",
    "ProcessBackend",
    "SerialBackend",
    "TaskResult",
    "create_backend",
    "parallel_map",
    "resolve_backend",
]
