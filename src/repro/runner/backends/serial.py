"""Inline execution — the zero-overhead reference backend.

Runs every point in the calling process, in order.  Closures and
monkeypatched functions work (nothing is pickled), there is no pool to
spin up, and the original exception object is preserved so ``on_error=
"raise"`` can chain it.  This is the default for ``jobs <= 1`` and the
oracle the pooled backends are tested byte-identical against.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.runner.backends.base import PointFn, TaskResult, register, run_one

__all__ = ["SerialBackend"]


@register
class SerialBackend:
    """Evaluate points inline in the calling process.

    ``timeout`` is accepted but **not enforced**: there is no worker to
    preempt, and arming signal timers in the caller's process would
    interfere with whatever embeds the library.  Pick a pooled backend
    when timeout enforcement matters (see ``docs/runner.md``).
    """

    name = "serial"
    supports_batches = True

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = 1  # by definition

    def map(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        attempt: int = 0,
    ) -> Iterator[TaskResult]:
        for params in items:
            yield run_one(fn, params)

    def close(self) -> None:  # nothing held
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
