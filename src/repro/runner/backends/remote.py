"""The ``remote`` backend: sweeps through the ``repro serve`` daemon.

:class:`RemoteBackend` obeys the same three backend rules as everyone
else — ordered lazy results, failures as errored :class:`TaskResult`\\ s,
importable point functions — but evaluates nothing itself: it ships the
point function as a ``(module, qualname)`` token plus the raw items to
the daemon, which computes on its warm pool and streams one event per
resolved point back over the socket.  Events can arrive out of input
order (the daemon serves cache hits immediately); a small reorder
buffer releases results in order as the ready prefix grows.

The backend is where the *client-side* robustness policy lives:

* a dropped connection re-attaches with the session's resume token and
  the last ``seq`` seen, replaying missed events from the daemon's
  ring buffer;
* an ``unknown-token`` reply (the daemon was restarted — its sessions
  died with it) or a ``gap`` (we were away longer than the ring
  remembers) falls back to **resubmitting only the not-yet-received
  points**, which is cheap because everything the old incarnation
  completed is served straight from the shared result cache;
* when the reconnect budget (``$REPRO_REMOTE_RETRIES``, delay
  ``$REPRO_REMOTE_RETRY_DELAY``) runs dry, the still-missing points
  resolve as errored results — the backend contract forbids raising
  mid-sweep — so ``sweep`` exits nonzero and ``--resume`` completes
  the campaign once a daemon is back.

Only an unreachable daemon *before any work starts* raises
(:class:`DaemonUnreachable`): that is a configuration error, not a
mid-campaign fault, and deserves a loud immediate failure.

Chaos integration (``supports_connection_chaos``): the chaos wrapper
hands this backend a ``faults`` map of item index → ``"drop"`` (sever
the socket abruptly after that result arrives) or ``"dkill"``
(``SIGKILL`` the daemon itself, pid learned from the hello reply).
Both are injected through the real transport, so the reconnect and
resubmit paths above are exercised by genuine torn streams.
"""

from __future__ import annotations

import os
import signal as _signal
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.runner.backends.base import (
    CacheContext,
    PointFn,
    TaskResult,
    register,
    run_one,
)
from repro.runner.backends.persistent import _token_for, apply_wrap
from repro.service.client import (
    DaemonUnreachable,
    ServeAborted,
    ServeClient,
    ServeError,
)
from repro.service.protocol import FrameError

__all__ = ["RemoteBackend"]


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


@register
class RemoteBackend:
    """Dispatch points to a ``repro serve`` daemon over a local socket."""

    name = "remote"
    #: Wrap tokens (chaos) travel through the protocol into the
    #: daemon's pool workers, like the persistent backend they run on.
    supports_wrap = True
    #: The orchestrator passes cache addressing so the daemon can serve
    #: hits and journal fresh results into the shared store.
    supports_context = True
    #: The chaos wrapper may inject connection drops / daemon kills.
    supports_connection_chaos = True
    #: Group dispatch: batch items are plain mappings resolved by import
    #: token daemon-side, exactly like per-point tasks.
    supports_batches = True

    def __init__(
        self,
        jobs: int = 1,
        socket_path: Optional[str] = None,
    ) -> None:
        # ``jobs`` is accepted for registry uniformity; parallelism is
        # the daemon's (it owns the pool), not the client's.
        self.jobs = max(1, jobs)
        self.socket_path = socket_path
        self.reconnect_retries = _env_int("REPRO_REMOTE_RETRIES", 5)
        self.reconnect_delay = _env_float("REPRO_REMOTE_RETRY_DELAY", 0.25)
        #: Connection kept warm between map() calls: a campaign of many
        #: sweeps pays connect+hello once, not once per sweep.
        self._warm_client: Optional[ServeClient] = None

    # -- backend contract ----------------------------------------------

    def map(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        attempt: int = 0,
        wrap: Optional[Tuple[str, str, Dict[str, Any]]] = None,
        context: Optional[CacheContext] = None,
        faults: Optional[Dict[int, str]] = None,
    ) -> Iterator[TaskResult]:
        del attempt  # retry rounds resubmit; the daemon has no use for it
        items = list(items)
        if not items:
            return iter(())
        token = _token_for(fn)
        if token is None:
            # A closure or <locals> function cannot cross the socket by
            # name; evaluate inline, like the persistent pool's own
            # unresolvable-function fallback.
            return self._inline(fn, items, timeout, wrap)
        return self._stream(token, items, timeout, wrap, context, dict(faults or {}))

    def close(self) -> None:
        """Drop the warm connection; the daemon outlives us."""
        if self._warm_client is not None:
            self._warm_client.close()
            self._warm_client = None

    def __enter__(self) -> "RemoteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def _inline(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        timeout: Optional[float],
        wrap,
    ) -> Iterator[TaskResult]:
        wrapped = apply_wrap(fn, wrap)
        for params in items:
            yield run_one(wrapped, params, timeout)

    def _stream(
        self,
        fn_token: Tuple[str, str],
        items: List[Mapping[str, Any]],
        timeout: Optional[float],
        wrap,
        context: Optional[CacheContext],
        faults: Dict[int, str],
    ) -> Iterator[TaskResult]:
        total = len(items)
        sweep = context.sweep if context is not None else "adhoc"
        keys = list(context.keys) if context is not None else None
        client, self._warm_client = self._warm_client, None
        if client is None or not client.connected:
            client = ServeClient(self.socket_path)
            client.connect()  # unreachable before any work: raise, loudly
        keep = False
        received: Dict[int, TaskResult] = {}
        next_out = 0
        session_token: Optional[str] = None
        #: daemon-side index -> our index for the current submission.
        index_map: List[int] = []
        last_seq = 0
        retries_left = self.reconnect_retries
        try:
            while len(received) < total:
                try:
                    if not client.connected:
                        client.connect()
                    if session_token is None:
                        index_map = [i for i in range(total) if i not in received]
                        reply = client.submit(
                            sweep,
                            [items[i] for i in index_map],
                            [keys[i] for i in index_map] if keys else None,
                            fn_token,
                            timeout=timeout,
                            wrap=wrap,
                        )
                        session_token = reply["token"]
                        last_seq = 0
                    terminal = None
                    for frame in client.events():
                        last_seq = int(frame.get("seq", last_seq))
                        event = frame.get("event")
                        if event == "result":
                            local = index_map[int(frame["index"])]
                            if local not in received:
                                received[local] = TaskResult(
                                    value=frame.get("value"),
                                    seconds=float(frame.get("seconds") or 0.0),
                                    error=frame.get("error"),
                                )
                            # Hold the last result back until the
                            # terminal frame is consumed: the caller
                            # stops pulling at the final yield, and the
                            # connection is only reusable once "done"
                            # has been read off it.
                            while next_out in received and len(received) < total:
                                yield received[next_out]
                                next_out += 1
                            self._maybe_inject(client, faults.pop(local, None))
                        else:
                            terminal = frame
                            break
                    if terminal is None:
                        raise FrameError("event stream ended without a terminal")
                    kind = terminal.get("event")
                    if kind == "done":
                        keep = True  # stream ended in sync: reusable
                        break  # everything submitted has resolved
                    if kind == "abort":
                        raise ServeAborted(
                            str(terminal.get("reason") or "request aborted")
                        )
                    # gap: the ring forgot our position; the cache has
                    # everything completed meanwhile — resubmit the rest.
                    client.close()
                    session_token = None
                except ServeAborted:
                    raise
                except ServeError as exc:
                    # attach/submit rejected: unknown-token means the
                    # daemon restarted and owes us nothing — resubmit.
                    session_token = None
                    client.close()
                    if "unknown-token" not in str(exc):
                        retries_left -= 1
                        if retries_left < 0:
                            self._fail_missing(received, total, exc)
                            break
                        time.sleep(self.reconnect_delay)
                except (OSError, FrameError, DaemonUnreachable) as exc:
                    client.close()
                    retries_left -= 1
                    if retries_left < 0:
                        self._fail_missing(received, total, exc)
                        break
                    time.sleep(self.reconnect_delay)
                    if session_token is not None:
                        try:
                            client.connect()
                            client.attach(session_token, last_seq)
                        except ServeError:
                            # unknown-token: a restarted daemon owes us
                            # nothing — resubmit what is still missing.
                            client.close()
                            session_token = None
                        except (OSError, FrameError, DaemonUnreachable):
                            client.close()  # next iteration retries
        except ServeAborted as exc:
            self._fail_missing(received, total, exc)
        finally:
            if keep and client.connected and self._warm_client is None:
                self._warm_client = client
            else:
                client.close()
        if len(received) < total:
            self._fail_missing(
                received, total,
                ServeError("stream ended with results missing"),
            )
        while next_out < total:
            # Flush the tail: either the terminal arrived with results
            # buffered out of order, or _fail_missing errored the rest.
            yield received[next_out]
            next_out += 1

    def _maybe_inject(self, client: ServeClient, fault: Optional[str]) -> None:
        """Fire a chaos connection fault through the real transport."""
        if fault == "drop":
            client.drop_connection()
            raise FrameError("chaos: injected connection drop")
        if fault == "dkill":
            if client.daemon_pid:
                try:
                    os.kill(client.daemon_pid, _signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
            client.close()
            raise FrameError("chaos: injected daemon kill")

    @staticmethod
    def _fail_missing(
        received: Dict[int, TaskResult], total: int, exc: Exception
    ) -> None:
        """Resolve every still-missing point as an errored result —
        the backend contract forbids raising mid-sweep."""
        error = (
            f"{type(exc).__name__}: {exc}\n"
            "remote backend lost the sweep daemon; rerun with --resume "
            "once a daemon is serving again\n"
        )
        for idx in range(total):
            if idx not in received:
                received[idx] = TaskResult(
                    value=None, seconds=0.0, error=error, exception=exc
                )
