"""Deterministic fault injection around any execution backend.

The :class:`ChaosBackend` wraps an inner backend and injects faults
into point evaluation at configurable rates: transient **exceptions**
(:class:`ChaosFault`), **hangs** (a sleep long enough to trip the
per-point timeout, when one is set), and **worker crashes** (a real
``SIGKILL`` of the evaluating worker — only where the inner backend can
heal from one, i.e. the persistent pool; elsewhere the kill is
downgraded to an exception).  It exists as the test substrate for the
runner's fault-tolerance layer: retries, timeouts, the circuit breaker
and the persistent pool's self-healing are all proven against it, in
tests and in the CI ``chaos-matrix`` job.

Every decision is **seeded and deterministic**: whether a point is
faulty is a pure function of ``(seed, canonical params, channel)``, and
whether a triggered fault *persists* at a given retry attempt is
governed by ``sticky``:

* ``sticky = 1`` (default) — transient: the fault fires on the first
  attempt and deterministically clears on the first retry, so a run
  with ``retries >= 1`` converges to results byte-identical to the
  failure-free run;
* ``sticky = k`` — the fault survives ``k`` attempts;
* ``sticky = -1`` (``"permanent"``) — the fault never clears: the
  quarantine / circuit-breaker paths.

The wrapper reaches real worker processes two ways: pickled by value
for the fresh-pool ``process`` backend (the :class:`_ChaosWrapped`
callable carries only scalars and an importable function reference),
and as an import-token :data:`~repro.runner.backends.persistent.WrapSpec`
for the ``persistent`` backend (whose tasks never pickle callables).
Crash injection folds the pool's batch ``requeue`` count into the
attempt, so a transient crash kills a worker exactly once and the
requeued batch survives.

CLI: ``python -m repro sweep NAME --chaos "fail=0.2,seed=7" --retries 2``
(see :func:`ChaosSpec.parse` for the accepted keys).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.runner.backends.base import (
    ExecutionBackend,
    PointFn,
    TaskResult,
    register,
)
from repro.runner.hashing import canonical_params

__all__ = [
    "ChaosBackend",
    "ChaosFault",
    "ChaosSpec",
    "chaos_wrap",
    "decide",
    "decide_connection",
]

#: PID of the process that imported this module first (the orchestrator
#: under ``fork``).  Crash injection must never SIGKILL it.
_MAIN_PID = os.getpid()


class ChaosFault(RuntimeError):
    """An injected (synthetic) point failure."""


@dataclass(frozen=True)
class ChaosSpec:
    """Fault rates and determinism knobs for one chaos profile.

    Rates are independent per-point probabilities in ``[0, 1]``; when a
    point draws several channels, the most severe one wins
    (crash > hang > fail).
    """

    fail: float = 0.0    #: transient-exception probability
    hang: float = 0.0    #: hang (sleep) probability
    crash: float = 0.0   #: worker SIGKILL probability
    drop: float = 0.0    #: connection-drop probability (remote backend)
    dkill: float = 0.0   #: daemon SIGKILL probability (remote backend)
    hang_s: float = 0.5  #: injected hang duration, seconds
    seed: int = 0        #: decision seed
    sticky: int = 1      #: attempts a fault persists; -1 = permanent

    def __post_init__(self) -> None:
        for channel in ("fail", "hang", "crash", "drop", "dkill"):
            rate = getattr(self, channel)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos {channel} rate must be in [0, 1], got {rate}")
        if self.hang_s <= 0:
            raise ValueError(f"chaos hang_s must be positive, got {self.hang_s}")
        if self.sticky == 0 or self.sticky < -1:
            raise ValueError(
                f"chaos sticky must be a positive attempt count or -1 "
                f"(permanent), got {self.sticky}"
            )

    @property
    def active(self) -> bool:
        return self.point_active or self.connection_active

    @property
    def point_active(self) -> bool:
        """Any in-worker fault channel armed (fail/hang/crash)."""
        return (self.fail or self.hang or self.crash) != 0.0

    @property
    def connection_active(self) -> bool:
        """Any transport fault channel armed (drop/dkill) — only
        meaningful over a backend with ``supports_connection_chaos``
        (the ``remote`` backend); ignored elsewhere."""
        return (self.drop or self.dkill) != 0.0

    @staticmethod
    def parse(arg: str) -> "ChaosSpec":
        """Parse the CLI's ``--chaos`` profile string.

        Comma-separated ``key=value`` pairs over the dataclass fields,
        e.g. ``"fail=0.2,hang=0.05,seed=7"`` or
        ``"fail=0.5,sticky=permanent"``.
        """
        kwargs: dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in arg.split(","))):
            key, eq, value = part.partition("=")
            if not eq:
                raise ValueError(
                    f"bad chaos spec fragment {part!r}: expected key=value"
                )
            if key not in ChaosSpec.__dataclass_fields__:
                raise ValueError(
                    f"unknown chaos key {key!r}; known: "
                    f"{', '.join(ChaosSpec.__dataclass_fields__)}"
                )
            if key in ("seed", "sticky"):
                kwargs[key] = -1 if value == "permanent" else int(value)
            else:
                kwargs[key] = float(value)
        return ChaosSpec(**kwargs)


def _fraction(seed: int, params_json: str, channel: str) -> float:
    """A deterministic uniform draw in [0, 1) for one (point, channel)."""
    digest = hashlib.sha256(
        f"{seed}\0{params_json}\0{channel}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def decide(
    spec: ChaosSpec, params: Mapping[str, Any], attempt: int
) -> Optional[str]:
    """The fault channel injected for ``params`` at ``attempt``, if any.

    Whether a point is faulty depends only on ``(seed, params,
    channel)`` — not the attempt — so a faulty point is *the same*
    faulty point on every run.  ``sticky`` then decides whether the
    fault still fires at this attempt number.
    """
    if not spec.active:
        return None
    persists = spec.sticky < 0 or attempt < spec.sticky
    if not persists:
        return None
    params_json = canonical_params(params)
    for channel in ("crash", "hang", "fail"):  # most severe first
        if _fraction(spec.seed, params_json, channel) < getattr(spec, channel):
            return channel
    return None


def decide_connection(
    spec: ChaosSpec, params: Mapping[str, Any], attempt: int = 0
) -> Optional[str]:
    """The transport fault injected after ``params`` resolves, if any.

    Same determinism contract as :func:`decide` — a pure function of
    ``(seed, canonical params, channel)``, with ``sticky`` deciding
    whether it still fires at this attempt — over the connection
    channels: ``dkill`` (SIGKILL the daemon) beats ``drop`` (sever the
    client socket).
    """
    if not spec.connection_active:
        return None
    if not (spec.sticky < 0 or attempt < spec.sticky):
        return None
    params_json = canonical_params(params)
    for channel in ("dkill", "drop"):  # most severe first
        if _fraction(spec.seed, params_json, channel) < getattr(spec, channel):
            return channel
    return None


class _ChaosWrapped:
    """A picklable callable injecting faults around one point function.

    Carries only scalars plus a reference to an importable function, so
    it crosses process boundaries by value (the ``process`` backend's
    initializer) as well as being buildable worker-side from a
    :func:`chaos_wrap` token (the ``persistent`` backend).
    """

    def __init__(
        self, fn: PointFn, spec: ChaosSpec, attempt: int, kill: bool
    ) -> None:
        self.fn = fn
        self.spec = spec
        self.attempt = attempt
        self.kill = kill

    def __call__(self, params: Mapping[str, Any]) -> Any:
        channel = decide(self.spec, params, self.attempt)
        if channel == "crash":
            if self.kill and os.getpid() != _MAIN_PID:
                os.kill(os.getpid(), signal.SIGKILL)  # a real worker death
            raise ChaosFault(
                f"injected worker crash (inline) for params {dict(params)!r}"
            )
        if channel == "hang":
            # A hang, not a failure: the point eventually completes with
            # the correct value unless a per-point timeout reaps it first.
            time.sleep(self.spec.hang_s)
        elif channel == "fail":
            raise ChaosFault(
                f"injected transient failure for params {dict(params)!r} "
                f"(attempt {self.attempt})"
            )
        return self.fn(params)


def chaos_wrap(
    fn: PointFn,
    *,
    requeue: int = 0,
    spec: Mapping[str, Any],
    attempt: int,
    kill: bool,
) -> PointFn:
    """Worker-side wrap factory (resolved by import token).

    ``requeue`` — how many times the executing batch was re-dispatched
    after a worker crash — advances the attempt count, which is what
    makes an injected *crash* transient: the requeued batch runs at
    ``attempt + 1`` and (under the default ``sticky=1``) passes.
    """
    return _ChaosWrapped(fn, ChaosSpec(**spec), attempt + requeue, kill)


@register
class ChaosBackend:
    """An :class:`ExecutionBackend` injecting faults around another one.

    Construct with the inner backend (an instance or a registry name)
    and a :class:`ChaosSpec`.  The registry entry exists so ``chaos``
    shows up beside the real backends; a bare ``create_backend("chaos",
    jobs)`` wraps a serial inner with a no-fault spec — the CLI always
    builds it explicitly around the ``--backend`` choice.
    """

    name = "chaos"

    def __init__(
        self,
        jobs: int = 1,
        inner: "ExecutionBackend | str | None" = None,
        spec: Optional[ChaosSpec] = None,
    ) -> None:
        from repro.runner.backends.base import create_backend

        if inner is None or isinstance(inner, str):
            inner = create_backend(inner or "serial", jobs=jobs)
        self.inner = inner
        self.spec = spec or ChaosSpec()
        self.jobs = getattr(inner, "jobs", jobs)

    @property
    def supports_context(self) -> bool:
        """Pass-through: cache addressing reaches a remote inner."""
        return bool(getattr(self.inner, "supports_context", False))

    @property
    def supports_batches(self) -> bool:
        """Pass-through: group dispatch works wherever the inner does
        (the injected faults then hit whole groups, which the runner
        heals by re-dispatching each point through the scalar path)."""
        return bool(getattr(self.inner, "supports_batches", False))

    def map(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        attempt: int = 0,
        context=None,
    ) -> Iterator[TaskResult]:
        extra: dict[str, Any] = {}
        if context is not None and self.supports_context:
            extra["context"] = context
        # Transport faults: one injection per faulty item index, fired
        # by the inner backend after that item's result arrives.
        faults: dict[int, str] = {}
        if self.spec.connection_active and getattr(
            self.inner, "supports_connection_chaos", False
        ):
            for idx, params in enumerate(items):
                channel = decide_connection(self.spec, params, attempt)
                if channel is not None:
                    faults[idx] = channel
        if faults:
            extra["faults"] = faults
        if not self.spec.point_active:
            if extra:
                yield from self.inner.map(fn, items, timeout=timeout, **extra)
            else:
                yield from self.inner.map(
                    fn, items, timeout=timeout, attempt=attempt
                )
            return
        # Real kills only where the inner pool heals from worker death.
        kill = bool(
            getattr(self.inner, "supports_wrap", False) and self.inner.jobs > 1
        )
        if getattr(self.inner, "supports_wrap", False):
            wrap = (
                __name__, "chaos_wrap",
                {"spec": asdict(self.spec), "attempt": attempt, "kill": kill},
            )
            yield from self.inner.map(
                fn, items, timeout=timeout, wrap=wrap, **extra
            )
        else:
            wrapped = _ChaosWrapped(fn, self.spec, attempt, kill)
            yield from self.inner.map(wrapped, items, timeout=timeout)

    def close(self) -> None:
        self.inner.close()

    def terminate(self) -> None:
        """Abort path: forward to the inner pool's immediate teardown
        where it has one, else its ordinary close."""
        terminate = getattr(self.inner, "terminate", None)
        (terminate or self.inner.close)()

    def __enter__(self) -> "ChaosBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
