"""Fresh-pool process backend — one pool per ``map`` call.

The point function is shipped **once per worker** through the pool
initializer (it lands in a module global), so each task pickles only
its parameter mapping.  The previous runner pickled ``(fn, params)``
per task; for a top-level function the reference is small, but the
initializer route means the per-task payload is exactly the params and
nothing else, and it is the same mechanism the persistent backend's
worker-side function cache builds on.

:func:`parallel_map` keeps the historic helper API (yield
``(value, seconds)``, propagate exceptions) for callers that want raw
fan-out without the sweep orchestrator.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.runner.backends.base import (
    PointFn,
    TaskResult,
    pool_context,
    register,
    run_one,
)

__all__ = ["ProcessBackend", "parallel_map"]

#: The point function installed in this worker by the pool initializer.
_WORKER_FN: Optional[PointFn] = None
#: Per-point wall-clock timeout installed alongside it (``None`` = off).
_WORKER_TIMEOUT: Optional[float] = None


def _install_fn(
    fn: PointFn,
    on_install: Optional[Callable[[], None]] = None,
    timeout: Optional[float] = None,
) -> None:
    """Pool initializer: receive the point function once per worker."""
    global _WORKER_FN, _WORKER_TIMEOUT
    _WORKER_FN = fn
    _WORKER_TIMEOUT = timeout
    if on_install is not None:
        on_install()


def _run_installed(params: Mapping[str, Any]) -> Tuple[Any, float, Optional[str]]:
    """Worker task: run the installed function on one point, capturing
    failure as ``(None, seconds, traceback)`` — plain tuples cross the
    pipe cheaply and unconditionally."""
    result = run_one(_WORKER_FN, params, timeout=_WORKER_TIMEOUT)
    return result.value, result.seconds, result.error


def _run_installed_raw(params: Mapping[str, Any]) -> Tuple[Any, float]:
    """Worker task for :func:`parallel_map`: exceptions propagate."""
    start = time.perf_counter()
    value = _WORKER_FN(params)
    return value, time.perf_counter() - start


@register
class ProcessBackend:
    """A fresh ``multiprocessing`` pool per sweep.

    Simple and hermetic — worker state cannot leak between sweeps —
    at the cost of paying pool start-up once per ``map`` call.  Small
    inputs (one point, or ``jobs <= 1``) run inline, preserving the
    historic serial fast path where closures work and tests can
    monkeypatch the point function.
    """

    name = "process"
    #: Group dispatch: a batch item is an ordinary picklable mapping, so
    #: the pool ships point-groups the same way it ships points.
    supports_batches = True

    def __init__(self, jobs: int = 1, initializer_probe=None) -> None:
        self.jobs = max(1, jobs)
        # Test hook: called in each worker when the function is installed.
        self._initializer_probe = initializer_probe

    def map(
        self,
        fn: PointFn,
        items: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        attempt: int = 0,
    ) -> Iterator[TaskResult]:
        workers = min(self.jobs, len(items))
        if workers <= 1:
            for params in items:
                yield run_one(fn, params)
            return
        with pool_context().Pool(
            processes=workers,
            initializer=_install_fn,
            initargs=(fn, self._initializer_probe, timeout),
        ) as pool:
            for value, seconds, error in pool.imap(
                _run_installed, list(items), chunksize=1
            ):
                yield TaskResult(value=value, seconds=seconds, error=error)

    def close(self) -> None:  # pools are per-call; nothing persists
        pass

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_map(
    fn: PointFn, items: Sequence[Mapping[str, Any]], jobs: int
) -> Iterator[Tuple[Any, float]]:
    """Yield ``(value, seconds)`` for each item, in input order.

    ``jobs <= 1`` (or a single item) runs inline — no pool, so closures
    and monkeypatched functions work in tests and callers pay zero
    process overhead on the serial path.  The point function is sent
    once per worker via the pool initializer; every task pickles only
    its params.  Behaviour is byte-identical to the historic
    ``runner.pool.parallel_map``, including exception propagation.
    """
    if jobs <= 1 or len(items) <= 1:
        for params in items:
            start = time.perf_counter()
            value = fn(params)
            yield value, time.perf_counter() - start
        return
    with pool_context().Pool(
        processes=min(jobs, len(items)),
        initializer=_install_fn,
        initargs=(fn,),
    ) as pool:
        yield from pool.imap(_run_installed_raw, list(items), chunksize=1)
