"""Block-partitioned matrices (Section 2.1 of the paper).

The atomic data unit throughout the paper is a square q×q *block* of
matrix elements (q chosen to make Level-3 BLAS efficient; 80 or 100).
For the product ``C ← C + A·B``:

* ``A`` is ``r`` stripes × ``t`` blocks  (size ``n_A × n_AB`` elements),
* ``B`` is ``t`` blocks × ``s`` stripes  (size ``n_AB × n_B``),
* ``C`` is ``r × s`` blocks.

This subpackage provides:

* :class:`~repro.blocks.shape.ProblemShape` — the pure-size view
  ``(r, s, t, q)`` used by schedulers and cost analysis,
* :class:`~repro.blocks.matrix.BlockMatrix` — a numpy-backed matrix with
  block get/set accessors, used by the execution engine to verify that a
  schedule really computes ``C + A·B``,
* verification helpers in :mod:`repro.blocks.verify`.
"""

from repro.blocks.matrix import BlockMatrix
from repro.blocks.shape import ProblemShape
from repro.blocks.verify import make_product_instance, max_block_error, verify_product

__all__ = [
    "BlockMatrix",
    "ProblemShape",
    "make_product_instance",
    "max_block_error",
    "verify_product",
]
