"""Numerical verification helpers for executed schedules.

A schedule is *numerically correct* when the C matrix it produces equals
``C0 + A·B`` computed directly by numpy.  These helpers build seeded
random instances and compare results with a norm-aware tolerance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blocks.matrix import BlockMatrix
from repro.blocks.shape import ProblemShape

__all__ = ["make_product_instance", "verify_product", "max_block_error"]


def make_product_instance(
    shape: ProblemShape, seed: int = 0
) -> Tuple[BlockMatrix, BlockMatrix, BlockMatrix]:
    """Build seeded random ``(A, B, C0)`` matrices matching ``shape``.

    Returns matrices with block grids ``r×t``, ``t×s`` and ``r×s``.
    """
    rng = np.random.default_rng(seed)
    a = BlockMatrix.random(shape.r, shape.t, shape.q, rng)
    b = BlockMatrix.random(shape.t, shape.s, shape.q, rng)
    c = BlockMatrix.random(shape.r, shape.s, shape.q, rng)
    return a, b, c


def verify_product(
    a: BlockMatrix,
    b: BlockMatrix,
    c0: BlockMatrix,
    c_result: BlockMatrix,
    rtol: float = 1e-10,
    method: str = "dense",
    rounds: int = 16,
    seed: int = 0,
) -> bool:
    """True when ``c_result == c0 + a·b`` up to relative tolerance.

    Two verification methods:

    * ``"dense"`` — compute the full reference product ``c0 + a·b`` and
      compare elementwise (O(n·m·k) work, exact localisation).
    * ``"freivalds"`` — Freivalds' randomized check: for random vectors
      ``x`` test ``c_result·x ≈ c0·x + a·(b·x)``, which needs only
      matrix-vector products (O(n·m) per round).  A wrong product
      passes one round with probability < 1/2 even against adversarial
      errors (for random sign vectors), so ``rounds`` independent
      vectors drive the false-accept probability below ``2**-rounds``;
      use it to verify large executed schedules without paying for a
      second dense multiplication.

    The tolerance is scaled by a norm estimate of the reference so that
    large inner dimensions (many accumulated updates) do not trip
    spurious failures.
    """
    if method == "dense":
        reference = c0.array + a.array @ b.array
        scale = max(1.0, float(np.abs(reference).max()))
        return bool(
            np.allclose(c_result.array, reference, rtol=rtol, atol=rtol * scale)
        )
    if method != "freivalds":
        raise ValueError(f"unknown method {method!r} (dense or freivalds)")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    rng = np.random.default_rng(seed)
    aa, ba, ca, ra = a.array, b.array, c0.array, c_result.array
    cols = ra.shape[1]
    # Magnitude scale of the accumulated entries, without forming the
    # dense product: |C0| + |A|·|B| row/column norms bound each entry.
    scale = max(
        1.0,
        float(np.abs(ca).max(initial=0.0)),
        float(np.abs(aa).max(initial=0.0))
        * float(np.abs(ba).max(initial=0.0))
        * aa.shape[1],
    )
    for _ in range(rounds):
        x = rng.choice((-1.0, 1.0), size=cols)
        lhs = ra @ x
        rhs = ca @ x + aa @ (ba @ x)
        # Each component accumulates ~cols signed terms: allow sqrt-of-
        # length growth on top of the entry scale.
        tol = rtol * scale * max(1.0, cols) ** 0.5
        if not np.allclose(lhs, rhs, rtol=rtol, atol=tol):
            return False
    return True


def max_block_error(
    a: BlockMatrix, b: BlockMatrix, c0: BlockMatrix, c_result: BlockMatrix
) -> float:
    """Largest absolute element error of ``c_result`` vs ``c0 + a·b``."""
    reference = c0.array + a.array @ b.array
    return float(np.abs(c_result.array - reference).max())
