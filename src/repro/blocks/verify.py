"""Numerical verification helpers for executed schedules.

A schedule is *numerically correct* when the C matrix it produces equals
``C0 + A·B`` computed directly by numpy.  These helpers build seeded
random instances and compare results with a norm-aware tolerance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blocks.matrix import BlockMatrix
from repro.blocks.shape import ProblemShape

__all__ = ["make_product_instance", "verify_product", "max_block_error"]


def make_product_instance(
    shape: ProblemShape, seed: int = 0
) -> Tuple[BlockMatrix, BlockMatrix, BlockMatrix]:
    """Build seeded random ``(A, B, C0)`` matrices matching ``shape``.

    Returns matrices with block grids ``r×t``, ``t×s`` and ``r×s``.
    """
    rng = np.random.default_rng(seed)
    a = BlockMatrix.random(shape.r, shape.t, shape.q, rng)
    b = BlockMatrix.random(shape.t, shape.s, shape.q, rng)
    c = BlockMatrix.random(shape.r, shape.s, shape.q, rng)
    return a, b, c


def verify_product(
    a: BlockMatrix,
    b: BlockMatrix,
    c0: BlockMatrix,
    c_result: BlockMatrix,
    rtol: float = 1e-10,
) -> bool:
    """True when ``c_result == c0 + a·b`` up to relative tolerance.

    The tolerance is scaled by the reference's infinity norm so that large
    inner dimensions (many accumulated updates) do not trip spurious
    failures.
    """
    reference = c0.array + a.array @ b.array
    scale = max(1.0, float(np.abs(reference).max()))
    return bool(np.allclose(c_result.array, reference, rtol=rtol, atol=rtol * scale))


def max_block_error(
    a: BlockMatrix, b: BlockMatrix, c0: BlockMatrix, c_result: BlockMatrix
) -> float:
    """Largest absolute element error of ``c_result`` vs ``c0 + a·b``."""
    reference = c0.array + a.array @ b.array
    return float(np.abs(c_result.array - reference).max())
