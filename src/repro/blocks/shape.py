"""The size view of a block matrix product: ``(r, s, t, q)``.

Most of the paper's algorithms never touch matrix *values*; they schedule
*block indices*.  :class:`ProblemShape` is that index space:

* ``C`` blocks are ``(i, j)`` with ``1 ≤ i ≤ r``, ``1 ≤ j ≤ s``;
* ``A`` blocks are ``(i, k)`` with ``1 ≤ k ≤ t``;
* ``B`` blocks are ``(k, j)``.

Computing ``C_ij`` requires the ``t`` updates
``C_ij += A_ik · B_kj, k = 1..t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["ProblemShape"]


@dataclass(frozen=True)
class ProblemShape:
    """Block dimensions of one product ``C(r×s) += A(r×t) · B(t×s)``.

    Attributes:
        r: number of block rows of A and C.
        s: number of block columns of B and C.
        t: number of block columns of A = block rows of B.
        q: elements per block side (only matters for element-level
            accounting; schedulers work at block granularity).
    """

    r: int
    s: int
    t: int
    q: int = 80

    def __post_init__(self) -> None:
        for field_name in ("r", "s", "t", "q"):
            v = getattr(self, field_name)
            if not isinstance(v, int) or v < 1:
                raise ValueError(f"{field_name} must be a positive int, got {v!r}")

    # -- element-level dimensions -------------------------------------------
    @property
    def n_a(self) -> int:
        """Row dimension of A (and C) in elements."""
        return self.r * self.q

    @property
    def n_ab(self) -> int:
        """Inner dimension in elements."""
        return self.t * self.q

    @property
    def n_b(self) -> int:
        """Column dimension of B (and C) in elements."""
        return self.s * self.q

    @staticmethod
    def from_elements(n_a: int, n_ab: int, n_b: int, q: int = 80) -> "ProblemShape":
        """Build a shape from element dimensions (must be multiples of q).

        Mirrors Section 8.3: e.g. A of 8000×8000 and B of 8000×64000 with
        q = 80 gives ``r = t = 100`` and ``s = 800``.
        """
        for name, n in (("n_a", n_a), ("n_ab", n_ab), ("n_b", n_b)):
            if n % q:
                raise ValueError(f"{name}={n} is not a multiple of q={q}")
        return ProblemShape(r=n_a // q, s=n_b // q, t=n_ab // q, q=q)

    # -- counting -------------------------------------------------------------
    @property
    def c_blocks(self) -> int:
        """Total number of C blocks, r·s."""
        return self.r * self.s

    @property
    def total_updates(self) -> int:
        """Total block updates for the whole product, r·s·t."""
        return self.r * self.s * self.t

    @property
    def total_flops(self) -> int:
        """Total floating-point operations, 2·q³ per update."""
        return self.total_updates * 2 * self.q**3

    # -- iteration --------------------------------------------------------------
    def c_indices(self) -> Iterator[Tuple[int, int]]:
        """Iterate all C block indices (i, j), row-major, 1-based."""
        for i in range(1, self.r + 1):
            for j in range(1, self.s + 1):
                yield (i, j)

    def check_c(self, i: int, j: int) -> None:
        """Validate a C block index, raising ``IndexError`` when off-grid."""
        if not (1 <= i <= self.r and 1 <= j <= self.s):
            raise IndexError(f"C block ({i},{j}) outside grid {self.r}x{self.s}")

    def check_a(self, i: int, k: int) -> None:
        """Validate an A block index."""
        if not (1 <= i <= self.r and 1 <= k <= self.t):
            raise IndexError(f"A block ({i},{k}) outside grid {self.r}x{self.t}")

    def check_b(self, k: int, j: int) -> None:
        """Validate a B block index."""
        if not (1 <= k <= self.t and 1 <= j <= self.s):
            raise IndexError(f"B block ({k},{j}) outside grid {self.t}x{self.s}")

    def __str__(self) -> str:
        return (
            f"ProblemShape(r={self.r}, s={self.s}, t={self.t}, q={self.q}; "
            f"A {self.n_a}x{self.n_ab}, B {self.n_ab}x{self.n_b})"
        )
