"""Numpy-backed block matrix with 1-based block accessors.

:class:`BlockMatrix` stores a dense float64 array and exposes q×q block
views.  Block getters return *views* (no copies) so that the execution
engine can update C in place, matching the guides' "use views, not
copies" discipline; callers that need to model data shipping explicitly
copy (``block(...).copy()``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["BlockMatrix"]


class BlockMatrix:
    """A dense matrix partitioned into square q×q blocks.

    Block indices are 1-based, matching the paper's notation
    (``A_{i,k}``, ``B_{k,j}``, ``C_{i,j}``).
    """

    def __init__(self, data: np.ndarray, q: int):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={data.ndim}")
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        if data.shape[0] % q or data.shape[1] % q:
            raise ValueError(f"shape {data.shape} not divisible by q={q}")
        self._data = data
        self.q = q
        self.block_rows = data.shape[0] // q
        self.block_cols = data.shape[1] // q

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def zeros(block_rows: int, block_cols: int, q: int) -> "BlockMatrix":
        """All-zero matrix of the given block grid."""
        return BlockMatrix(np.zeros((block_rows * q, block_cols * q)), q)

    @staticmethod
    def random(
        block_rows: int,
        block_cols: int,
        q: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "BlockMatrix":
        """Uniform(-1, 1) random matrix (seeded via ``rng``)."""
        rng = rng if rng is not None else np.random.default_rng()
        data = rng.uniform(-1.0, 1.0, size=(block_rows * q, block_cols * q))
        return BlockMatrix(data, q)

    # -- block access ------------------------------------------------------------
    def _slice(self, bi: int, bj: int) -> Tuple[slice, slice]:
        if not (1 <= bi <= self.block_rows and 1 <= bj <= self.block_cols):
            raise IndexError(
                f"block ({bi},{bj}) outside grid "
                f"{self.block_rows}x{self.block_cols}"
            )
        q = self.q
        return (slice((bi - 1) * q, bi * q), slice((bj - 1) * q, bj * q))

    def block(self, bi: int, bj: int) -> np.ndarray:
        """Return a *view* of block (bi, bj) (1-based)."""
        rs, cs = self._slice(bi, bj)
        return self._data[rs, cs]

    def set_block(self, bi: int, bj: int, value: np.ndarray) -> None:
        """Overwrite block (bi, bj) with ``value`` (must be q×q)."""
        rs, cs = self._slice(bi, bj)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.q, self.q):
            raise ValueError(f"expected {self.q}x{self.q} block, got {value.shape}")
        self._data[rs, cs] = value

    def update_block(self, ci: int, cj: int, a: np.ndarray, b: np.ndarray) -> None:
        """In-place block update ``C_{ci,cj} += a @ b`` (the paper's kernel)."""
        rs, cs = self._slice(ci, cj)
        self._data[rs, cs] += a @ b

    # -- whole-matrix views ----------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The underlying dense array (a view, not a copy)."""
        return self._data

    def copy(self) -> "BlockMatrix":
        """Deep copy."""
        return BlockMatrix(self._data.copy(), self.q)

    @property
    def shape(self) -> Tuple[int, int]:
        """Element-level shape."""
        return self._data.shape

    @property
    def block_shape(self) -> Tuple[int, int]:
        """Block-level shape ``(block_rows, block_cols)``."""
        return (self.block_rows, self.block_cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockMatrix({self.block_rows}x{self.block_cols} blocks of "
            f"{self.q}x{self.q})"
        )
