"""Analysis and reporting: Gantt rendering, metric tables.

* :mod:`repro.analysis.gantt` — ASCII Gantt charts of selection results
  and engine traces (regenerates the look of Figures 7 and 8).
* :mod:`repro.analysis.tables` — fixed-width table formatting for the
  experiment harness and CLI.
* :mod:`repro.analysis.metrics` — summary statistics over traces.
"""

from repro.analysis.gantt import gantt_selection, gantt_trace
from repro.analysis.metrics import TraceSummary, summarize_trace
from repro.analysis.tables import format_table

__all__ = [
    "TraceSummary",
    "format_table",
    "gantt_selection",
    "gantt_trace",
    "summarize_trace",
]
