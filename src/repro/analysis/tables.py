"""Fixed-width table rendering for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; this module handles the formatting uniformly.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (mappings) as an aligned text table.

    Args:
        rows: one mapping per row; missing keys render empty.
        columns: column order (defaults to the first row's key order).
        title: optional heading line.
    """
    if not rows:
        return title or "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
