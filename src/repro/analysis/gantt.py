"""ASCII Gantt charts.

Renders the master's port activity and each worker's compute activity
on a shared time axis, in the style of the paper's Figures 7 and 8:

    M  |22|11|33|11|33| ...
    P1    .  ###  ###
    ...

The master row shows which worker each communication serves; worker
rows show busy (``#``) versus idle (spaces).  Rendering is width-bound:
time is linearly quantised into character cells, so very short
intervals may collapse — the charts are illustrations, the numbers in
the accompanying tables are exact.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.heterogeneous import SelectionResult
from repro.engine.trace import Trace

__all__ = ["gantt_selection", "gantt_trace"]


def _digit(worker: int) -> str:
    return str(worker % 10)


def _render(
    rows: dict[str, list[tuple[float, float, str]]],
    horizon: float,
    width: int,
) -> str:
    if horizon <= 0:
        raise ValueError("nothing to render (horizon <= 0)")
    scale = width / horizon
    label_w = max(len(name) for name in rows) + 1
    lines = []
    for name, intervals in rows.items():
        cells = [" "] * width
        for start, end, mark in intervals:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(round(end * scale))))
            for x in range(lo, hi):
                cells[x] = mark
        lines.append(f"{name:<{label_w}}|{''.join(cells)}|")
    axis = f"{'':<{label_w}}0{'':<{width - len(f'{horizon:g}') - 1}}{horizon:g}"
    lines.append(axis)
    return "\n".join(lines)


def gantt_selection(
    selection: SelectionResult,
    workers: int,
    width: int = 100,
    max_time: Optional[float] = None,
) -> str:
    """Render an incremental-selection run (Figures 7/8 style).

    Args:
        selection: output of a Section 6.2 selection algorithm.
        workers: number of workers on the platform.
        width: chart width in characters.
        max_time: truncate the chart at this simulated time (defaults
            to the full completion time).
    """
    horizon = max_time if max_time is not None else selection.completion_time
    rows: dict[str, list[tuple[float, float, str]]] = {"M": []}
    for w in range(1, workers + 1):
        rows[f"P{w}"] = []
    for worker, start, end in selection.comm_intervals:
        if start >= horizon:
            continue
        rows["M"].append((start, min(end, horizon), _digit(worker)))
    for worker, start, end in selection.compute_intervals:
        if start >= horizon:
            continue
        rows[f"P{worker}"].append((start, min(end, horizon), "#"))
    return _render(rows, horizon, width)


def gantt_trace(
    trace: Trace,
    workers: int,
    width: int = 100,
    max_time: Optional[float] = None,
) -> str:
    """Render an engine trace: master port row plus worker compute rows.

    Sends are marked with the destination worker's digit, receives with
    ``^`` (results flowing back), compute with ``#``.
    """
    horizon = max_time if max_time is not None else trace.makespan
    rows: dict[str, list[tuple[float, float, str]]] = {"M": []}
    for w in range(1, workers + 1):
        rows[f"P{w}"] = []
    for comm in trace.comms:
        if comm.start >= horizon:
            continue
        mark = _digit(comm.worker) if comm.direction == "send" else "^"
        rows["M"].append((comm.start, min(comm.end, horizon), mark))
    for comp in trace.computes:
        if comp.start >= horizon:
            continue
        rows[f"P{comp.worker}"].append((comp.start, min(comp.end, horizon), "#"))
    return _render(rows, horizon, width)
