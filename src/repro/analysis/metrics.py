"""Summary metrics over engine traces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.trace import Trace

__all__ = ["TraceSummary", "summarize_trace"]


@dataclass(frozen=True)
class TraceSummary:
    """One-line summary of a run, as used in the experiment tables.

    Attributes:
        makespan: total time until the last result returned.
        comm_blocks: blocks moved through the master.
        updates: block updates computed.
        ccr: blocks per update.
        workers_used: number of workers that computed anything.
        port_utilisation: busy fraction of the master's (send) port.
        mean_worker_utilisation: mean busy fraction over used workers.
    """

    makespan: float
    comm_blocks: int
    updates: int
    ccr: float
    workers_used: int
    port_utilisation: float
    mean_worker_utilisation: float


def summarize_trace(trace: Trace) -> TraceSummary:
    """Condense a trace into a :class:`TraceSummary`.

    Vectorised over the trace's memoized column arrays (shared with the
    invariant checks).  The naive property-by-property route re-walks
    the interval lists once per metric (and once per worker for the
    utilisations), which at sweep scale costs as much as the simulation
    itself.

    Also accepts a :class:`~repro.engine.model.ModelEstimate` (anything
    with a ``to_summary``): the model engine has no interval lists, so
    it produces the summary directly and experiments stay
    engine-agnostic.
    """
    to_summary = getattr(trace, "to_summary", None)
    if to_summary is not None:
        return to_summary()
    comms = trace.comms
    computes = trace.computes
    if comms:
        _, c_start, c_end, c_blocks, c_port = trace.comm_columns()
        comm_blocks = int(c_blocks.sum())
        on_port0 = c_port == 0
        port0_busy = float(np.sum(c_end[on_port0] - c_start[on_port0]))
        last_comm = float(c_end.max())
    else:
        comm_blocks = 0
        port0_busy = 0.0
        last_comm = 0.0
    if computes:
        k_worker, k_start, k_end, k_updates = trace.compute_columns()
        updates = int(k_updates.sum())
        busy = np.bincount(k_worker, weights=k_end - k_start)
        did_update = np.bincount(k_worker, weights=k_updates) > 0
        used = np.nonzero(did_update)[0]
        last_comp = float(k_end.max())
    else:
        updates = 0
        used = np.empty(0, dtype=np.int64)
        busy = np.empty(0)
        last_comp = 0.0
    if updates == 0:
        raise ValueError("no computation recorded; CCR undefined")
    makespan = max(last_comm, last_comp)
    mean_util = (
        float(np.sum(busy[used])) / makespan / len(used)
        if len(used) and makespan > 0
        else 0.0
    )
    return TraceSummary(
        makespan=makespan,
        comm_blocks=comm_blocks,
        updates=updates,
        ccr=comm_blocks / updates,
        workers_used=len(used),
        port_utilisation=port0_busy / makespan if makespan > 0 else 0.0,
        mean_worker_utilisation=mean_util,
    )
