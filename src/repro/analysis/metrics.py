"""Summary metrics over engine traces."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.trace import Trace

__all__ = ["TraceSummary", "summarize_trace"]


@dataclass(frozen=True)
class TraceSummary:
    """One-line summary of a run, as used in the experiment tables.

    Attributes:
        makespan: total time until the last result returned.
        comm_blocks: blocks moved through the master.
        updates: block updates computed.
        ccr: blocks per update.
        workers_used: number of workers that computed anything.
        port_utilisation: busy fraction of the master's (send) port.
        mean_worker_utilisation: mean busy fraction over used workers.
    """

    makespan: float
    comm_blocks: int
    updates: int
    ccr: float
    workers_used: int
    port_utilisation: float
    mean_worker_utilisation: float


def summarize_trace(trace: Trace) -> TraceSummary:
    """Condense a trace into a :class:`TraceSummary`."""
    used = trace.enrolled_workers
    mean_util = (
        sum(trace.worker_utilisation(w) for w in used) / len(used) if used else 0.0
    )
    return TraceSummary(
        makespan=trace.makespan,
        comm_blocks=trace.comm_blocks,
        updates=trace.total_updates,
        ccr=trace.ccr,
        workers_used=len(used),
        port_utilisation=trace.port_utilisation(0),
        mean_worker_utilisation=mean_util,
    )
