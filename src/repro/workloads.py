"""Workload definitions for the Section 8 experiments.

The three matrix shapes of the first experiment set (Section 8.3), the
block-size variants of the second, and the memory sweep of the third.
All shapes are expressed in elements and converted to block grids via
:meth:`repro.blocks.ProblemShape.from_elements`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.shape import ProblemShape

__all__ = [
    "Workload",
    "FIG10_WORKLOADS",
    "FIG12_BLOCK_SIZES",
    "FIG13_MEMORY_MB",
    "FIG13_WORKLOAD",
    "fig10_workloads",
]


@dataclass(frozen=True)
class Workload:
    """A named matrix-product instance.

    Attributes:
        name: label used in tables ("A 8000x8000, B 8000x64000").
        n_a: rows of A (and C), elements.
        n_ab: inner dimension, elements.
        n_b: columns of B (and C), elements.
    """

    name: str
    n_a: int
    n_ab: int
    n_b: int

    def shape(self, q: int = 80) -> ProblemShape:
        """Block-grid shape for block size ``q``.

        Dimensions are rounded down to the nearest multiple of ``q``
        (identity for the paper's workloads, which are exact multiples;
        only scaled-down quick-run variants need the rounding).
        """
        dims = [max(q, (n // q) * q) for n in (self.n_a, self.n_ab, self.n_b)]
        return ProblemShape.from_elements(*dims, q=q)

    def scaled(self, factor: int) -> "Workload":
        """Shrink every dimension by ``factor`` (for fast CI runs)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return Workload(
            f"{self.name}/{factor}",
            self.n_a // factor,
            self.n_ab // factor,
            self.n_b // factor,
        )


#: The three matrix sizes of the first experiment set (Figure 10).
FIG10_WORKLOADS: tuple[Workload, ...] = (
    Workload("A 8000x8000,  B 8000x64000", 8000, 8000, 64000),
    Workload("A 16000x16000, B 16000x128000", 16000, 16000, 128000),
    Workload("A 8000x64000, B 64000x64000", 8000, 64000, 64000),
)

#: Block sizes compared in the second experiment set (Figure 12).
FIG12_BLOCK_SIZES: tuple[int, ...] = (40, 80)

#: Worker memory sweep of the third experiment set (Figure 13), in MB.
FIG13_MEMORY_MB: tuple[float, ...] = (132.0, 198.0, 264.0, 330.0, 396.0, 462.0, 512.0)

#: The matrix pair used for the memory sweep.
FIG13_WORKLOAD = Workload("A 16000x16000, B 16000x64000", 16000, 16000, 64000)


def fig10_workloads(scale: int = 1) -> list[Workload]:
    """The Figure 10 workloads, optionally shrunk by ``scale``."""
    return [w.scaled(scale) if scale > 1 else w for w in FIG10_WORKLOADS]
