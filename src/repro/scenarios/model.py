"""Non-stationary platform scenarios.

The paper's experiments assume *stationary* star platforms: every
``c_i`` and ``w_i`` is a constant of the run.  Real clusters are not
stationary — Figure 11 itself documents a ~6 % run-to-run spread — so
this module introduces the :class:`Scenario`, a wrapper over a
:class:`~repro.platform.model.Platform` that makes the platform's
parameters *functions of time*:

* **time-varying rates** — each worker's ``c_i(t)`` and ``w_i(t)`` are
  piecewise-constant step timelines (:class:`StepTimeline`), expressed
  as multiplicative factors over the worker's base rates;
* **slowdown / dropout** — a scheduled instant from which a worker's
  rates are multiplied by a factor (a *dropout* is a slowdown by a very
  large factor: the worker still drains its in-flight work, glacially,
  so every simulation terminates and the update-count invariant holds);
* **background traffic** — scheduled intervals during which an external
  flow contends for the master's one-port resource, recorded in the
  trace as worker-0 communication intervals.

Cost model extension
--------------------
The stationary model charges ``blocks · c_i`` port seconds per transfer
and ``updates · w_i`` CPU seconds per phase.  Under a scenario, the
rate is **sampled at the instant the operation starts** — the port
grant time for transfers, the compute start time for phases — and held
for the operation's whole duration.  Steps therefore never split an
in-flight operation; a step taking effect at ``t`` applies to every
operation starting at or after ``t``.  This piecewise-constant
convention keeps both engines' timelines byte-identical (see
``docs/scenarios.md``) and is exact whenever steps are long relative to
individual transfers.

Both simulation engines read effective rates through
:meth:`Scenario.c_rate` / :meth:`Scenario.w_rate`, which evaluate
``base · factor`` through one shared table — identical float operations
on both backends, so traces stay byte-for-byte comparable.  An identity
scenario (all factors 1.0, no background) reproduces the stationary
trace exactly, because ``base * 1.0 == base`` in IEEE arithmetic.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.platform.model import Platform

__all__ = [
    "DROPOUT_FACTOR",
    "BackgroundEvent",
    "Scenario",
    "StepTimeline",
]

#: Rate multiplier modelling a dropped-out worker.  Large enough that a
#: dropped worker contributes essentially nothing further, small enough
#: that the simulation still terminates with finite timestamps.
DROPOUT_FACTOR = 1e6


@dataclass(frozen=True)
class StepTimeline:
    """A piecewise-constant function of time.

    ``value_at(t)`` is ``values[i]`` for the largest ``times[i] <= t``.
    Breakpoints are strictly increasing and start at 0.0, so the
    function is total on ``t >= 0``.  A step at ``t`` applies to
    operations starting at exactly ``t``.
    """

    times: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values) or not self.times:
            raise ValueError("times and values must be equal-length and non-empty")
        if self.times[0] != 0.0:
            raise ValueError(f"first breakpoint must be at t=0, got {self.times[0]}")
        for prev, nxt in zip(self.times, self.times[1:]):
            if not nxt > prev:
                raise ValueError(f"breakpoints must strictly increase: {self.times}")
        for v in self.values:
            if not (v > 0 and math.isfinite(v)):
                raise ValueError(f"timeline values must be positive finite, got {v}")

    @property
    def is_identity(self) -> bool:
        """True for the constant-1.0 timeline (no variation)."""
        return self.values == (1.0,)

    def value_at(self, t: float) -> float:
        """The step value in effect at time ``t`` (>= 0)."""
        return self.values[bisect_right(self.times, t) - 1]

    def scaled_from(self, time: float, factor: float) -> "StepTimeline":
        """Multiply every value at or after ``time`` by ``factor``.

        Composable: successive slowdowns compound on the affected
        suffix.  Inserts a breakpoint at ``time`` when none exists.
        """
        times, values = list(self.times), list(self.values)
        i = bisect_right(times, time)
        if times[i - 1] == time:
            start = i - 1
        else:
            times.insert(i, time)
            values.insert(i, values[i - 1])
            start = i
        for j in range(start, len(values)):
            values[j] = values[j] * factor
        return StepTimeline(tuple(times), tuple(values))

    def set_from(self, time: float, value: float) -> "StepTimeline":
        """Pin the value from ``time`` onward (later steps are dropped)."""
        i = bisect_left(self.times, time)
        return StepTimeline(self.times[:i] + (time,), self.values[:i] + (value,))

    @staticmethod
    def constant(value: float = 1.0) -> "StepTimeline":
        """The timeline that is ``value`` everywhere."""
        return StepTimeline((0.0,), (value,))


@dataclass(frozen=True)
class BackgroundEvent:
    """One scheduled hold of the master's port by external traffic.

    The hold is requested at ``time`` and occupies the port for
    ``duration`` seconds once granted (it queues FIFO behind whatever
    transfer holds the port, exactly like a worker's request).
    """

    time: float
    duration: float
    label: str = "background"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"background event time must be >= 0, got {self.time}")
        if not (self.duration > 0 and math.isfinite(self.duration)):
            raise ValueError(
                f"background duration must be positive finite, got {self.duration}"
            )


_IDENTITY = StepTimeline.constant(1.0)


class Scenario:
    """A platform plus its non-stationary behaviour over time.

    Immutable: the ``with_*`` builders return new scenarios, so presets
    compose fluently::

        sc = (Scenario.stationary(platform)
              .with_slowdown(worker=2, time=40.0, factor=3.0)
              .with_dropout(worker=3, time=90.0)
              .with_background(time=10.0, duration=5.0))

    Worker indices in the builder API are 1-based (matching
    :class:`~repro.platform.model.Worker.index`); the engine-facing
    ``c_rate``/``w_rate`` accessors take the engines' 0-based indices.
    """

    __slots__ = ("platform", "c_factors", "w_factors", "background", "name",
                 "_c_rates", "_w_rates")

    def __init__(
        self,
        platform: Platform,
        c_factors: Optional[Sequence[StepTimeline]] = None,
        w_factors: Optional[Sequence[StepTimeline]] = None,
        background: Sequence[BackgroundEvent] = (),
        name: str = "",
    ):
        p = platform.p
        c_factors = tuple(c_factors) if c_factors is not None else (_IDENTITY,) * p
        w_factors = tuple(w_factors) if w_factors is not None else (_IDENTITY,) * p
        if len(c_factors) != p or len(w_factors) != p:
            raise ValueError(
                f"factor timelines must cover all {p} workers "
                f"(got {len(c_factors)} c, {len(w_factors)} w)"
            )
        bg = tuple(sorted(background, key=lambda ev: ev.time))
        for prev, nxt in zip(bg, bg[1:]):
            if nxt.time == prev.time:
                raise ValueError(
                    f"background events must have distinct times, got two at "
                    f"t={nxt.time}"
                )
        self.platform = platform
        self.c_factors = c_factors
        self.w_factors = w_factors
        self.background = bg
        self.name = name or f"{platform.name}~scenario"
        # Effective-rate tables (base · factor per breakpoint), shared by
        # both engines so every duration is computed from identical floats.
        self._c_rates = tuple(
            StepTimeline(tl.times, tuple(v * wk.c for v in tl.values))
            if not tl.is_identity else StepTimeline.constant(wk.c)
            for wk, tl in zip(platform.workers, c_factors)
        )
        self._w_rates = tuple(
            StepTimeline(tl.times, tuple(v * wk.w for v in tl.values))
            if not tl.is_identity else StepTimeline.constant(wk.w)
            for wk, tl in zip(platform.workers, w_factors)
        )

    # -- engine-facing rate lookups (0-based worker indices) ----------------
    def c_rate(self, widx: int, t: float) -> float:
        """Effective seconds-per-block transfer rate of worker ``widx``
        (0-based) for an operation starting at time ``t``."""
        tl = self._c_rates[widx]
        return tl.values[bisect_right(tl.times, t) - 1]

    def w_rate(self, widx: int, t: float) -> float:
        """Effective seconds-per-update compute rate of worker ``widx``
        (0-based) for a phase starting at time ``t``."""
        tl = self._w_rates[widx]
        return tl.values[bisect_right(tl.times, t) - 1]

    def c_rate_timeline(self, widx: int) -> StepTimeline:
        """Worker ``widx``'s (0-based) effective transfer-rate timeline.

        The full piecewise-constant ``base · factor`` table behind
        :meth:`c_rate` — the model engine integrates chunk work through
        it instead of sampling pointwise.
        """
        return self._c_rates[widx]

    def w_rate_timeline(self, widx: int) -> StepTimeline:
        """Worker ``widx``'s (0-based) effective compute-rate timeline."""
        return self._w_rates[widx]

    @property
    def has_rate_variation(self) -> bool:
        """True when any worker's rates actually change over time."""
        return any(
            not tl.is_identity for tl in self.c_factors + self.w_factors
        )

    @property
    def is_stationary(self) -> bool:
        """True for the identity scenario (engines may skip all hooks)."""
        return not self.has_rate_variation and not self.background

    # -- builders -----------------------------------------------------------
    @staticmethod
    def stationary(platform: Platform, name: str = "") -> "Scenario":
        """The identity scenario: the platform exactly as declared."""
        return Scenario(platform, name=name or f"{platform.name}~stationary")

    def _check_worker(self, worker: int) -> int:
        if not 1 <= worker <= self.platform.p:
            raise ValueError(
                f"worker index {worker} out of range 1..{self.platform.p}"
            )
        return worker - 1

    def _replace(self, **kw) -> "Scenario":
        base = dict(
            platform=self.platform, c_factors=self.c_factors,
            w_factors=self.w_factors, background=self.background,
            name=self.name,
        )
        base.update(kw)
        return Scenario(**base)

    def with_rates(
        self,
        worker: int,
        time: float,
        c_factor: Optional[float] = None,
        w_factor: Optional[float] = None,
    ) -> "Scenario":
        """Pin worker ``worker``'s rate factors from ``time`` onward.

        Absolute semantics: the factor becomes exactly ``c_factor`` /
        ``w_factor`` (not a further multiplication); later steps on the
        affected timeline are discarded.  ``None`` leaves a rate alone.
        """
        i = self._check_worker(worker)
        c_factors, w_factors = list(self.c_factors), list(self.w_factors)
        if c_factor is not None:
            c_factors[i] = c_factors[i].set_from(time, c_factor)
        if w_factor is not None:
            w_factors[i] = w_factors[i].set_from(time, w_factor)
        return self._replace(c_factors=tuple(c_factors), w_factors=tuple(w_factors))

    def with_slowdown(self, worker: int, time: float, factor: float) -> "Scenario":
        """Multiply worker ``worker``'s c and w by ``factor`` from ``time`` on."""
        i = self._check_worker(worker)
        c_factors, w_factors = list(self.c_factors), list(self.w_factors)
        c_factors[i] = c_factors[i].scaled_from(time, factor)
        w_factors[i] = w_factors[i].scaled_from(time, factor)
        return self._replace(c_factors=tuple(c_factors), w_factors=tuple(w_factors))

    def with_dropout(
        self, worker: int, time: float, factor: float = DROPOUT_FACTOR
    ) -> "Scenario":
        """Worker ``worker`` effectively stops participating at ``time``.

        Modelled as a slowdown by :data:`DROPOUT_FACTOR`: in-flight and
        already-assigned work still completes (at a glacial rate), so
        the run terminates and the update-count invariant holds, but the
        worker contributes nothing useful afterwards.
        """
        return self.with_slowdown(worker, time, factor)

    def with_bandwidth_step(self, time: float, factor: float) -> "Scenario":
        """Scale *every* worker's c by ``factor`` from ``time`` onward.

        Models a shared-network capacity change (all transfers ride the
        master's link, so congestion hits every worker's ``c_i`` alike).
        """
        c_factors = tuple(tl.scaled_from(time, factor) for tl in self.c_factors)
        return self._replace(c_factors=c_factors)

    def with_background(
        self, time: float, duration: float, label: str = "background"
    ) -> "Scenario":
        """Add one background hold of the master's port."""
        return self._replace(
            background=self.background + (BackgroundEvent(time, duration, label),)
        )

    # -- reporting ----------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [f"Scenario {self.name!r} over {self.platform.name!r}:"]
        for wk, ctl, wtl in zip(self.platform.workers, self.c_factors, self.w_factors):
            if ctl.is_identity and wtl.is_identity:
                continue
            lines.append(
                f"  {wk.label}: c-factors {list(zip(ctl.times, ctl.values))}, "
                f"w-factors {list(zip(wtl.times, wtl.values))}"
            )
        for ev in self.background:
            lines.append(
                f"  port: {ev.label} holds [{ev.time:g}, {ev.time + ev.duration:g})"
            )
        if len(lines) == 1:
            lines.append("  (stationary)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario({self.name!r}, p={self.platform.p}, "
            f"varying={self.has_rate_variation}, "
            f"background={len(self.background)})"
        )
