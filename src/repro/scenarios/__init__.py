"""Non-stationary platform scenarios: time-varying rates, slowdown and
dropout events, and background master-port traffic, as a
:class:`Scenario` wrapper over :class:`~repro.platform.Platform`.

Both simulation engines accept a scenario and stay byte-identical on
it; see ``docs/scenarios.md`` for the model and parity guarantees, and
:mod:`repro.experiments.robustness` for the sweep built on top.
"""

from repro.scenarios.model import (
    DROPOUT_FACTOR,
    BackgroundEvent,
    Scenario,
    StepTimeline,
)
from repro.scenarios.presets import (
    SCENARIO_KINDS,
    build_scenario,
    parse_scenario_arg,
    scenario_spec,
)

__all__ = [
    "DROPOUT_FACTOR",
    "SCENARIO_KINDS",
    "BackgroundEvent",
    "Scenario",
    "StepTimeline",
    "build_scenario",
    "parse_scenario_arg",
    "scenario_spec",
]
