"""Deterministic scenario families for sweeps.

Experiment points must be JSON-able parameter mappings (they feed the
content-addressed cache), so sweeps never carry :class:`Scenario`
objects — they carry a *spec* ``{kind, severity, horizon, seed}`` and
the pure per-point function rebuilds the scenario here.  Same spec +
same platform ⇒ the identical scenario, in any process.

Each family is parameterised by a ``severity`` knob in ``[0, 1]``:

* ``stationary`` — the identity scenario (baseline; severity ignored);
* ``drift`` — every worker's ``c``/``w`` re-drawn at regular instants
  with adverse (≥ 1) half-lognormal factors of width ∝ severity (the
  Figure 11 jitter made time-varying and one-sided);
* ``dropout`` — a subset of workers suffers a severe slowdown partway
  through the run; severity controls how many, how early, how severe.
  Preset dropouts are *bounded* (factor ≤ 50) so degradation ratios
  stay finite and comparable across severities — the unbounded
  :data:`~repro.scenarios.model.DROPOUT_FACTOR` form is available
  through the :class:`Scenario` API directly;
* ``congestion`` — bursts of background traffic hold the master's port;
* ``brownout`` — the shared link loses bandwidth mid-run and recovers;
* ``randomwalk`` — every worker's ``c``/``w`` follow a seeded bounded
  multiplicative random walk, re-pinned at regular instants: lognormal
  steps of width ∝ severity clamped into ``[1, 1 + 9·severity]``, so
  rates wander adversely but never diverge — the stochastic
  rate-process family (each engine sees the identical piecewise-
  constant realisation, so cross-engine parity is preserved);
* ``multidrop`` — a *correlated* dropout cascade: a contiguous block
  of workers degrades around one common onset with small seeded
  per-worker lags, modelling a rack/switch failure rather than the
  single-family ``dropout``'s independent victims.

Times are expressed as fractions of a caller-provided ``horizon``
(typically the stationary makespan of the same run), so one severity
means the same *relative* disturbance across workloads and platforms.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.platform.model import Platform
from repro.scenarios.model import Scenario

__all__ = [
    "SCENARIO_KINDS",
    "build_scenario",
    "parse_scenario_arg",
    "scenario_spec",
]

#: The preset families, in reporting order.  New kinds must be
#: **appended**: the per-kind rng stream is seeded by list position, so
#: reordering would silently reshuffle every existing family's draws.
SCENARIO_KINDS = (
    "stationary", "drift", "dropout", "congestion", "brownout",
    "randomwalk", "multidrop",
)

#: Rate re-draw instants of the ``drift`` family, as horizon fractions.
_DRIFT_STEPS = (0.25, 0.5, 0.75)
#: Upper bound of the ``dropout`` family's slowdown factor.
_DROPOUT_MAX_FACTOR = 50.0
#: Re-pin instants of the ``randomwalk`` family (count, not positions).
_WALK_STEPS = 8
#: Upper bound of the ``multidrop`` family's slowdown factor.
_MULTIDROP_MAX_FACTOR = 25.0


def scenario_spec(
    kind: str, severity: float, horizon: float, seed: int = 0
) -> dict[str, Any]:
    """The JSON-able sweep-point fragment describing one scenario."""
    if kind not in SCENARIO_KINDS:
        raise ValueError(f"unknown scenario kind {kind!r} (known: {SCENARIO_KINDS})")
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    return {
        "scenario_kind": kind,
        "scenario_severity": float(severity),
        "scenario_horizon": float(horizon),
        "scenario_seed": int(seed),
    }


def build_scenario(
    platform: Platform, spec: Mapping[str, Any]
) -> Scenario:
    """Rebuild the scenario a spec (see :func:`scenario_spec`) describes.

    Deterministic: the construction consumes only the spec's scalars
    through a seeded generator, so the same spec yields the same
    scenario in every process.
    """
    kind = spec["scenario_kind"]
    severity = float(spec["scenario_severity"])
    horizon = float(spec["scenario_horizon"])
    seed = int(spec.get("scenario_seed", 0))
    if kind not in SCENARIO_KINDS:
        raise ValueError(f"unknown scenario kind {kind!r} (known: {SCENARIO_KINDS})")
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    name = f"{platform.name}~{kind}(sev={severity:g})"
    scenario = Scenario.stationary(platform, name=name)
    if kind == "stationary" or severity == 0.0:
        return scenario

    rng = np.random.default_rng([seed, SCENARIO_KINDS.index(kind)])
    if kind == "drift":
        # Adverse drift: factors are half-lognormal (always >= 1), so the
        # family measures robustness to *degrading* rates — symmetric
        # jitter would let lucky draws speed runs up and mask the effect.
        sigma = 0.35 * severity
        for widx in range(1, platform.p + 1):
            for frac in _DRIFT_STEPS:
                scenario = scenario.with_rates(
                    widx,
                    frac * horizon,
                    c_factor=float(np.exp(abs(rng.normal(0.0, sigma)))),
                    w_factor=float(np.exp(abs(rng.normal(0.0, sigma)))),
                )
        return scenario

    if kind == "dropout":
        # Victims are the *first* workers: every selection policy enrolls
        # workers from index 1 up, so the disturbance always lands on
        # enrolled workers (random victims would often hit idle ones at
        # low severity and report a vacuous degradation of 1.0).
        count = max(1, round(severity * platform.p / 2))
        onset = (0.9 - 0.6 * severity) * horizon
        factor = 1.0 + (_DROPOUT_MAX_FACTOR - 1.0) * severity
        for widx in range(1, count + 1):
            scenario = scenario.with_slowdown(widx, onset, factor)
        return scenario

    if kind == "randomwalk":
        # A bounded adverse rate process: each worker's c and w follow
        # independent multiplicative lognormal walks, re-pinned at
        # regular instants with absolute with_rates() semantics, so all
        # engines replay the identical piecewise-constant realisation.
        # The floor at 1 keeps the family adverse (lucky speed-ups
        # would mask degradation); the severity-scaled ceiling keeps
        # degradation ratios finite and comparable.
        sigma = 0.3 * severity
        ceiling = 1.0 + 9.0 * severity
        for widx in range(1, platform.p + 1):
            c_level = w_level = 1.0
            for step in range(1, _WALK_STEPS + 1):
                c_level = min(max(c_level * float(np.exp(rng.normal(0.0, sigma))), 1.0), ceiling)
                w_level = min(max(w_level * float(np.exp(rng.normal(0.0, sigma))), 1.0), ceiling)
                scenario = scenario.with_rates(
                    widx,
                    step / (_WALK_STEPS + 1) * horizon,
                    c_factor=c_level,
                    w_factor=w_level,
                )
        return scenario

    if kind == "multidrop":
        # A correlated cascade — one rack/switch event, not independent
        # victims: a contiguous block of enrolled workers (cf. the
        # dropout comment above) degrades around a common onset, each
        # victim lagging the event by a small seeded delay.
        count = min(platform.p, 2 + round(severity * (platform.p - 2) / 2))
        onset = (0.8 - 0.5 * severity) * horizon
        factor = 1.0 + (_MULTIDROP_MAX_FACTOR - 1.0) * severity
        lags = rng.uniform(0.0, 0.06 * horizon, size=count)
        for widx in range(1, count + 1):
            scenario = scenario.with_slowdown(
                widx, onset + float(lags[widx - 1]), factor
            )
        return scenario

    if kind == "congestion":
        bursts = 1 + round(7 * severity)
        duration = 0.04 * horizon * (0.5 + severity)
        times = np.sort(rng.uniform(0.05, 0.95, size=bursts)) * horizon
        for i, t in enumerate(times):
            scenario = scenario.with_background(
                float(t), float(duration), label=f"congestion-{i}"
            )
        return scenario

    # brownout: the shared link degrades at 30 % of the horizon and
    # recovers at 70 % (scaled_from composes, so the second step undoes
    # the first on the suffix).
    factor = 1.0 + 4.0 * severity
    scenario = scenario.with_bandwidth_step(0.3 * horizon, factor)
    return scenario.with_bandwidth_step(0.7 * horizon, 1.0 / factor)


def parse_scenario_arg(arg: str) -> tuple[str, float | None]:
    """Parse the CLI's ``--scenario KIND[:SEVERITY]`` knob.

    Returns ``(kind, severity)`` where ``severity`` is ``None`` when the
    argument does not pin one (the sweep then keeps its severity grid).
    """
    kind, _, sev = arg.partition(":")
    if kind not in SCENARIO_KINDS:
        raise ValueError(
            f"unknown scenario kind {kind!r} (known: {', '.join(SCENARIO_KINDS)})"
        )
    if not sev:
        return kind, None
    severity = float(sev)
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"scenario severity must be in [0, 1], got {severity}")
    return kind, severity
