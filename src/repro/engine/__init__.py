"""Master-worker execution engine.

Runs a scheduling algorithm against a :class:`~repro.platform.Platform`
inside the discrete-event simulator, under the strict one-port model:

* every master↔worker transfer holds the master's port resource for
  ``blocks × c_i`` seconds;
* workers compute delivered phases FIFO at ``w_i`` per block update;
* buffer-generation gating enforces each algorithm's memory layout
  (a worker with one spare A/B generation may receive phase ``j`` only
  once phase ``j−2`` has been computed; without spare buffers, once
  phase ``j−1`` has been computed);
* the result C blocks return to the master before the run completes.

Outputs a :class:`~repro.engine.trace.Trace` with every communication
and computation interval, from which makespan, communication volume,
CCR, utilisation and Gantt charts are derived.  When real
:class:`~repro.blocks.BlockMatrix` data is attached, the engine also
performs the numerical block updates so tests can verify that the
schedule really computes ``C + A·B``.

Two byte-identical backends run the timeline — the event-free fast
scan of :mod:`repro.engine.fast` (default) and the discrete-event
kernel (the reference oracle); select with
``run_scheduler(..., engine="fast"|"des")``.  See
``docs/performance.md``.

Both backends also accept a :class:`repro.scenarios.Scenario` for
non-stationary platforms — time-varying rates, worker dropout,
background port traffic — and stay byte-identical under it
(``run_scheduler(..., scenario=...)``; see ``docs/scenarios.md``).
"""

from repro.engine.batch import BatchItem, BatchTrace, run_batch
from repro.engine.chunks import Chunk, Phase, tile_chunks, toledo_chunks
from repro.engine.engine import ENGINES, Engine, run_scheduler
from repro.engine.fast import FastEngine, FastEngineUnsupported, run_fast
from repro.engine.model import (
    ModelEngine,
    ModelEngineUnsupported,
    ModelEstimate,
    run_model,
)
from repro.engine.model_batch import run_model_batch
from repro.engine.trace import CommInterval, ComputeInterval, Trace

__all__ = [
    "ENGINES",
    "BatchItem",
    "BatchTrace",
    "Chunk",
    "CommInterval",
    "ComputeInterval",
    "Engine",
    "FastEngine",
    "FastEngineUnsupported",
    "ModelEngine",
    "ModelEngineUnsupported",
    "ModelEstimate",
    "Phase",
    "Trace",
    "run_batch",
    "run_fast",
    "run_model",
    "run_model_batch",
    "run_scheduler",
    "tile_chunks",
    "toledo_chunks",
]
