"""Vectorized analytic-model evaluation: many estimates per heap walk.

The model engine (:mod:`repro.engine.model`) already reduced one point
to a 3-event-per-chunk heap walk, but capacity-planning grids evaluate
*millions* of such points and pay that walk once each — even when
hundreds of neighbouring points (the same scheduler on rate-perturbed
platforms) share the identical chunk streams and dispatch order.  For
such a group the walk's control flow is a function of the *structure*,
and only the clock arithmetic depends on ``c_i``/``w_i`` — which
vectorizes.

:func:`run_model_batch` applies :func:`repro.engine.batch.run_batch`'s
discipline to the estimator:

1. **Group by structure — without launching.**  Schedulers that can
   prove their launch structure from the platform rates alone publish
   cheap per-point plan tokens
   (:meth:`~repro.schedulers.base.ChunkScheduler.plan_signatures`:
   HoLM/ORROML from the Section 5 plan, the demand-driven family from
   the tile side); equal tokens place points in one group and only the
   group *representative* is ever launched.  Schedulers that cannot
   (``plan_signatures() is None``) fall back to launching each point on
   a throwaway :class:`~repro.engine.model.ModelEngine` and folding the
   agent descriptors into the same structural signature the fast batch
   path uses (:func:`repro.engine.batch._signature`).
2. **One heap walk per group.**  The group's first point (the
   *representative*) drives a verbatim replay of ``model._estimate``'s
   stationary path; every time-valued scalar is shadowed by an ``(N,)``
   float64 array computed with the identical operation sequence, and
   every heap pop is verified against the representative's dispatch
   order (strict advance where the representative strictly advances,
   non-decreasing across representative ties).  All structural
   quantities — chunk stats, peak buffers, update counts, comm blocks —
   are group-invariant by the signature.
3. **Scalar fallback per item.**  Diverged rows, sub-minimum groups,
   scenario points (a rate-step crossing changes the *shape* of the
   estimate, not just its clocks) and schedulers the model engine
   rejects all take the ordinary scalar ``run_scheduler`` path, so
   every returned :class:`~repro.engine.model.ModelEstimate` is
   float-identical to the scalar engine's — prescreen scores and cache
   keys cannot shift.

The soundness argument is :mod:`repro.engine.batch`'s, specialised:
the estimator's only control decisions are heap-pop order (verified
per pop), queue pops (determined by pop order), and structural
comparisons (group-invariant); the remaining ``max()`` selects are
value selects computed with ``np.maximum``, which picks the identical
bytes the scalar ``if``/``else`` does.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.engine.batch import MIN_GROUP, BatchItem, _GroupAbort, _signature
from repro.engine.common import memory_exceeded
from repro.engine.model import (
    _BULK,
    _COUT,
    _START,
    ModelEngine,
    ModelEngineUnsupported,
    ModelEstimate,
    _chunk_stats,
    _Run,
)

__all__ = ["batch_model_items", "run_model_batch"]


def _scan_model_group(
    items: Sequence[BatchItem],
    rep: ModelEngine,
    c_m: np.ndarray,
    w_m: np.ndarray,
) -> Tuple[List[ModelEstimate], np.ndarray]:
    """Replay the stationary estimator once for the whole group.

    ``rep`` is the launched engine of the group's first point; ``c_m``
    and ``w_m`` are the group's ``(n, p)`` per-worker rate matrices
    (row 0 belongs to the representative).  The ``*_r`` locals mirror
    ``model._estimate``'s inlined stationary path statement for
    statement (they *are* that walk for point 0); each is shadowed by
    an ``(N,)`` array holding the same quantity for every point.
    Returns one estimate per row plus the validity mask.  Raises
    :class:`~repro.engine.batch._GroupAbort` when the representative's
    own flow raises (memory cap — structural, so every member re-runs
    scalar and raises authentically).
    """
    rep_item = items[0]
    n = len(items)
    workers = rep.platform.workers
    p = rep.platform.p
    two_port = rep_item.two_port
    check_memory = rep_item.check_memory
    recv_pid = 1 if two_port else 0

    c_r = [wk.c for wk in workers]
    w_r = [wk.w for wk in workers]
    c_v = [np.ascontiguousarray(c_m[:, widx]) for widx in range(p)]
    w_v = [np.ascontiguousarray(w_m[:, widx]) for widx in range(p)]

    zeros = np.zeros(n)
    port_avail_r = [0.0, 0.0]
    port_avail_v = [zeros, zeros]
    comm_r = [0.0, 0.0]
    comm_v = [np.zeros(n), np.zeros(n)]
    busy_v = [np.zeros(n) for _ in range(p)]
    updates_done = [0] * p
    peaks = [0] * p
    comm_blocks_total = 0
    updates_total = 0
    makespan_v = np.zeros(n)

    ok = np.ones(n, dtype=bool)
    tb = np.empty(n, dtype=bool)  # comparison scratch

    # Entries are (time_r, seq, stage, run, time_v); seq is unique so
    # comparisons never reach the run object or the array.
    heap: list = []
    seq = 0
    for spec in rep.env.agents:
        heappush(heap, (0.0, seq, _START, _Run(spec), zeros))
        seq += 1

    prev_r = 0.0
    prev_v = zeros
    pop = heappop
    push = heappush
    while heap:
        now_r, _, stage, run, now_v = pop(heap)
        # Dispatch-order lock (see repro.engine.batch): along the
        # representative's pop sequence every row must advance strictly
        # where the rep does and non-decreasingly across rep ties (a rep
        # tie resolves by seq, which is control-path determined and
        # therefore identical for a still-locked row).
        if now_r != prev_r:
            np.greater(now_v, prev_v, out=tb)
        else:
            np.less_equal(prev_v, now_v, out=tb)
        np.logical_and(ok, tb, out=ok)
        prev_r = now_r
        prev_v = now_v
        widx = run.widx
        cf_r = c_r[widx]
        cf_v = c_v[widx]
        if stage == _START:
            queue = run.queue
            if queue is not None:
                chunk = queue.pop()
            else:
                cursor = run.cursor
                if cursor < len(run.chunks):
                    chunk = run.chunks[cursor]
                    run.cursor = cursor + 1
                else:
                    chunk = None
            if chunk is None:
                continue
            stats = chunk.__dict__.get(run.stats_key)
            if stats is None:
                stats = _chunk_stats(chunk, run.gap)
            run.stats = stats
            peak = stats[5]
            if peak > peaks[widx]:
                peaks[widx] = peak
                if check_memory and peak > workers[widx].m:
                    raise _GroupAbort(
                        memory_exceeded(widx, peak, workers[widx].m, now_r)
                    )
            run.chunk = chunk
            blocks = stats[0] + stats[3]
            avail_r = port_avail_r[0]
            start_r = avail_r if avail_r > now_r else now_r
            fill_r = start_r + blocks * cf_r
            # Value select, not control flow: np.maximum picks the
            # identical bytes the scalar `avail if avail > now` does.
            start_v = np.maximum(port_avail_v[0], now_v)
            fill_v = start_v + blocks * cf_v
            port_avail_r[0] = fill_r
            port_avail_v[0] = fill_v
            comm_r[0] += fill_r - start_r
            comm_v[0] += fill_v - start_v
            push(heap, (fill_r, seq, _BULK, run, fill_v))
            seq += 1
        elif stage == _BULK:
            c_blocks, ab, ups, fill, last_ups, _ = run.stats
            avail_r = port_avail_r[0]
            bulk_start_r = avail_r if avail_r > now_r else now_r
            deliver_r = bulk_start_r + (ab - fill) * cf_r
            bulk_start_v = np.maximum(port_avail_v[0], now_v)
            deliver_v = bulk_start_v + (ab - fill) * cf_v
            port_avail_r[0] = deliver_r
            port_avail_v[0] = deliver_v
            comm_r[0] += deliver_r - bulk_start_r
            comm_v[0] += deliver_v - bulk_start_v
            wf_r = w_r[widx]
            wf_v = w_v[widx]
            nominal_r = now_r + ups * wf_r
            nominal_v = now_v + ups * wf_v
            busy_v[widx] += nominal_v - now_v
            updates_done[widx] += ups
            if run.gap == 1:
                comp_r = deliver_r + ups * wf_r
                comp_v = deliver_v + ups * wf_v
            else:
                gated_r = deliver_r + last_ups * wf_r
                gated_v = deliver_v + last_ups * wf_v
                comp_r = nominal_r if nominal_r > gated_r else gated_r
                comp_v = np.maximum(nominal_v, gated_v)
            push(heap, (comp_r, seq, _COUT, run, comp_v))
            seq += 1
        else:  # _COUT
            stats = run.stats
            c_blocks = stats[0]
            avail_r = port_avail_r[recv_pid]
            start_r = avail_r if avail_r > now_r else now_r
            done_r = start_r + c_blocks * cf_r
            start_v = np.maximum(port_avail_v[recv_pid], now_v)
            done_v = start_v + c_blocks * cf_v
            port_avail_r[recv_pid] = done_r
            port_avail_v[recv_pid] = done_v
            comm_r[recv_pid] += done_r - start_r
            comm_v[recv_pid] += done_v - start_v
            comm_blocks_total += stats[1] + 2 * c_blocks
            updates_total += stats[2]
            np.maximum(makespan_v, done_v, out=makespan_v)
            push(heap, (done_r, seq, _START, run, done_v))
            seq += 1

    # Bulk-extract the columns once (`.tolist()` yields the same Python
    # floats bit for bit) instead of 256×(p+3) scalar indexing calls.
    makespan_l = makespan_v.tolist()
    port0_l = comm_v[0].tolist()
    port1_l = comm_v[1].tolist()
    busy_rows = list(zip(*(col.tolist() for col in busy_v)))
    worker_updates = tuple(updates_done)
    peak_blocks = tuple(peaks)
    estimates = [
        ModelEstimate(
            makespan=makespan_l[row],
            comm_blocks=comm_blocks_total,
            total_updates=updates_total,
            port_busy=(port0_l[row], port1_l[row]),
            worker_busy=busy_rows[row],
            worker_updates=worker_updates,
            peak_blocks=peak_blocks,
            two_port=two_port,
        )
        for row in range(n)
    ]
    return estimates, ok


def _rate_matrices(
    members: Sequence[tuple], p: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(n, p)`` matrices of per-worker ``c``, ``w`` and memory."""
    flat = [wk for _, item, _ in members for wk in item.platform.workers]
    n = len(members)
    return (
        np.array([wk.c for wk in flat]).reshape(n, p),
        np.array([wk.w for wk in flat]).reshape(n, p),
        np.array([wk.m for wk in flat], dtype=np.int64).reshape(n, p),
    )


def _scan_rows(
    members: Sequence[tuple],
    rows: Sequence[int],
    shape: Any,
    c_m: np.ndarray,
    w_m: np.ndarray,
    results: List[Any],
    scalar: Callable[[int], Any],
    engine: ModelEngine | None = None,
) -> int:
    """Scan one structure-sharing group; scatter estimates and fallbacks.

    ``rows`` indexes into ``members`` (and the rate matrices); the
    first row is the representative.  ``engine`` is its launched
    engine when the caller already has one (the signature-fallback
    path); otherwise the representative is launched here — the plan
    token certifies every other row would build the same structure.
    Returns how many rows the vectorized path committed.
    """
    if engine is None:
        i0, item0, sch0 = members[rows[0]]
        engine = ModelEngine(item0.platform, item0.shape)
        try:
            sch0.launch(engine)
        except ModelEngineUnsupported:
            # No silent fallback tier for the model engine: the scalar
            # path re-raises the same rejection authentically.
            for row in rows:
                results[members[row][0]] = scalar(members[row][0])
            return 0
    sel = np.array(rows)
    try:
        estimates, ok = _scan_model_group(
            [members[row][1] for row in rows], engine, c_m[sel], w_m[sel]
        )
        # run_scheduler's post-run accounting check is structural: a
        # mismatch means every member raises, authentically, via the
        # scalar path.
        if estimates[0].total_updates != shape.total_updates:
            raise _GroupAbort()
    except _GroupAbort:
        for row in rows:
            results[members[row][0]] = scalar(members[row][0])
        return 0
    vectorized = 0
    for pos, flag in enumerate(ok.tolist()):
        i = members[rows[pos]][0]
        if flag:
            results[i] = estimates[pos]
            vectorized += 1
        else:
            results[i] = scalar(i)
    return vectorized


def _signature_groups(
    members: Sequence[tuple],
    results: List[Any],
    scalar: Callable[[int], Any],
    min_group: int,
    c_m: np.ndarray,
    w_m: np.ndarray,
) -> int:
    """Launch-everything fallback for ``plan_signatures() is None``.

    Each point's scheduler runs on a throwaway engine and the agent
    descriptors fold into :func:`repro.engine.batch._signature`; the
    signature's structural fields subsume the plan token, so this path
    is sound for any scheduler at a per-point launch cost.
    """
    id_memo: Dict[int, int] = {}
    content_ids: Dict[tuple, int] = {}
    groups: Dict[tuple, List[Tuple[int, ModelEngine]]] = {}
    for row, (i, item, sch) in enumerate(members):
        engine = ModelEngine(item.platform, item.shape)
        try:
            sch.launch(engine)
        except ModelEngineUnsupported:
            results[i] = scalar(i)
            continue
        sig = _signature(engine, item, id_memo, content_ids)
        groups.setdefault(sig, []).append((row, engine))
    vectorized = 0
    for sig, grouped in groups.items():
        rows = [row for row, _ in grouped]
        if len(rows) < min_group:
            for row in rows:
                results[members[row][0]] = scalar(members[row][0])
            continue
        vectorized += _scan_rows(
            members, rows, sig[0], c_m, w_m, results, scalar,
            engine=grouped[0][1],
        )
    return vectorized


def batch_model_items(
    items: Sequence[BatchItem],
    indices: Sequence[int],
    results: List[Any],
    scalar: Callable[[int], Any],
    min_group: int = MIN_GROUP,
) -> int:
    """Group the stationary model items of a batch and scan each group.

    ``indices`` selects the ``engine="model"``, scenario-free items of
    ``items``; each resolved slot of ``results`` receives either a
    vectorized :class:`~repro.engine.model.ModelEstimate` or the
    ``scalar(i)`` fallback.  Returns how many items the vectorized path
    committed (the rest went scalar).  Called by
    :func:`repro.engine.batch.run_batch`; use :func:`run_model_batch`
    for a standalone item list.

    Grouping is two-tier: a cheap pre-key (scheduler class, shape,
    port/memory flags, worker count) splits the batch without touching
    any engine, then
    :meth:`~repro.schedulers.base.ChunkScheduler.plan_signatures`
    refines each pre-group into structure-sharing runs with exactly one
    launch per group.  Schedulers that decline (``None``) take
    :func:`_signature_groups` instead.
    """
    min_group = max(min_group, 2)
    pregroups: Dict[tuple, List[tuple]] = {}
    for i in indices:
        item = items[i]
        sch = item.scheduler()
        key = (
            type(sch), item.shape, item.two_port, item.check_memory,
            item.platform.p,
        )
        pregroups.setdefault(key, []).append((i, item, sch))

    vectorized = 0
    for key, members in pregroups.items():
        if len(members) < min_group:
            for i, _, _ in members:
                results[i] = scalar(i)
            continue
        shape, p = key[1], key[4]
        c_m, w_m, m_m = _rate_matrices(members, p)
        # Non-chunk schedulers (no plan_signatures at all) go through
        # the launch-everything fallback, which also surfaces their
        # ModelEngineUnsupported exactly like the scalar path.
        signatures = getattr(members[0][2], "plan_signatures", None)
        tokens = (
            signatures(shape, c_m, w_m, m_m) if signatures is not None
            else None
        )
        if tokens is None:
            vectorized += _signature_groups(
                members, results, scalar, min_group, c_m, w_m
            )
            continue
        # The scan's memory-cap check reads the representative's
        # per-worker capacities, so rows sharing a token must also
        # share them; in the overwhelmingly common case (a rate sweep
        # over one hardware description) a single vector check settles
        # it for the whole pre-group.
        uniform_m = bool((m_m == m_m[0]).all())
        by_token: Dict[Any, List[int]] = {}
        for row, tok in enumerate(tokens):
            if not uniform_m:
                tok = (tok, tuple(m_m[row].tolist()))
            by_token.setdefault(tok, []).append(row)
        for rows in by_token.values():
            if len(rows) < min_group:
                for row in rows:
                    results[members[row][0]] = scalar(members[row][0])
                continue
            vectorized += _scan_rows(
                members, rows, shape, c_m, w_m, results, scalar
            )
    return vectorized


def run_model_batch(
    items: Sequence[BatchItem],
    min_group: int = MIN_GROUP,
    counters: Dict[str, int] | None = None,
) -> List[Any]:
    """Evaluate model-engine ``items`` in structure-sharing groups.

    The standalone entry point (benchmarks, tests, library callers
    holding a pure model workload); :func:`repro.engine.batch.run_batch`
    reaches the same code for the model items of a mixed batch.  Items
    that are not stationary ``engine="model"`` points, or that diverge
    from their group, take the scalar :func:`~repro.engine.engine.
    run_scheduler` path — results are float-identical either way.

    ``counters``, when given, receives ``{"vectorized": V, "scalar":
    S}`` so callers (the throughput gate) can assert the fast path
    actually ran.
    """
    from repro.engine.engine import run_scheduler

    items = list(items)
    results: List[Any] = [None] * len(items)

    def scalar(i: int) -> Any:
        item = items[i]
        return run_scheduler(
            item.scheduler(), item.platform, item.shape,
            two_port=item.two_port, check_memory=item.check_memory,
            engine=item.engine, scenario=item.scenario,
        )

    model_indices: List[int] = []
    for i, item in enumerate(items):
        if item.engine == "model" and item.scenario is None:
            model_indices.append(i)
        else:
            results[i] = scalar(i)
    vectorized = batch_model_items(
        items, model_indices, results, scalar, min_group
    )
    if counters is not None:
        counters["vectorized"] = vectorized
        counters["scalar"] = len(items) - vectorized
    return results
