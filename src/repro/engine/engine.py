"""The engine proper: simulate a scheduler on a platform.

Architecture: one simulation *agent* (a kernel process) per worker.
Each agent processes its stream of chunks sequentially — receive the C
tile, stream phases under the buffer-generation gate, return the C tile
— while all transfers contend for the master's one-port resource (FIFO).
Static algorithms precompute per-worker chunk lists; demand-driven
algorithms share a single chunk queue that agents pop as they become
free, so "send the next chunk to the first available worker" emerges
from the event ordering.

Worker computation needs no separate process: phases are computed FIFO,
so each phase's compute interval is ``[max(arrival, previous end),
… + updates·w_i]``, recorded as it is scheduled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional, Protocol, Sequence

from repro.blocks.matrix import BlockMatrix
from repro.blocks.shape import ProblemShape
from repro.engine.chunks import Chunk, Phase
from repro.engine.common import memory_exceeded, validate_block_data
from repro.engine.fast import FastEngineUnsupported, run_fast
from repro.engine.model import ModelEstimate, run_model
from repro.engine.trace import CommInterval, ComputeInterval, Trace
from repro.platform.model import Platform
from repro.scenarios.model import BackgroundEvent, Scenario
from repro.sim.core import Environment
from repro.sim.resources import Resource

__all__ = ["ENGINES", "Engine", "ChunkQueue", "run_scheduler", "SchedulerProtocol"]

#: Selectable simulation engines: the event-free fast timeline scan
#: (default), the generator-based discrete-event kernel (the reference
#: oracle) — these two produce byte-identical traces — and the analytic
#: model estimator of :mod:`repro.engine.model`, whose contract is a
#: validated error envelope rather than parity (see ``docs/engines.md``).
ENGINES = ("fast", "des", "model")


class ChunkQueue:
    """Shared FIFO of chunks for demand-driven dispatch."""

    def __init__(self, chunks: Iterable[Chunk]):
        self._chunks = list(chunks)
        self._next = 0

    def pop(self) -> Optional[Chunk]:
        """Next chunk, or ``None`` when exhausted."""
        if self._next >= len(self._chunks):
            return None
        chunk = self._chunks[self._next]
        self._next += 1
        return chunk

    def __len__(self) -> int:
        return len(self._chunks) - self._next


class Engine:
    """Simulation state shared by all agents of one run."""

    def __init__(
        self,
        platform: Platform,
        shape: ProblemShape,
        data: Optional[tuple[BlockMatrix, BlockMatrix, BlockMatrix]] = None,
        two_port: bool = False,
        check_memory: bool = True,
        scenario: Optional[Scenario] = None,
    ):
        if scenario is not None and scenario.platform != platform:
            raise ValueError(
                f"scenario {scenario.name!r} wraps platform "
                f"{scenario.platform.name!r}, not {platform.name!r}"
            )
        self.platform = platform
        self.shape = shape
        self.data = data
        self.check_memory = check_memory
        self.env = Environment()
        self.send_port = Resource(self.env, capacity=1)
        self.recv_port = Resource(self.env, capacity=1) if two_port else self.send_port
        self.two_port = two_port
        self.trace = Trace()
        p = platform.p
        self.compute_done = [0.0] * p
        self._mem_used = [0] * p
        self._pending_free: list[list[tuple[float, int]]] = [[] for _ in range(p)]
        self.scenario = scenario
        self._varying = scenario is not None and scenario.has_rate_variation
        # The background-traffic process is registered before the
        # scheduler's agents (``launch`` runs after construction), so
        # its events sequence ahead of same-time agent events — the
        # fast engine replicates this creation order exactly.
        if scenario is not None and scenario.background:
            self.env.process(
                self._background_agent(scenario.background), name="background"
            )
        if data is not None:
            validate_block_data(data, shape)

    # -- memory bookkeeping (lazy release keeps peaks exact) -----------------
    def _release_expired(self, widx: int) -> None:
        now = self.env.now
        pending = self._pending_free[widx]
        keep: list[tuple[float, int]] = []
        for end, blocks in pending:
            if end <= now + 1e-12:
                self._mem_used[widx] -= blocks
            else:
                keep.append((end, blocks))
        self._pending_free[widx] = keep

    def alloc(self, widx: int, blocks: int) -> None:
        """Claim ``blocks`` buffers on worker ``widx`` (0-based) now."""
        self._release_expired(widx)
        self._mem_used[widx] += blocks
        self.trace.note_memory(widx + 1, self._mem_used[widx])
        if self.check_memory:
            cap = self.platform.workers[widx].m
            if self._mem_used[widx] > cap:
                raise memory_exceeded(
                    widx, self._mem_used[widx], cap, self.env.now
                )

    def free_at(self, widx: int, blocks: int, when: float) -> None:
        """Release ``blocks`` buffers at simulated time ``when``."""
        self._pending_free[widx].append((when, blocks))

    def free_now(self, widx: int, blocks: int) -> None:
        """Release ``blocks`` buffers immediately."""
        self._release_expired(widx)
        self._mem_used[widx] -= blocks

    # -- port operations ---------------------------------------------------------
    def send(self, widx: int, blocks: int, label: str = "") -> Generator:
        """Hold the outbound port for ``blocks·c_i(t)``; returns arrival time.

        Under a scenario the rate is sampled at the instant the port is
        granted (``c_i(start)``) and held for the whole transfer.
        """
        wk = self.platform.workers[widx]
        with self.send_port.request() as req:
            yield req
            start = self.env.now
            rate = self.scenario.c_rate(widx, start) if self._varying else wk.c
            yield self.env.timeout(blocks * rate)
            self.trace.add_comm(
                CommInterval(widx + 1, "send", start, self.env.now, blocks, label, 0)
            )
        return self.env.now

    def receive(self, widx: int, blocks: int, label: str = "") -> Generator:
        """Hold the inbound port for ``blocks·c_i(t)`` (worker → master)."""
        wk = self.platform.workers[widx]
        port_id = 1 if self.two_port else 0
        with self.recv_port.request() as req:
            yield req
            start = self.env.now
            rate = self.scenario.c_rate(widx, start) if self._varying else wk.c
            yield self.env.timeout(blocks * rate)
            self.trace.add_comm(
                CommInterval(widx + 1, "recv", start, self.env.now, blocks, label, port_id)
            )
        return self.env.now

    def _background_agent(self, events: Sequence[BackgroundEvent]) -> Generator:
        """Kernel process holding the master's port for external traffic.

        One process services every event in time order, so overdue
        events (delayed behind a long transfer) queue immediately and
        back-to-back.  Holds are recorded as worker-0 ``send`` intervals
        with zero blocks: they occupy the port without moving payload.
        """
        for ev in events:
            yield from self.wait_until(ev.time)
            with self.send_port.request() as req:
                yield req
                start = self.env.now
                yield self.env.timeout(ev.duration)
                self.trace.add_comm(
                    CommInterval(0, "send", start, self.env.now, 0, ev.label, 0)
                )

    def wait_until(self, when: float) -> Generator:
        """Advance the calling agent to simulated time ``when``."""
        if when > self.env.now:
            yield self.env.timeout(when - self.env.now)

    # -- computation ---------------------------------------------------------------
    def queue_compute(
        self, widx: int, updates: int, arrival: float, label: str = ""
    ) -> float:
        """Schedule a phase's computation; returns its completion time.

        Under a scenario the compute rate is sampled at the phase's
        start time (``w_i(start)``) and held for the whole phase.
        """
        wk = self.platform.workers[widx]
        start = max(arrival, self.compute_done[widx])
        rate = self.scenario.w_rate(widx, start) if self._varying else wk.w
        end = start + updates * rate
        self.compute_done[widx] = end
        self.trace.add_compute(ComputeInterval(widx + 1, start, end, updates, label))
        return end

    def execute_phase(self, chunk: Chunk, phase: Phase) -> None:
        """Apply the phase's block updates to the attached matrices."""
        if self.data is None:
            return
        a, b, c = self.data
        q = self.shape.q
        r0, r1 = phase.row_range if phase.row_range is not None else chunk.row_range
        c0, c1 = chunk.col_range
        k0, k1 = phase.k_range
        c.array[r0 * q : r1 * q, c0 * q : c1 * q] += (
            a.array[r0 * q : r1 * q, k0 * q : k1 * q]
            @ b.array[k0 * q : k1 * q, c0 * q : c1 * q]
        )

    # -- the chunk protocol -----------------------------------------------------
    def process_chunk(self, widx: int, chunk: Chunk, generation_gap: int) -> Generator:
        """Run one chunk on worker ``widx`` (0-based).

        ``generation_gap`` is 2 for layouts with a spare A/B buffer
        generation (overlapped algorithms) and 1 otherwise: the send of
        phase ``j`` may not start before the computation of phase
        ``j − generation_gap`` has finished.
        """
        if generation_gap not in (1, 2):
            raise ValueError(f"generation_gap must be 1 or 2, got {generation_gap}")
        self.alloc(widx, chunk.c_blocks)
        yield from self.send(widx, chunk.c_blocks, label="C-in")
        ends: list[float] = []
        ab_labels, upd_labels = chunk.ab_labels, chunk.upd_labels
        for idx, phase in enumerate(chunk.phases):
            if idx >= generation_gap:
                yield from self.wait_until(ends[idx - generation_gap])
            self.alloc(widx, phase.in_blocks)
            arrival = yield from self.send(
                widx, phase.in_blocks, label=ab_labels[idx]
            )
            end = self.queue_compute(
                widx, phase.updates, arrival, label=upd_labels[idx]
            )
            self.free_at(widx, phase.in_blocks, end)
            self.execute_phase(chunk, phase)
            ends.append(end)
        yield from self.wait_until(self.compute_done[widx])
        yield from self.receive(widx, chunk.c_blocks, label="C-out")
        self.free_now(widx, chunk.c_blocks)

    def static_agent(
        self, widx: int, chunks: Sequence[Chunk], generation_gap: int
    ) -> Generator:
        """Agent processing a fixed chunk list in order."""
        for chunk in chunks:
            yield from self.process_chunk(widx, chunk, generation_gap)

    def demand_agent(
        self, widx: int, queue: ChunkQueue, generation_gap: int
    ) -> Generator:
        """Agent popping chunks from a shared queue whenever it is free."""
        while True:
            chunk = queue.pop()
            if chunk is None:
                return
            yield from self.process_chunk(widx, chunk, generation_gap)


class SchedulerProtocol(Protocol):
    """What the engine requires of a scheduler.

    ``launch(engine)`` must create the run's agents as kernel processes
    (via ``engine.env.process``) and may keep references for reporting.
    """

    name: str

    def launch(self, engine: Engine) -> None:  # pragma: no cover - protocol
        ...


def run_scheduler(
    scheduler: "SchedulerProtocol",
    platform: Platform | Scenario,
    shape: ProblemShape,
    data: Optional[tuple[BlockMatrix, BlockMatrix, BlockMatrix]] = None,
    two_port: bool = False,
    check_memory: bool = True,
    check_invariants: bool = True,
    engine: str = "fast",
    scenario: Optional[Scenario] = None,
) -> Trace | ModelEstimate:
    """Simulate ``scheduler`` on ``platform`` and return the trace.

    When ``data`` is supplied the block updates are executed numerically
    (C is modified in place).  ``check_memory`` enforces each worker's
    ``m_i`` capacity online; ``check_invariants`` validates the one-port
    and sequential-compute properties after the run.

    ``engine`` selects the simulation backend: ``"fast"`` (default) is
    the event-free timeline scan of :mod:`repro.engine.fast`, ``"des"``
    the generator-based discrete-event kernel, and ``"model"`` the
    analytic estimator of :mod:`repro.engine.model`, which returns a
    :class:`~repro.engine.model.ModelEstimate` (mirroring the trace's
    summary interface, within a validated error envelope — see
    ``docs/engines.md``) and rejects ``data`` since it executes
    nothing.  The two simulating backends produce
    byte-identical traces for chunk schedulers (see
    ``docs/performance.md``); a scheduler that launches raw kernel
    processes silently falls back to the DES (its ``launch`` runs again
    on the kernel engine, so ``launch`` must be repeatable — all
    in-tree schedulers are).  The fast attempt is guaranteed
    side-effect free up to the fallback: ``run_fast`` withholds ``data``
    until ``launch`` has succeeded, so a numeric ``C`` can never receive
    updates from an attempt that was abandoned.

    ``scenario`` makes the platform non-stationary (time-varying rates,
    dropout, background traffic; see :mod:`repro.scenarios` and
    ``docs/scenarios.md``).  Passing a :class:`~repro.scenarios.Scenario`
    as ``platform`` is equivalent to passing its platform plus the
    scenario.  Both engines remain byte-identical under scenarios.
    """
    if isinstance(platform, Scenario):
        if scenario is not None:
            raise ValueError(
                "pass the scenario either as `platform` or as `scenario`, not both"
            )
        scenario, platform = platform, platform.platform
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    if engine == "model":
        if data is not None:
            raise ValueError(
                "engine='model' estimates timing analytically and cannot "
                "execute numeric block updates; use engine='fast' or 'des'"
            )
        estimate = run_model(
            scheduler, platform, shape,
            two_port=two_port, check_memory=check_memory, scenario=scenario,
        )
        expected = shape.total_updates
        if estimate.total_updates != expected:
            raise RuntimeError(
                f"{scheduler.name}: executed {estimate.total_updates} "
                f"block updates, expected {expected}"
            )
        return estimate
    trace: Optional[Trace] = None
    if engine == "fast":
        try:
            trace = run_fast(
                scheduler, platform, shape,
                data=data, two_port=two_port, check_memory=check_memory,
                scenario=scenario,
            )
        except FastEngineUnsupported:
            trace = None  # raw kernel processes: re-launch on the DES
    if trace is None:
        des = Engine(
            platform, shape, data=data, two_port=two_port,
            check_memory=check_memory, scenario=scenario,
        )
        scheduler.launch(des)
        des.env.run()
        trace = des.trace
    if check_invariants:
        trace.check_invariants()
    expected = shape.total_updates
    got = trace.total_updates
    if got != expected:
        raise RuntimeError(
            f"{scheduler.name}: executed {got} block updates, expected {expected}"
        )
    return trace
