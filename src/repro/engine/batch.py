"""Vectorized batch evaluation: many sweep points per engine pass.

The fast engine (:mod:`repro.engine.fast`) reduced one point to a single
chronological scan, but sweeps still pay that scan once per point even
when hundreds of nearby points — the same scheduler on rate-perturbed
platforms — share the *identical decision structure*: the same agents,
the same chunk streams, the same dispatch order.  For such a group the
only thing that differs between points is arithmetic on ``c_i``/``w_i``,
and arithmetic vectorizes.

:func:`run_batch` makes "evaluate N points" one operation:

1. **Group** the points by decision structure.  Each point's scheduler
   is launched on a throwaway :class:`~repro.engine.fast.FastEngine`
   (launch builds chunk lists and queues but simulates nothing) and the
   resulting agent descriptors are folded into a structural signature —
   worker index, generation gap, and the exact chunk/phase streams,
   plus the platform arity, memory capacities, the problem shape and
   the port model.  Points with equal signatures form one group.
2. **Scan once per group.** The group's first point (the
   *representative*) drives a verbatim replay of the fast engine's
   chronological scan; every time-valued scalar of that scan is
   shadowed by an ``(N,)`` float64 array holding the same quantity for
   all points, computed with the identical operation sequence (numpy
   elementwise float64 arithmetic is IEEE-identical to Python float
   arithmetic).  Every *control decision* the scan takes — gate
   comparisons, heap-head orderings, memory-expiry prefixes, the
   strict-vs-tie pattern of consecutive dispatch instants — is taken
   from the representative and then verified elementwise for the whole
   group; a point whose comparison resolves differently is marked
   *diverged*.
3. **Fall back per point.**  Diverged points, points whose structure
   matched nobody, scenario / non-``fast`` points, and schedulers the
   fast engine rejects are evaluated through the ordinary scalar
   :func:`~repro.engine.engine.run_scheduler` path.  Results are
   therefore **byte-identical to** ``engine="fast"`` for every point,
   always: the vectorized path only ever commits a result it proved
   followed the representative's decision trace exactly.

Valid points receive a :class:`BatchTrace` — a lightweight per-point
view over the group's shared ``(points, intervals)`` time matrices that
quacks like :class:`~repro.engine.trace.Trace` (same columns, metrics,
invariant checks, and :func:`~repro.analysis.metrics.summarize_trace`
output), with :meth:`BatchTrace.to_trace` materializing a real
:class:`Trace` on demand.

Why this is sound
-----------------
The fast scan is a deterministic function of (structure, rates).  Fix a
point ``k`` in a group and compare its scalar scan against the
representative's.  Both start in the same state.  Inductively, if both
have followed the same control path so far, every stored quantity of
``k``'s scan equals row ``k`` of the corresponding shadow array (same
operations, same operands, IEEE float64 both ways).  The next control
decision is a time comparison (all counts, labels and queue contents
are group-invariant by the signature); the scan verifies ``k`` resolves
it the same way, so the paths stay locked together — including ties,
because a tie is broken by the global scheduling counter and the
counter assignment is itself control-path determined.  A single failed
verification conservatively voids the point, never the result.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks.shape import ProblemShape
from repro.engine.common import memory_exceeded
from repro.engine.fast import FastEngine, FastEngineUnsupported
from repro.engine.trace import (
    CommInterval,
    ComputeInterval,
    Trace,
    _assert_no_overlap,
)
from repro.platform.model import Platform
from repro.scenarios.model import Scenario

__all__ = ["BatchItem", "BatchTrace", "run_batch"]

#: Smallest group worth vectorizing: below this the per-group setup
#: (shadow arrays, verification ops) costs more than it amortizes.
MIN_GROUP = 2


@dataclass(frozen=True)
class BatchItem:
    """One point of a batch evaluation.

    ``scheduler`` is a **factory** returning a fresh scheduler instance
    per call (launch consumes scheduler-built queues, and fallback
    paths re-launch), mirroring how the experiment modules construct
    one scheduler per :func:`~repro.engine.engine.run_scheduler` call.

    ``engine``/``scenario`` widen the contract so experiment batch
    functions can route *every* point through :func:`run_batch`:
    anything that is not a stationary ``engine="fast"`` point simply
    takes the scalar path.
    """

    scheduler: Callable[[], Any]
    platform: Platform
    shape: ProblemShape
    two_port: bool = False
    check_memory: bool = True
    engine: str = "fast"
    scenario: Optional[Scenario] = None


class _GroupAbort(Exception):
    """The representative's control flow raised (memory cap, bad gap,
    update-count mismatch): the whole group re-runs scalar so each
    point raises — or survives — authentically."""


class _VAgent:
    """Vectorized twin of the fast engine's ``_Agent``: every time
    quantity exists twice, as the representative's Python float
    (``*_r``, drives control flow) and as the group's ``(N,)`` shadow
    array (``*_v``)."""

    __slots__ = (
        "widx", "gap", "chunks", "cursor", "queue",
        "c_r", "c_v", "w_r", "w_v",
        "chunk", "phases", "nph", "ab_labels", "upd_labels",
        "end1_r", "end1_v", "end2_r", "end2_v",
        "pidx", "stage", "wait_kind",
        "start_r", "start_v", "dur_r", "dur_v", "blocks",
    )

    def __init__(self, spec, c_r, c_v, w_r, w_v):
        self.widx = spec.widx
        self.gap = spec.gap
        self.chunks = spec.chunks
        self.cursor = 0
        self.queue = spec.queue
        self.c_r = c_r
        self.c_v = c_v
        self.w_r = w_r
        self.w_v = w_v


# Stage / wait constants mirror repro.engine.fast exactly.
_HOP = 0
_DONE = 1
_WAIT = 2
_CIN = 0
_PHASE = 1
_COUT = 2
_GAP = 0
_FINAL = 1


class _GroupTrace:
    """Shared structural + ``(N, E)`` time data of one scanned group."""

    __slots__ = (
        "n",
        "comm_worker", "comm_dir", "comm_blocks", "comm_label", "comm_port",
        "comm_start", "comm_end",
        "comp_worker", "comp_updates", "comp_label",
        "comp_start", "comp_end",
        "memory_peak",
    )


class _LazyIntervals:
    """Sequence view materializing interval tuples on demand."""

    __slots__ = ("_build", "_n")

    def __init__(self, build, n):
        self._build = build
        self._n = n

    def __len__(self):
        return self._n

    def __bool__(self):
        return self._n > 0

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._build(j) for j in range(*i.indices(self._n))]
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        return self._build(i)

    def __iter__(self):
        for i in range(self._n):
            yield self._build(i)

    def __eq__(self, other):
        if isinstance(other, (_LazyIntervals, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable-adjacent sequence semantics, like list


class BatchTrace:
    """One point's view of a vectorized group scan.

    Duck-types :class:`~repro.engine.trace.Trace`: the column accessors
    return the shared structural arrays plus this point's contiguous
    row of the group's ``(points, intervals)`` time matrices, so every
    metric — and :func:`~repro.analysis.metrics.summarize_trace`, which
    reduces over exactly these columns — computes the same bytes the
    scalar fast engine's trace would.  ``comms``/``computes`` are lazy
    sequences building real interval tuples on access (tests, error
    messages); :meth:`to_trace` materializes a full :class:`Trace`.
    """

    __slots__ = ("_g", "_i", "_comm_cols", "_compute_cols", "_peaks")

    def __init__(self, group: _GroupTrace, index: int):
        self._g = group
        self._i = index
        self._comm_cols: Optional[tuple] = None
        self._compute_cols: Optional[tuple] = None
        self._peaks: Optional[dict] = None

    # -- interval views -----------------------------------------------------
    @property
    def comms(self):
        g, i = self._g, self._i

        def build(e):
            return CommInterval(
                int(g.comm_worker[e]), g.comm_dir[e],
                float(g.comm_start[i, e]), float(g.comm_end[i, e]),
                int(g.comm_blocks[e]), g.comm_label[e], int(g.comm_port[e]),
            )

        return _LazyIntervals(build, len(g.comm_worker))

    @property
    def computes(self):
        g, i = self._g, self._i

        def build(e):
            return ComputeInterval(
                int(g.comp_worker[e]),
                float(g.comp_start[i, e]), float(g.comp_end[i, e]),
                int(g.comp_updates[e]), g.comp_label[e],
            )

        return _LazyIntervals(build, len(g.comp_worker))

    @property
    def memory_peak(self) -> dict:
        peaks = self._peaks
        if peaks is None:
            peaks = self._peaks = dict(self._g.memory_peak)
        return peaks

    def to_trace(self) -> Trace:
        """Materialize a real :class:`Trace` (parity tests, plotting)."""
        trace = Trace(
            comms=list(self.comms),
            computes=list(self.computes),
            memory_peak=dict(self._g.memory_peak),
        )
        return trace

    # -- columns (Trace-compatible) ----------------------------------------
    def comm_columns(self) -> tuple:
        cols = self._comm_cols
        if cols is None:
            g, i = self._g, self._i
            cols = self._comm_cols = (
                g.comm_worker, g.comm_start[i], g.comm_end[i],
                g.comm_blocks, g.comm_port,
            )
        return cols

    def compute_columns(self) -> tuple:
        cols = self._compute_cols
        if cols is None:
            g, i = self._g, self._i
            cols = self._compute_cols = (
                g.comp_worker, g.comp_start[i], g.comp_end[i], g.comp_updates,
            )
        return cols

    # -- metrics (bodies mirror Trace) -------------------------------------
    @property
    def makespan(self) -> float:
        last_comm = float(self.comm_columns()[2].max()) if self.comms else 0.0
        last_comp = (
            float(self.compute_columns()[2].max()) if self.computes else 0.0
        )
        return max(last_comm, last_comp)

    @property
    def work_makespan(self) -> float:
        if self.comms:
            worker, _, end, _, _ = self.comm_columns()
            real = end[worker > 0]
            last_comm = float(real.max()) if real.size else 0.0
        else:
            last_comm = 0.0
        last_comp = (
            float(self.compute_columns()[2].max()) if self.computes else 0.0
        )
        return max(last_comm, last_comp)

    @property
    def comm_blocks(self) -> int:
        return int(self.comm_columns()[3].sum()) if self.comms else 0

    @property
    def total_updates(self) -> int:
        return int(self.compute_columns()[3].sum()) if self.computes else 0

    @property
    def ccr(self) -> float:
        updates = self.total_updates
        if updates == 0:
            raise ValueError("no computation recorded; CCR undefined")
        return self.comm_blocks / updates

    @property
    def enrolled_workers(self) -> tuple:
        if not self.computes:
            return ()
        worker, _, _, updates = self.compute_columns()
        return tuple(int(w) for w in np.unique(worker[updates > 0]))

    def port_busy_time(self, port: int = 0) -> float:
        if not self.comms:
            return 0.0
        _, start, end, _, ports = self.comm_columns()
        mask = ports == port
        return float(np.sum(end[mask] - start[mask]))

    def port_utilisation(self, port: int = 0) -> float:
        span = self.makespan
        return self.port_busy_time(port) / span if span > 0 else 0.0

    def worker_busy_time(self, worker: int) -> float:
        if not self.computes:
            return 0.0
        workers, start, end, _ = self.compute_columns()
        mask = workers == worker
        return float(np.sum(end[mask] - start[mask]))

    def worker_utilisation(self, worker: int) -> float:
        span = self.makespan
        return self.worker_busy_time(worker) / span if span > 0 else 0.0

    def check_invariants(self) -> None:
        if self.comms:
            _, start, end, _, ports = self.comm_columns()
            _assert_no_overlap(ports, start, end, self.comms, "port {} overlap")
        if self.computes:
            workers, start, end, _ = self.compute_columns()
            _assert_no_overlap(
                workers, start, end, self.computes,
                "worker {} compute overlap",
            )


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------

def _chunk_token(chunk, id_memo: Dict[int, int], content_ids: Dict[tuple, int]) -> int:
    """Small interned token for a chunk's full structural content.

    Tokens compare by *content equality* (the interning dict keys the
    complete ``(row_range, col_range, phases)`` tuple), never by hash
    alone, so two structurally different chunks can never collide into
    one group.  The ``id()`` memo makes repeat lookups O(1): the
    lru-cached tilings hand the same chunk objects to every point of a
    sweep.
    """
    token = id_memo.get(id(chunk))
    if token is None:
        content = (chunk.row_range, chunk.col_range, chunk.phases)
        token = content_ids.get(content)
        if token is None:
            token = content_ids[content] = len(content_ids)
        id_memo[id(chunk)] = token
    return token


def _signature(engine: FastEngine, item: BatchItem, id_memo, content_ids):
    """Structural signature of one launched point.

    Two points with equal signatures present the scan with identical
    decision structure: same shape / port model / memory capacities and
    agent count, and per agent the same worker index, generation gap
    and exact chunk stream (chunk identity by content, queue sharing by
    position).  Only the platform's ``c``/``w`` rates may differ.
    """
    queue_ids: Dict[int, tuple] = {}
    agents = []
    for spec in engine.env.agents:
        if spec.queue is not None:
            qsig = queue_ids.get(id(spec.queue))
            if qsig is None:
                qsig = (
                    len(queue_ids),
                    spec.queue._next,
                    tuple(
                        _chunk_token(c, id_memo, content_ids)
                        for c in spec.queue._chunks
                    ),
                )
                queue_ids[id(spec.queue)] = qsig
            chunks_sig = None
        else:
            qsig = None
            chunks_sig = tuple(
                _chunk_token(c, id_memo, content_ids) for c in spec.chunks
            )
        agents.append((spec.widx, spec.gap, chunks_sig, qsig))
    return (
        item.shape,
        item.two_port,
        item.check_memory,
        item.platform.p,
        tuple(wk.m for wk in item.platform.workers),
        tuple(agents),
    )


# ---------------------------------------------------------------------------
# The vectorized scan
# ---------------------------------------------------------------------------

def _scan_group(engines: List[FastEngine]) -> Tuple[_GroupTrace, np.ndarray]:
    """Replay the fast scan once for ``engines`` (same structure, point
    0 representative); returns the shared trace data and the validity
    mask.  Raises :class:`_GroupAbort` when the representative's own
    control flow raises (the group then re-runs scalar).

    The body intentionally mirrors ``FastEngine.run`` statement for
    statement — the ``*_r`` locals *are* that scan for point 0, and
    every branch it takes is immediately re-checked elementwise against
    the ``*_v`` shadows.
    """
    rep = engines[0]
    n = len(engines)
    workers = rep.platform.workers
    p = rep.platform.p
    recv_pid = 1 if rep.two_port else 0
    check_memory = rep.check_memory

    c_r = [wk.c for wk in workers]
    w_r = [wk.w for wk in workers]
    c_v = [
        np.array([e.platform.workers[widx].c for e in engines])
        for widx in range(p)
    ]
    w_v = [
        np.array([e.platform.workers[widx].w for e in engines])
        for widx in range(p)
    ]

    ok = np.ones(n, dtype=bool)
    tb = np.empty(n, dtype=bool)  # comparison scratch
    zeros = np.zeros(n)

    caps = [wk.m for wk in workers]
    mem_used = [0] * p
    peaks = [0] * p
    # (end_r, end_v, blocks) per worker; per-worker ends are monotone for
    # *every* point (FIFO compute), so expiry is a prefix for all rows.
    pending_free: List[List[tuple]] = [[] for _ in range(p)]
    port_free = [True, True]
    port_queue: Tuple[deque, deque] = (deque(), deque())
    # Entries are (time_r, seqcode, agent, time_v); seqcode is unique so
    # comparisons never reach the agent or the array.
    heap: list = []
    grants: List[_VAgent] = []
    push = heappush
    pop = heappop
    seq = 0

    compute_done_r = [0.0] * p
    compute_done_v = [zeros] * p

    comm_worker: List[int] = []
    comm_dir: List[str] = []
    comm_blocks_l: List[int] = []
    comm_label: List[str] = []
    comm_port: List[int] = []
    comm_start_l: List[np.ndarray] = []
    comm_end_l: List[np.ndarray] = []
    comp_worker: List[int] = []
    comp_updates: List[int] = []
    comp_label: List[str] = []
    comp_start_l: List[np.ndarray] = []
    comp_end_l: List[np.ndarray] = []

    def expire(widx: int, now_r: float, now_v: np.ndarray, used: int) -> int:
        """The scalar scan's lazy-release prefix loop, with both the
        expired prefix and the first kept entry verified row-wise."""
        pend = pending_free[widx]
        if pend:
            lim_r = now_r + 1e-12
            lim_v = now_v + 1e-12
            i = 0
            m = len(pend)
            while i < m and pend[i][0] <= lim_r:
                np.less_equal(pend[i][1], lim_v, out=tb)
                np.logical_and(ok, tb, out=ok)
                used -= pend[i][2]
                i += 1
            if i < m:
                # Ends are monotone per worker for every row, so one
                # "kept" check covers the whole suffix.
                np.greater(pend[i][1], lim_v, out=tb)
                np.logical_and(ok, tb, out=ok)
            if i:
                del pend[:i]
        return used

    def claim(agent: _VAgent, blocks: int, now_r: float, now_v: np.ndarray) -> None:
        widx = agent.widx
        used = expire(widx, now_r, now_v, mem_used[widx]) + blocks
        mem_used[widx] = used
        if used > peaks[widx]:
            peaks[widx] = used
            if check_memory and used > caps[widx]:
                raise _GroupAbort(memory_exceeded(widx, used, caps[widx], now_r))

    def request_phase(agent: _VAgent, j: int, now_r: float, now_v: np.ndarray) -> None:
        ph = agent.phases[j]
        in_blocks = ph[1] + ph[2]
        claim(agent, in_blocks, now_r, now_v)
        agent.stage = _PHASE
        agent.pidx = j
        agent.blocks = in_blocks
        agent.dur_r = in_blocks * agent.c_r
        agent.dur_v = in_blocks * agent.c_v
        if port_free[0]:
            port_free[0] = False
            agent.start_r = now_r
            agent.start_v = now_v
            grants.append(agent)
        else:
            port_queue[0].append(agent)

    def request_cout(agent: _VAgent, now_r: float, now_v: np.ndarray) -> None:
        blocks = agent.chunk.c_blocks
        agent.stage = _COUT
        agent.blocks = blocks
        agent.dur_r = blocks * agent.c_r
        agent.dur_v = blocks * agent.c_v
        if port_free[recv_pid]:
            port_free[recv_pid] = False
            agent.start_r = now_r
            agent.start_v = now_v
            grants.append(agent)
        else:
            port_queue[recv_pid].append(agent)

    def start_chunk(agent: _VAgent, now_r: float, now_v: np.ndarray) -> None:
        if agent.queue is not None:
            chunk = agent.queue.pop()
            if chunk is None:
                return
        else:
            if agent.cursor >= len(agent.chunks):
                return
            chunk = agent.chunks[agent.cursor]
            agent.cursor += 1
        if agent.gap not in (1, 2):
            raise _GroupAbort(
                ValueError(f"generation_gap must be 1 or 2, got {agent.gap}")
            )
        agent.chunk = chunk
        agent.phases = chunk.phases
        agent.nph = len(chunk.phases)
        agent.ab_labels = chunk.ab_labels
        agent.upd_labels = chunk.upd_labels
        blocks = chunk.c_blocks
        claim(agent, blocks, now_r, now_v)
        agent.stage = _CIN
        agent.blocks = blocks
        agent.dur_r = blocks * agent.c_r
        agent.dur_v = blocks * agent.c_v
        if port_free[0]:
            port_free[0] = False
            agent.start_r = now_r
            agent.start_v = now_v
            grants.append(agent)
        else:
            port_queue[0].append(agent)

    def end_of_phases(agent: _VAgent, now_r: float, now_v: np.ndarray) -> None:
        nonlocal wait_agent, wait_time_r, wait_time_v
        final_r = compute_done_r[agent.widx]
        final_v = compute_done_v[agent.widx]
        np.greater(final_v, now_v, out=tb)
        if final_r > now_r:
            np.logical_and(ok, tb, out=ok)
            agent.wait_kind = _FINAL
            wait_agent = agent
            wait_time_r = now_r + (final_r - now_r)
            wait_time_v = now_v + (final_v - now_v)
        else:
            np.logical_not(tb, out=tb)
            np.logical_and(ok, tb, out=ok)
            request_cout(agent, now_r, now_v)

    # t=0 initialisation: agents run to their first port request in
    # creation order; grants flush per agent (mirrors FastEngine.run).
    agents = [
        _VAgent(spec, c_r[spec.widx], c_v[spec.widx], w_r[spec.widx], w_v[spec.widx])
        for spec in rep.env.agents
    ]
    wait_agent: Optional[_VAgent] = None
    wait_time_r = 0.0
    wait_time_v = zeros
    for agent in agents:
        start_chunk(agent, 0.0, zeros)
        if grants:
            granted = grants[0]
            seq += 4
            if heap and heap[0][0] <= 0.0:
                np.less_equal(heap[0][3], zeros, out=tb)
                np.logical_and(ok, tb, out=ok)
                push(heap, (0.0, seq, granted, zeros))
            else:
                if heap:
                    np.greater(heap[0][3], zeros, out=tb)
                    np.logical_and(ok, tb, out=ok)
                push(heap, (granted.dur_r, seq | _DONE, granted, granted.dur_v))
            grants.clear()

    pending: Optional[_VAgent] = None
    pending_time_r = 0.0
    pending_time_v = zeros
    pending_kind = _DONE
    prev_r = 0.0
    prev_v = zeros

    while heap or pending is not None:
        if pending is None:
            now_r, code, agent, now_v = pop(heap)
            kind = code & 3
        else:
            now_r = pending_time_r
            now_v = pending_time_v
            agent = pending
            pending = None
            kind = pending_kind
        # Dispatch-order lock: along the representative's dispatch
        # sequence every row must advance strictly where the rep does
        # and non-decreasingly across rep ties (a rep tie resolves by
        # the scheduling counter, which is control-path determined and
        # therefore identical for a still-locked row).
        if now_r != prev_r:
            np.greater(now_v, prev_v, out=tb)
        else:
            np.less_equal(prev_v, now_v, out=tb)
        np.logical_and(ok, tb, out=ok)
        prev_r = now_r
        prev_v = now_v
        if kind == _DONE:
            stage = agent.stage
            widx = agent.widx
            if stage == _PHASE:
                j = agent.pidx
                blocks = agent.blocks
                comm_worker.append(widx + 1)
                comm_dir.append("send")
                comm_blocks_l.append(blocks)
                comm_label.append(agent.ab_labels[j])
                comm_port.append(0)
                comm_start_l.append(agent.start_v)
                comm_end_l.append(now_v)
                waiters = port_queue[0]
                if waiters:
                    nxt = waiters.popleft()
                    nxt.start_r = now_r
                    nxt.start_v = now_v
                    grants.append(nxt)
                else:
                    port_free[0] = True
                ph = agent.phases[j]
                start_r = compute_done_r[widx]
                if now_r > start_r:
                    start_r = now_r
                # Value select, not control flow: np.maximum picks the
                # identical bytes the scalar `if now > start` does.
                start_v = np.maximum(compute_done_v[widx], now_v)
                updates = ph[3]
                end_r = start_r + updates * agent.w_r
                end_v = start_v + updates * agent.w_v
                compute_done_r[widx] = end_r
                compute_done_v[widx] = end_v
                comp_worker.append(widx + 1)
                comp_updates.append(updates)
                comp_label.append(agent.upd_labels[j])
                comp_start_l.append(start_v)
                comp_end_l.append(end_v)
                pending_free[widx].append((end_r, end_v, blocks))
                agent.end2_r = agent.end1_r
                agent.end2_v = agent.end1_v
                agent.end1_r = end_r
                agent.end1_v = end_v
                j += 1
                if j < agent.nph:
                    if j >= agent.gap:
                        if agent.gap == 1:
                            gate_r, gate_v = agent.end1_r, agent.end1_v
                        else:
                            gate_r, gate_v = agent.end2_r, agent.end2_v
                        np.greater(gate_v, now_v, out=tb)
                        if gate_r > now_r:
                            np.logical_and(ok, tb, out=ok)
                            agent.pidx = j
                            agent.wait_kind = _GAP
                            wait_agent = agent
                            wait_time_r = now_r + (gate_r - now_r)
                            wait_time_v = now_v + (gate_v - now_v)
                        else:
                            np.logical_not(tb, out=tb)
                            np.logical_and(ok, tb, out=ok)
                            request_phase(agent, j, now_r, now_v)
                    else:
                        # gate == now for every row: nothing to verify.
                        request_phase(agent, j, now_r, now_v)
                else:
                    end_of_phases(agent, now_r, now_v)
            elif stage == _CIN:
                comm_worker.append(widx + 1)
                comm_dir.append("send")
                comm_blocks_l.append(agent.blocks)
                comm_label.append("C-in")
                comm_port.append(0)
                comm_start_l.append(agent.start_v)
                comm_end_l.append(now_v)
                waiters = port_queue[0]
                if waiters:
                    nxt = waiters.popleft()
                    nxt.start_r = now_r
                    nxt.start_v = now_v
                    grants.append(nxt)
                else:
                    port_free[0] = True
                agent.end1_r = agent.end2_r = 0.0
                agent.end1_v = agent.end2_v = zeros
                if agent.nph:
                    request_phase(agent, 0, now_r, now_v)
                else:
                    end_of_phases(agent, now_r, now_v)
            else:  # _COUT — chunk complete: free C tile, next chunk
                comm_worker.append(widx + 1)
                comm_dir.append("recv")
                comm_blocks_l.append(agent.blocks)
                comm_label.append("C-out")
                comm_port.append(recv_pid)
                comm_start_l.append(agent.start_v)
                comm_end_l.append(now_v)
                waiters = port_queue[recv_pid]
                if waiters:
                    nxt = waiters.popleft()
                    nxt.start_r = now_r
                    nxt.start_v = now_v
                    grants.append(nxt)
                else:
                    port_free[recv_pid] = True
                used = expire(widx, now_r, now_v, mem_used[widx])
                mem_used[widx] = used - agent.blocks
                start_chunk(agent, now_r, now_v)
        elif kind == _WAIT:
            if agent.wait_kind == _GAP:
                request_phase(agent, agent.pidx, now_r, now_v)
            else:  # _FINAL
                request_cout(agent, now_r, now_v)
        else:  # _HOP — a tie forced the grant hop; sequence the completion
            seq += 4
            push(heap, (now_r + agent.dur_r, seq | _DONE, agent,
                        now_v + agent.dur_v))
            continue
        if wait_agent is not None:
            seq += 4
            if grants:
                push(heap, (wait_time_r, seq | _WAIT, wait_agent, wait_time_v))
            elif heap:
                head = heap[0]
                np.less_equal(head[3], wait_time_v, out=tb)
                if head[0] <= wait_time_r:
                    np.logical_and(ok, tb, out=ok)
                    push(heap, (wait_time_r, seq | _WAIT, wait_agent, wait_time_v))
                else:
                    np.logical_not(tb, out=tb)
                    np.logical_and(ok, tb, out=ok)
                    pending = wait_agent
                    pending_time_r = wait_time_r
                    pending_time_v = wait_time_v
                    pending_kind = _WAIT
            else:
                pending = wait_agent
                pending_time_r = wait_time_r
                pending_time_v = wait_time_v
                pending_kind = _WAIT
            wait_agent = None
        if grants:
            granted = grants[0]
            if len(grants) == 1:
                grants.clear()
                fused = False
                if heap:
                    head = heap[0]
                    np.less_equal(head[3], now_v, out=tb)
                    if head[0] <= now_r:
                        np.logical_and(ok, tb, out=ok)
                        seq += 4
                        push(heap, (now_r, seq, granted, now_v))
                        continue
                    np.logical_not(tb, out=tb)
                    np.logical_and(ok, tb, out=ok)
                    done_r = now_r + granted.dur_r
                    done_v = now_v + granted.dur_v
                    np.less_equal(head[3], done_v, out=tb)
                    if head[0] <= done_r:
                        np.logical_and(ok, tb, out=ok)
                        seq += 4
                        push(heap, (done_r, seq | _DONE, granted, done_v))
                        continue
                    np.logical_not(tb, out=tb)
                    np.logical_and(ok, tb, out=ok)
                    pending = granted
                    pending_time_r = done_r
                    pending_time_v = done_v
                    pending_kind = _DONE
                    fused = True
                if not fused and pending is None:
                    pending = granted
                    pending_time_r = now_r + granted.dur_r
                    pending_time_v = now_v + granted.dur_v
                    pending_kind = _DONE
            else:
                # Multi-grant burst (two-port C-out): same hop-vs-fuse
                # decision, applied to the whole burst.
                seq += 4
                if heap and heap[0][0] <= now_r:
                    np.less_equal(heap[0][3], now_v, out=tb)
                    np.logical_and(ok, tb, out=ok)
                    push(heap, (now_r, seq, granted, now_v))
                    for granted in grants[1:]:
                        seq += 4
                        push(heap, (now_r, seq, granted, now_v))
                else:
                    if heap:
                        np.greater(heap[0][3], now_v, out=tb)
                        np.logical_and(ok, tb, out=ok)
                    push(heap, (now_r + granted.dur_r, seq | _DONE, granted,
                                now_v + granted.dur_v))
                    for granted in grants[1:]:
                        seq += 4
                        push(heap, (now_r + granted.dur_r, seq | _DONE,
                                    granted, now_v + granted.dur_v))
                grants.clear()

    group = _GroupTrace()
    group.n = n
    e_comm = len(comm_worker)
    e_comp = len(comp_worker)
    group.comm_worker = np.fromiter(comm_worker, np.int64, e_comm)
    group.comm_blocks = np.fromiter(comm_blocks_l, np.int64, e_comm)
    group.comm_port = np.fromiter(comm_port, np.int64, e_comm)
    group.comm_dir = comm_dir
    group.comm_label = comm_label
    group.comm_start = (
        np.stack(comm_start_l, axis=1) if e_comm else np.empty((n, 0))
    )
    group.comm_end = (
        np.stack(comm_end_l, axis=1) if e_comm else np.empty((n, 0))
    )
    group.comp_worker = np.fromiter(comp_worker, np.int64, e_comp)
    group.comp_updates = np.fromiter(comp_updates, np.int64, e_comp)
    group.comp_label = comp_label
    group.comp_start = (
        np.stack(comp_start_l, axis=1) if e_comp else np.empty((n, 0))
    )
    group.comp_end = (
        np.stack(comp_end_l, axis=1) if e_comp else np.empty((n, 0))
    )
    group.memory_peak = {
        widx + 1: peaks[widx] for widx in range(p) if peaks[widx]
    }
    return group, ok


def _check_group_invariants(group: _GroupTrace, ok: np.ndarray) -> None:
    """Vectorized one-port / sequential-compute checks over all rows.

    Within one resource the scan appends intervals in completion order,
    which for a *locked* row is also start order (FIFO port, FIFO
    compute), so a consecutive-pair check in append order is exhaustive.
    A violating row is conservatively voided — its scalar fallback run
    then performs (and reports) the authoritative check.
    """
    for groups, starts, ends in (
        (group.comm_port, group.comm_start, group.comm_end),
        (group.comp_worker, group.comp_start, group.comp_end),
    ):
        if len(groups) < 2:
            continue
        for gid in np.unique(groups):
            idx = np.nonzero(groups == gid)[0]
            if idx.size < 2:
                continue
            s = starts[:, idx[1:]]
            e = ends[:, idx[:-1]]
            bad = (s < e - 1e-9).any(axis=1)
            if bad.any():
                ok &= ~bad


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------

def run_batch(
    items: Sequence[BatchItem],
    check_invariants: bool = True,
    min_group: int = MIN_GROUP,
) -> List[Any]:
    """Evaluate ``items`` in structure-sharing groups; scalar fallback
    everywhere vectorization cannot *prove* byte-identity.

    Returns one result per item, in order: a :class:`BatchTrace` for
    points the vectorized scan validated, otherwise exactly what
    :func:`~repro.engine.engine.run_scheduler` returns for that item
    (a :class:`~repro.engine.trace.Trace` or a model estimate).  An
    item whose scalar evaluation raises propagates that exception, the
    same as calling ``run_scheduler`` yourself.
    """
    from repro.engine.engine import run_scheduler

    items = list(items)
    results: List[Any] = [None] * len(items)

    def scalar(i: int) -> Any:
        item = items[i]
        return run_scheduler(
            item.scheduler(), item.platform, item.shape,
            two_port=item.two_port, check_memory=item.check_memory,
            check_invariants=check_invariants, engine=item.engine,
            scenario=item.scenario,
        )

    id_memo: Dict[int, int] = {}
    content_ids: Dict[tuple, int] = {}
    groups: Dict[tuple, List[tuple]] = {}
    model_indices: List[int] = []
    for i, item in enumerate(items):
        if item.engine == "model" and item.scenario is None:
            # Stationary model points vectorize too — the estimator's
            # heap walk groups and scans just like the fast engine (see
            # repro.engine.model_batch).  Scenario model points stay
            # scalar: a rate-step crossing reshapes the estimate.
            model_indices.append(i)
            continue
        if item.engine != "fast" or item.scenario is not None:
            results[i] = scalar(i)
            continue
        engine = FastEngine(
            item.platform, item.shape,
            two_port=item.two_port, check_memory=item.check_memory,
        )
        try:
            item.scheduler().launch(engine)
        except FastEngineUnsupported:
            results[i] = scalar(i)
            continue
        sig = _signature(engine, item, id_memo, content_ids)
        groups.setdefault(sig, []).append((i, engine))

    if model_indices:
        from repro.engine.model_batch import batch_model_items

        batch_model_items(items, model_indices, results, scalar, min_group)

    for sig, members in groups.items():
        if len(members) < max(min_group, 2):
            for i, _ in members:
                results[i] = scalar(i)
            continue
        shape = sig[0]
        try:
            group, ok = _scan_group([eng for _, eng in members])
            if int(group.comp_updates.sum()) != shape.total_updates:
                raise _GroupAbort()
            if check_invariants:
                _check_group_invariants(group, ok)
        except _GroupAbort:
            # The representative's own flow raised (memory cap, update
            # mismatch, bad gap): structural, so every member re-runs
            # scalar and raises — or survives — authentically.
            for i, _ in members:
                results[i] = scalar(i)
            continue
        for row, (i, _) in enumerate(members):
            if ok[row]:
                results[i] = BatchTrace(group, row)
            else:
                results[i] = scalar(i)
    return results
