"""Shared helpers of the two engine backends.

Both engines promise *byte-identical* observable behaviour — including
error messages — so the strings and validations they share live here
instead of being copied between :mod:`repro.engine.engine` and
:mod:`repro.engine.fast`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blocks.matrix import BlockMatrix
    from repro.blocks.shape import ProblemShape

__all__ = ["memory_exceeded", "validate_block_data"]


def memory_exceeded(widx: int, used: int, cap: int, now: float) -> RuntimeError:
    """The error raised when worker ``widx`` (0-based) overruns ``m_i``."""
    return RuntimeError(
        f"worker P{widx + 1} memory exceeded: "
        f"{used} > {cap} blocks at t={now:g}"
    )


def validate_block_data(
    data: "tuple[BlockMatrix, BlockMatrix, BlockMatrix]",
    shape: "ProblemShape",
) -> None:
    """Check that attached ``(A, B, C)`` matrices match ``shape``'s grids."""
    a, b, c = data
    if a.block_shape != (shape.r, shape.t):
        raise ValueError(f"A grid {a.block_shape} != ({shape.r},{shape.t})")
    if b.block_shape != (shape.t, shape.s):
        raise ValueError(f"B grid {b.block_shape} != ({shape.t},{shape.s})")
    if c.block_shape != (shape.r, shape.s):
        raise ValueError(f"C grid {c.block_shape} != ({shape.r},{shape.s})")
