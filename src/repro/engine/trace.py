"""Execution traces: every timed interval of a simulated run.

A :class:`Trace` records

* **communication intervals** — each master-port hold, with direction,
  worker, block count and a label,
* **computation intervals** — each worker-side phase execution,
* per-worker **memory high-water marks**.

It derives the metrics used throughout the experiments (makespan,
communication volume, CCR, port/worker utilisation, enrolled workers)
and checks the model's structural invariants (port holds never overlap,
per-worker computations never overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["CommInterval", "ComputeInterval", "Trace"]


@dataclass(frozen=True)
class CommInterval:
    """One master-port hold.

    Attributes:
        worker: 1-based worker index.
        direction: ``"send"`` (master→worker) or ``"recv"``.
        start: port acquisition time.
        end: port release time.
        blocks: blocks transferred.
        label: human-readable description (e.g. ``"C-tile"``).
        port: port id (0 for the single one-port; 1 for the receive port
            in the two-port ablation).
    """

    worker: int
    direction: str
    start: float
    end: float
    blocks: int
    label: str = ""
    port: int = 0


@dataclass(frozen=True)
class ComputeInterval:
    """One worker-side phase execution."""

    worker: int
    start: float
    end: float
    updates: int
    label: str = ""


@dataclass
class Trace:
    """Timed record of one engine run."""

    comms: list[CommInterval] = field(default_factory=list)
    computes: list[ComputeInterval] = field(default_factory=list)
    memory_peak: dict[int, int] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------
    def add_comm(self, interval: CommInterval) -> None:
        """Append a communication interval."""
        self.comms.append(interval)

    def add_compute(self, interval: ComputeInterval) -> None:
        """Append a computation interval."""
        self.computes.append(interval)

    def note_memory(self, worker: int, blocks_in_use: int) -> None:
        """Record a worker's instantaneous buffer usage (keeps the max)."""
        cur = self.memory_peak.get(worker, 0)
        if blocks_in_use > cur:
            self.memory_peak[worker] = blocks_in_use

    # -- metrics -----------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Time the last communication or computation finishes."""
        last_comm = max((c.end for c in self.comms), default=0.0)
        last_comp = max((c.end for c in self.computes), default=0.0)
        return max(last_comm, last_comp)

    @property
    def comm_blocks(self) -> int:
        """Total blocks moved through the master."""
        return sum(c.blocks for c in self.comms)

    @property
    def total_updates(self) -> int:
        """Total block updates computed."""
        return sum(c.updates for c in self.computes)

    @property
    def ccr(self) -> float:
        """Communication-to-computation ratio, in blocks per update."""
        updates = self.total_updates
        if updates == 0:
            raise ValueError("no computation recorded; CCR undefined")
        return self.comm_blocks / updates

    @property
    def enrolled_workers(self) -> tuple[int, ...]:
        """Sorted indices of workers that computed at least one update."""
        return tuple(sorted({c.worker for c in self.computes if c.updates}))

    def port_busy_time(self, port: int = 0) -> float:
        """Total time the given port was held."""
        return sum(c.end - c.start for c in self.comms if c.port == port)

    def port_utilisation(self, port: int = 0) -> float:
        """Busy fraction of the given port over the makespan."""
        span = self.makespan
        return self.port_busy_time(port) / span if span > 0 else 0.0

    def worker_busy_time(self, worker: int) -> float:
        """Total compute time of one worker."""
        return sum(c.end - c.start for c in self.computes if c.worker == worker)

    def worker_utilisation(self, worker: int) -> float:
        """Busy fraction of one worker over the makespan."""
        span = self.makespan
        return self.worker_busy_time(worker) / span if span > 0 else 0.0

    # -- invariants -----------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate the one-port and sequential-compute invariants.

        Raises ``AssertionError`` listing the first violation found.
        """
        tol = 1e-9
        by_port: dict[int, list[CommInterval]] = {}
        for c in self.comms:
            by_port.setdefault(c.port, []).append(c)
        for port, intervals in by_port.items():
            ordered = sorted(intervals, key=lambda c: (c.start, c.end))
            for prev, nxt in zip(ordered, ordered[1:]):
                assert nxt.start >= prev.end - tol, (
                    f"port {port} overlap: {prev} then {nxt}"
                )
        by_worker: dict[int, list[ComputeInterval]] = {}
        for k in self.computes:
            by_worker.setdefault(k.worker, []).append(k)
        for worker, intervals in by_worker.items():
            ordered = sorted(intervals, key=lambda c: (c.start, c.end))
            for prev, nxt in zip(ordered, ordered[1:]):
                assert nxt.start >= prev.end - tol, (
                    f"worker {worker} compute overlap: {prev} then {nxt}"
                )
