"""Execution traces: every timed interval of a simulated run.

A :class:`Trace` records

* **communication intervals** — each master-port hold, with direction,
  worker, block count and a label,
* **computation intervals** — each worker-side phase execution,
* per-worker **memory high-water marks**.

It derives the metrics used throughout the experiments (makespan,
communication volume, CCR, port/worker utilisation, enrolled workers)
and checks the model's structural invariants (port holds never overlap,
per-worker computations never overlap).

Interval counts scale with the problem's block count, so the metric
and invariant paths are vectorised: the numeric columns of both
interval lists are extracted once (via C-level ``itemgetter`` maps into
``np.fromiter``), memoized against the list lengths, and every
aggregate reduces in numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Iterable, NamedTuple, Optional, Sequence

import numpy as np

__all__ = ["CommInterval", "ComputeInterval", "Trace"]


class CommInterval(NamedTuple):
    """One master-port hold.

    A ``NamedTuple`` rather than a dataclass: engines allocate one per
    transfer in their innermost loop, and tuple construction is several
    times cheaper than a frozen-dataclass ``__init__``.

    Attributes:
        worker: 1-based worker index.
        direction: ``"send"`` (master→worker) or ``"recv"``.
        start: port acquisition time.
        end: port release time.
        blocks: blocks transferred.
        label: human-readable description (e.g. ``"C-tile"``).
        port: port id (0 for the single one-port; 1 for the receive port
            in the two-port ablation).
    """

    worker: int
    direction: str
    start: float
    end: float
    blocks: int
    label: str = ""
    port: int = 0


class ComputeInterval(NamedTuple):
    """One worker-side phase execution."""

    worker: int
    start: float
    end: float
    updates: int
    label: str = ""


def _columns(
    intervals: Sequence[tuple], spec: tuple[tuple[int, type], ...]
) -> tuple[np.ndarray, ...]:
    """Extract numeric columns from a list of interval tuples."""
    n = len(intervals)
    return tuple(
        np.fromiter(map(itemgetter(idx), intervals), dtype, count=n)
        for idx, dtype in spec
    )


#: (field index, dtype) specs of the numeric columns.
_COMM_SPEC = (
    (0, np.int64),    # worker
    (2, np.float64),  # start
    (3, np.float64),  # end
    (4, np.int64),    # blocks
    (6, np.int64),    # port
)
_COMPUTE_SPEC = (
    (0, np.int64),    # worker
    (1, np.float64),  # start
    (2, np.float64),  # end
    (3, np.int64),    # updates
)


def _assert_no_overlap(groups, starts, ends, intervals, what: str) -> None:
    """Assert no two same-group intervals overlap (beyond 1e-9 slack)."""
    if len(intervals) < 2:
        return
    order = np.lexsort((ends, starts, groups))
    g = groups[order]
    s = starts[order]
    e = ends[order]
    bad = np.nonzero((g[1:] == g[:-1]) & (s[1:] < e[:-1] - 1e-9))[0]
    if bad.size:
        i = int(bad[0])
        prev = intervals[int(order[i])]
        nxt = intervals[int(order[i + 1])]
        raise AssertionError(f"{what.format(int(g[i]))}: {prev} then {nxt}")


@dataclass
class Trace:
    """Timed record of one engine run."""

    comms: list[CommInterval] = field(default_factory=list)
    computes: list[ComputeInterval] = field(default_factory=list)
    memory_peak: dict[int, int] = field(default_factory=dict)
    #: column caches, keyed by the list length they were built from
    _comm_cols: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )
    _compute_cols: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    # -- recording -----------------------------------------------------------
    def add_comm(self, interval: CommInterval) -> None:
        """Append a communication interval."""
        self.comms.append(interval)

    def add_compute(self, interval: ComputeInterval) -> None:
        """Append a computation interval."""
        self.computes.append(interval)

    def note_memory(self, worker: int, blocks_in_use: int) -> None:
        """Record a worker's instantaneous buffer usage (keeps the max)."""
        cur = self.memory_peak.get(worker, 0)
        if blocks_in_use > cur:
            self.memory_peak[worker] = blocks_in_use

    # -- column extraction -------------------------------------------------
    def comm_columns(self) -> tuple[np.ndarray, ...]:
        """``(worker, start, end, blocks, port)`` arrays of the comms.

        Memoized against ``len(self.comms)`` — recording more intervals
        invalidates the cache, mutating existing ones in place is
        unsupported (intervals are immutable tuples anyway).
        """
        cached = self._comm_cols
        n = len(self.comms)
        if cached is None or cached[0] != n:
            cached = (n, _columns(self.comms, _COMM_SPEC))
            self._comm_cols = cached
        return cached[1]

    def compute_columns(self) -> tuple[np.ndarray, ...]:
        """``(worker, start, end, updates)`` arrays of the computes."""
        cached = self._compute_cols
        n = len(self.computes)
        if cached is None or cached[0] != n:
            cached = (n, _columns(self.computes, _COMPUTE_SPEC))
            self._compute_cols = cached
        return cached[1]

    # -- metrics -----------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Time the last communication or computation finishes."""
        last_comm = float(self.comm_columns()[2].max()) if self.comms else 0.0
        last_comp = (
            float(self.compute_columns()[2].max()) if self.computes else 0.0
        )
        return max(last_comm, last_comp)

    @property
    def work_makespan(self) -> float:
        """Time the last *worker* communication or computation finishes.

        Unlike :attr:`makespan`, scenario background-traffic holds
        (recorded as worker-0 intervals) do not count: a synthetic hold
        outlasting the real work extends the port's busy window but did
        not delay the computation itself.  On traces without background
        intervals the two are identical.
        """
        if self.comms:
            worker, _, end, _, _ = self.comm_columns()
            real = end[worker > 0]
            last_comm = float(real.max()) if real.size else 0.0
        else:
            last_comm = 0.0
        last_comp = (
            float(self.compute_columns()[2].max()) if self.computes else 0.0
        )
        return max(last_comm, last_comp)

    @property
    def comm_blocks(self) -> int:
        """Total blocks moved through the master."""
        return int(self.comm_columns()[3].sum()) if self.comms else 0

    @property
    def total_updates(self) -> int:
        """Total block updates computed."""
        return int(self.compute_columns()[3].sum()) if self.computes else 0

    @property
    def ccr(self) -> float:
        """Communication-to-computation ratio, in blocks per update."""
        updates = self.total_updates
        if updates == 0:
            raise ValueError("no computation recorded; CCR undefined")
        return self.comm_blocks / updates

    @property
    def enrolled_workers(self) -> tuple[int, ...]:
        """Sorted indices of workers that computed at least one update."""
        if not self.computes:
            return ()
        worker, _, _, updates = self.compute_columns()
        return tuple(int(w) for w in np.unique(worker[updates > 0]))

    def port_busy_time(self, port: int = 0) -> float:
        """Total time the given port was held."""
        if not self.comms:
            return 0.0
        _, start, end, _, ports = self.comm_columns()
        mask = ports == port
        return float(np.sum(end[mask] - start[mask]))

    def port_utilisation(self, port: int = 0) -> float:
        """Busy fraction of the given port over the makespan."""
        span = self.makespan
        return self.port_busy_time(port) / span if span > 0 else 0.0

    def worker_busy_time(self, worker: int) -> float:
        """Total compute time of one worker."""
        if not self.computes:
            return 0.0
        workers, start, end, _ = self.compute_columns()
        mask = workers == worker
        return float(np.sum(end[mask] - start[mask]))

    def worker_utilisation(self, worker: int) -> float:
        """Busy fraction of one worker over the makespan."""
        span = self.makespan
        return self.worker_busy_time(worker) / span if span > 0 else 0.0

    # -- invariants -----------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate the one-port and sequential-compute invariants.

        Raises ``AssertionError`` listing the first violation found.
        """
        if self.comms:
            _, start, end, _, ports = self.comm_columns()
            _assert_no_overlap(
                ports, start, end, self.comms, "port {} overlap"
            )
        if self.computes:
            workers, start, end, _ = self.compute_columns()
            _assert_no_overlap(
                workers, start, end, self.computes,
                "worker {} compute overlap",
            )
