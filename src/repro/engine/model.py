"""Analytic model engine — capacity planning without simulating.

The third tier of the engine tower (see ``docs/engines.md``).  The DES
is the oracle, the fast engine reproduces it byte for byte, and this
module *estimates* the same summary quantities — makespan, per-worker
busy time, master-port occupancy, peak memory — from closed-form
steady-state arithmetic instead of replaying the timeline.

How it works
------------
Per-phase event simulation costs O(phases); a paper-scale point streams
thousands of phases.  But within one chunk the phase stream is
*stationary*: every transfer charges ``blocks · c_i`` port seconds and
every phase ``updates · w_i`` CPU seconds, so the chunk's aggregate
footprint (total blocks in, total updates, pipeline-fill prefix,
compute tail, peak buffer window) is a closed-form function of the
chunk — exactly the steady-state algebra of :mod:`repro.core.bounds`.
The estimator therefore works at *chunk* granularity: each chunk
contributes three O(1) bookkeeping steps (startup fill, bulk
delivery + compute, C-out drain) against two fluid resources — the
master's one-port (a FIFO availability clock) and the worker's CPU.
Startup (the serialized C-in + first-phase fill) and drain (the last
phase computes after its delivery, then C returns) corrections fall
out of the same bookkeeping, and demand-driven dispatch emerges from
processing chunks in estimated completion order, mirroring how the
real engines pop the shared queue.

Non-stationary :class:`~repro.scenarios.Scenario` timelines are
handled piecewise: chunk work is *integrated* through the
piecewise-constant effective-rate timelines (``_advance``), so a
slowdown or dropout mid-chunk stretches exactly the remaining work,
and background port holds are absorbed into the port clock in FIFO
order.  The real engines instead sample rates per operation at its
start, so under rapidly varying scenarios the two diverge — which is
why the model's contract is a *validated error envelope*
(``tests/test_model_envelope.py``), not parity.

Contract
--------
* ``run_scheduler(engine="model")`` returns a :class:`ModelEstimate`
  mirroring the :class:`~repro.engine.trace.Trace` summary interface
  (makespan, comm_blocks, ccr, utilisations, memory peaks, …) so
  experiments and aggregates consume it unchanged.
* No intervals are recorded and no numeric data can be attached: the
  model predicts, it does not execute.
* Estimated makespan is within the per-regime envelopes asserted by
  ``tests/test_model_envelope.py`` — ≤10 % of the fast engine on
  stationary paper-scale points, looser at small n and under
  aggressive scenarios.
* A scheduler that registers raw kernel processes raises
  :class:`ModelEngineUnsupported`; unlike the fast engine there is no
  silent DES fallback, because callers pick the model tier for its
  cost profile and a 1000× slower silent fallback would defeat the
  point.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional, Sequence

from repro.blocks.shape import ProblemShape
from repro.engine.chunks import Chunk
from repro.engine.common import memory_exceeded
from repro.platform.model import Platform
from repro.scenarios.model import Scenario

__all__ = [
    "ModelEngine",
    "ModelEngineUnsupported",
    "ModelEstimate",
    "run_model",
]


class ModelEngineUnsupported(TypeError):
    """The scheduler drives raw kernel processes; use 'fast' or 'des'."""


# ---------------------------------------------------------------------------
# The estimate object — quacks like a Trace summary.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ModelEstimate:
    """Analytic summary of one run, mirroring ``Trace``'s metric surface.

    Everything an experiment's per-point function reads off a trace —
    :attr:`makespan`, :attr:`comm_blocks`, :attr:`ccr`,
    :attr:`enrolled_workers`, ``port_busy_time``/``port_utilisation``,
    ``worker_busy_time``/``worker_utilisation``, :attr:`memory_peak` —
    is available with the same names, types and index conventions
    (1-based workers).  What is *not* available are the interval lists
    (``comms``/``computes``): the model never materialises a timeline.

    :attr:`work_makespan` equals :attr:`makespan`: background holds
    only consume port capacity in the model, they are not appended to
    the reported span.
    """

    makespan: float
    comm_blocks: int
    total_updates: int
    #: per-port busy seconds (port 1 is only used in the two-port ablation)
    port_busy: tuple[float, float]
    #: per-worker compute seconds, 0-based platform order
    worker_busy: tuple[float, ...]
    #: per-worker block updates, 0-based platform order
    worker_updates: tuple[int, ...]
    #: per-worker peak buffer estimate (an upper bound), 0-based order
    peak_blocks: tuple[int, ...]
    two_port: bool = False

    # -- Trace-compatible metric surface ------------------------------------
    @property
    def work_makespan(self) -> float:
        """Same as :attr:`makespan` (see class docstring)."""
        return self.makespan

    @property
    def ccr(self) -> float:
        """Communication-to-computation ratio, in blocks per update."""
        if self.total_updates == 0:
            raise ValueError("no computation estimated; CCR undefined")
        return self.comm_blocks / self.total_updates

    @property
    def enrolled_workers(self) -> tuple[int, ...]:
        """Sorted 1-based indices of workers estimated to compute."""
        return tuple(
            i + 1 for i, u in enumerate(self.worker_updates) if u > 0
        )

    @property
    def memory_peak(self) -> dict[int, int]:
        """1-based worker → estimated peak buffer blocks (upper bound)."""
        return {
            i + 1: peak for i, peak in enumerate(self.peak_blocks) if peak > 0
        }

    def port_busy_time(self, port: int = 0) -> float:
        """Estimated total busy seconds of the given port."""
        return self.port_busy[port]

    def port_utilisation(self, port: int = 0) -> float:
        """Estimated busy fraction of the given port over the makespan."""
        span = self.makespan
        return self.port_busy[port] / span if span > 0 else 0.0

    def worker_busy_time(self, worker: int) -> float:
        """Estimated compute seconds of one worker (1-based)."""
        return self.worker_busy[worker - 1]

    def worker_utilisation(self, worker: int) -> float:
        """Estimated busy fraction of one worker over the makespan."""
        span = self.makespan
        return self.worker_busy[worker - 1] / span if span > 0 else 0.0

    def check_invariants(self) -> None:
        """No-op: the model records no intervals to validate.

        Exists so ``run_scheduler``'s post-run validation path treats
        estimates and traces uniformly.
        """

    def to_summary(self):
        """The :class:`~repro.analysis.metrics.TraceSummary` equivalent."""
        from repro.analysis.metrics import TraceSummary

        if self.total_updates == 0:
            raise ValueError("no computation estimated; CCR undefined")
        span = self.makespan
        used = self.enrolled_workers
        mean_util = (
            sum(self.worker_busy[w - 1] for w in used) / span / len(used)
            if used and span > 0
            else 0.0
        )
        return TraceSummary(
            makespan=span,
            comm_blocks=self.comm_blocks,
            updates=self.total_updates,
            ccr=self.comm_blocks / self.total_updates,
            workers_used=len(used),
            port_utilisation=self.port_busy[0] / span if span > 0 else 0.0,
            mean_worker_utilisation=mean_util,
        )


# ---------------------------------------------------------------------------
# Launch capture: quacks like Engine during ``scheduler.launch``.
# ---------------------------------------------------------------------------
class _AgentSpec:
    """What the model's agent factories return instead of a generator."""

    __slots__ = ("widx", "chunks", "queue", "gap")

    def __init__(self, widx, chunks, queue, gap):
        if gap not in (1, 2):
            raise ValueError(f"generation_gap must be 1 or 2, got {gap}")
        self.widx = widx
        self.chunks = chunks
        self.queue = queue
        self.gap = gap


class _Launchpad:
    """Stand-in for ``Engine.env`` accepting agent descriptors only."""

    __slots__ = ("agents",)

    def __init__(self):
        self.agents: list[_AgentSpec] = []

    def process(self, agent, name: str = "") -> _AgentSpec:
        if not isinstance(agent, _AgentSpec):
            raise ModelEngineUnsupported(
                "the model engine only estimates chunk agents "
                "(static_agent/demand_agent); got a raw process "
                f"{agent!r} — run with engine='des'"
            )
        self.agents.append(agent)
        return agent


class ModelEngine:
    """Launch-time stand-in for :class:`~repro.engine.engine.Engine`.

    Exposes exactly what scheduler ``launch`` implementations touch:
    ``platform``, ``shape``, the two agent factories, and an ``env``
    whose ``process`` collects agent descriptors.
    """

    __slots__ = ("platform", "shape", "env")

    def __init__(self, platform: Platform, shape: ProblemShape):
        self.platform = platform
        self.shape = shape
        self.env = _Launchpad()

    def static_agent(
        self, widx: int, chunks: Sequence[Chunk], generation_gap: int
    ) -> _AgentSpec:
        return _AgentSpec(widx, list(chunks), None, generation_gap)

    def demand_agent(self, widx: int, queue, generation_gap: int) -> _AgentSpec:
        return _AgentSpec(widx, None, queue, generation_gap)


# ---------------------------------------------------------------------------
# Closed-form per-chunk footprint.
# ---------------------------------------------------------------------------
def _chunk_stats(chunk: Chunk, gap: int) -> tuple[int, int, int, int, int, int]:
    """``(c_blocks, ab_blocks, updates, fill_blocks, last_updates, peak)``.

    ``fill_blocks`` is the first phase's delivery (the pipeline-fill
    prefix before compute can start), ``last_updates`` the final
    phase's updates (the drain tail that runs after the last delivery),
    and ``peak`` the buffer high-water upper bound: the C tile plus the
    largest window of ``gap`` consecutive phase deliveries alive at
    once under the buffer-generation gate.

    Cached on the chunk object itself (chunks are immutable and shared
    across sweep points via ``_build_chunks_cached``), so across a
    sweep each unique chunk pays the phase scan once.
    """
    key = "_model_stats2" if gap == 2 else "_model_stats1"
    stats = chunk.__dict__.get(key)
    if stats is None:
        phases = chunk.phases
        c_blocks = chunk.c_blocks
        ab_blocks = chunk.comm_blocks - 2 * c_blocks
        if phases:
            fill = phases[0].a_blocks + phases[0].b_blocks
            last_updates = phases[-1].updates
            if gap == 1:
                window = max(ph.a_blocks + ph.b_blocks for ph in phases)
            else:
                window = prev = 0
                for ph in phases:
                    cur = ph.a_blocks + ph.b_blocks
                    if cur + prev > window:
                        window = cur + prev
                    prev = cur
        else:  # pragma: no cover - no in-tree layout emits phase-less chunks
            fill = last_updates = window = 0
        stats = (
            c_blocks, ab_blocks, chunk.updates, fill, last_updates,
            c_blocks + window,
        )
        chunk.__dict__[key] = stats
    return stats


def _advance(times, values, t: float, amount: float) -> float:
    """Finish time of ``amount`` work units starting at ``t``.

    ``(times, values)`` is a piecewise-constant seconds-per-unit rate
    (a :class:`~repro.scenarios.StepTimeline`'s columns); the work is
    integrated exactly through the steps.  Constant timelines take the
    one-multiplication fast path.
    """
    if amount <= 0:
        return t
    n = len(times)
    if n == 1:
        return t + amount * values[0]
    i = bisect_right(times, t) - 1
    while i + 1 < n:
        end = t + amount * values[i]
        seg_end = times[i + 1]
        if end <= seg_end:
            return end
        amount -= (seg_end - t) / values[i]
        t = seg_end
        i += 1
    return t + amount * values[i]


def _crosses(times, lo: float, hi: float) -> bool:
    """True when a rate step of ``times`` lies inside ``(lo, hi]``."""
    return len(times) > 1 and bisect_right(times, lo) != bisect_right(times, hi)


# ---------------------------------------------------------------------------
# The estimator proper.
# ---------------------------------------------------------------------------
#: Chunk-processing stages (heap event kinds, in chunk order).
_START = 0  # acquire next chunk; C-in + first-phase fill on the port
_BULK = 1   # remaining deliveries committed; compute end derived
_COUT = 2   # C tile returns; chunk complete, agent fetches the next


class _Run:
    """Mutable per-agent cursor state during the estimate."""

    __slots__ = ("widx", "gap", "chunks", "cursor", "queue",
                 "stats", "chunk", "compute_start", "stats_key")

    def __init__(self, spec: _AgentSpec):
        self.widx = spec.widx
        self.gap = spec.gap
        self.chunks = spec.chunks
        self.cursor = 0
        self.queue = spec.queue
        self.stats = None
        self.chunk = None
        self.compute_start = 0.0
        self.stats_key = "_model_stats2" if spec.gap == 2 else "_model_stats1"

    def next_chunk(self) -> Optional[Chunk]:
        if self.queue is not None:
            return self.queue.pop()
        if self.cursor < len(self.chunks):
            chunk = self.chunks[self.cursor]
            self.cursor += 1
            return chunk
        return None


def _estimate(
    agents: Sequence[_AgentSpec],
    platform: Platform,
    shape: ProblemShape,
    two_port: bool,
    check_memory: bool,
    scenario: Optional[Scenario],
) -> ModelEstimate:
    p = platform.p
    varying = scenario is not None and scenario.has_rate_variation
    if varying:
        c_tls = [
            (tl.times, tl.values)
            for tl in (scenario.c_rate_timeline(i) for i in range(p))
        ]
        w_tls = [
            (tl.times, tl.values)
            for tl in (scenario.w_rate_timeline(i) for i in range(p))
        ]
    else:
        c_tls = [((0.0,), (wk.c,)) for wk in platform.workers]
        w_tls = [((0.0,), (wk.w,)) for wk in platform.workers]
    # Constant-rate scalars (the overwhelmingly common case): hoisting
    # them past the _advance call shaves ~30 % off stationary estimates,
    # which the 100x throughput gate spends directly.
    c_flat = [vals[0] if len(times) == 1 else None for times, vals in c_tls]
    w_flat = [vals[0] if len(times) == 1 else None for times, vals in w_tls]
    background = list(scenario.background) if scenario is not None else []

    recv_pid = 1 if two_port else 0
    port_avail = [0.0, 0.0]
    comm_seconds = [0.0, 0.0]
    bg_index = 0
    bg_busy = 0.0

    busy = [0.0] * p
    updates_done = [0] * p
    peaks = [0] * p
    comm_blocks_total = 0
    updates_total = 0
    makespan = 0.0

    def commit(
        pid: int, widx: int, t_req: float, blocks: int
    ) -> tuple[float, float]:
        """Charge ``blocks`` on port ``pid`` requested at ``t_req``.

        Background holds due before the request are absorbed into the
        port clock first (FIFO by request time); returns the transfer's
        ``(start, finish)``.
        """
        nonlocal bg_index, bg_busy
        avail = port_avail[pid]
        if pid == 0 and bg_index < len(background):
            while bg_index < len(background):
                ev = background[bg_index]
                if ev.time > t_req:
                    break
                held = avail if avail > ev.time else ev.time
                avail = held + ev.duration
                bg_busy += ev.duration
                bg_index += 1
        start = avail if avail > t_req else t_req
        flat = c_flat[widx]
        if flat is not None:
            end = start + blocks * flat
        else:
            times, values = c_tls[widx]
            end = _advance(times, values, start, blocks)
        port_avail[pid] = end
        comm_seconds[pid] += end - start
        return start, end

    heap: list = []
    seq = 0
    for spec in agents:
        heappush(heap, (0.0, seq, _START, _Run(spec)))
        seq += 1

    # The loop below inlines ``commit``'s happy path (flat rate, no
    # pending background hold) at each call site: the three port
    # commits per chunk dominate the per-point cost that the 100x
    # throughput gate measures, and the call overhead alone is worth
    # ~15 % of a stationary estimate.
    n_bg = len(background)
    pop = heappop
    push = heappush
    while heap:
        now, _, stage, run = pop(heap)
        widx = run.widx
        if stage == _START:
            queue = run.queue
            if queue is not None:
                chunk = queue.pop()
            else:
                cursor = run.cursor
                if cursor < len(run.chunks):
                    chunk = run.chunks[cursor]
                    run.cursor = cursor + 1
                else:
                    chunk = None
            if chunk is None:
                continue
            stats = chunk.__dict__.get(run.stats_key)
            if stats is None:
                stats = _chunk_stats(chunk, run.gap)
            run.stats = stats
            peak = stats[5]
            if peak > peaks[widx]:
                peaks[widx] = peak
                if check_memory and peak > platform.workers[widx].m:
                    raise memory_exceeded(
                        widx, peak, platform.workers[widx].m, now
                    )
            # C-in plus the first phase's delivery: the pipeline fill
            # that gates the worker's first compute.
            run.chunk = chunk
            cf = c_flat[widx]
            if cf is not None and bg_index == n_bg:
                avail = port_avail[0]
                start = avail if avail > now else now
                fill_done = start + (stats[0] + stats[3]) * cf
                port_avail[0] = fill_done
                comm_seconds[0] += fill_done - start
            else:
                _, fill_done = commit(0, widx, now, stats[0] + stats[3])
            run.compute_start = fill_done
            push(heap, (fill_done, seq, _BULK, run))
            seq += 1
        elif stage == _BULK:
            c_blocks, ab, ups, fill, last_ups, _ = run.stats
            cf = c_flat[widx]
            if cf is not None and bg_index == n_bg:
                avail = port_avail[0]
                bulk_start = avail if avail > now else now
                deliver_done = bulk_start + (ab - fill) * cf
                port_avail[0] = deliver_done
                comm_seconds[0] += deliver_done - bulk_start
            else:
                bulk_start, deliver_done = commit(0, widx, now, ab - fill)
            w_f = w_flat[widx]
            if w_f is not None:
                nominal_end = now + ups * w_f
            else:
                w_times, w_values = w_tls[widx]
                nominal_end = _advance(w_times, w_values, now, ups)
            busy_time = nominal_end - now
            updates_done[widx] += ups
            if run.gap == 1:
                # No spare buffer generation: sends and computes strictly
                # alternate, so the chunk's span is delivery + compute
                # regardless of interleaving.
                if w_f is not None:
                    comp_end = deliver_done + ups * w_f
                else:
                    comp_end = _advance(w_times, w_values, deliver_done, ups)
            else:
                # Overlapped: compute streams behind the deliveries; the
                # last phase cannot finish before its own delivery plus
                # its own compute (the drain correction).
                if w_f is not None:
                    gated_end = deliver_done + last_ups * w_f
                else:
                    gated_end = _advance(
                        w_times, w_values, deliver_done, last_ups
                    )
                comp_end = nominal_end if nominal_end > gated_end else gated_end
                if varying and (
                    _crosses(w_tls[widx][0], now, comp_end)
                    or _crosses(c_tls[widx][0], now, comp_end)
                ):
                    # A rate step lands inside this chunk: the O(1)
                    # bounds assume a uniform rate over the chunk's
                    # span and can be badly off across a cliff.  Walk
                    # the phases delivery-paced instead (still cheap —
                    # only rate-crossing chunks pay it).
                    c_times, c_values = c_tls[widx]
                    w_times, w_values = w_tls[widx]
                    comp = run.compute_start
                    deliv = bulk_start
                    busy_time = 0.0
                    for k, ph in enumerate(run.chunk.phases):
                        if k == 0:
                            ph_delivered = run.compute_start
                        else:
                            ph_delivered = _advance(
                                c_times, c_values, deliv,
                                ph.a_blocks + ph.b_blocks,
                            )
                            deliv = ph_delivered
                        start = comp if comp > ph_delivered else ph_delivered
                        comp = _advance(w_times, w_values, start, ph.updates)
                        busy_time += comp - start
                    comp_end = comp
            busy[widx] += busy_time
            push(heap, (comp_end, seq, _COUT, run))
            seq += 1
        else:  # _COUT
            stats = run.stats
            c_blocks = stats[0]
            cf = c_flat[widx]
            if cf is not None and bg_index == n_bg:
                avail = port_avail[recv_pid]
                start = avail if avail > now else now
                done = start + c_blocks * cf
                port_avail[recv_pid] = done
                comm_seconds[recv_pid] += done - start
            else:
                _, done = commit(recv_pid, widx, now, c_blocks)
            comm_blocks_total += stats[1] + 2 * c_blocks
            updates_total += stats[2]
            if done > makespan:
                makespan = done
            push(heap, (done, seq, _START, run))
            seq += 1

    return ModelEstimate(
        makespan=makespan,
        comm_blocks=comm_blocks_total,
        total_updates=updates_total,
        port_busy=(comm_seconds[0] + bg_busy, comm_seconds[1]),
        worker_busy=tuple(busy),
        worker_updates=tuple(updates_done),
        peak_blocks=tuple(peaks),
        two_port=two_port,
    )


def run_model(
    scheduler,
    platform: Platform,
    shape: ProblemShape,
    two_port: bool = False,
    check_memory: bool = True,
    scenario: Optional[Scenario] = None,
) -> ModelEstimate:
    """Estimate ``scheduler`` on ``platform`` without simulating.

    Launches the scheduler against a :class:`ModelEngine` (so chunk
    geometry, resource selection and assignment run exactly as they
    would for a real run), then replays the chunk streams through the
    closed-form estimator.  ``check_memory`` raises when the analytic
    peak-buffer *upper bound* exceeds a worker's ``m_i`` — conservative
    by construction, matching capacity-planning use.

    Raises :class:`ModelEngineUnsupported` for schedulers that launch
    raw kernel processes — no DES fallback (see module docstring).
    """
    if scenario is not None and scenario.platform != platform:
        raise ValueError(
            f"scenario {scenario.name!r} wraps platform "
            f"{scenario.platform.name!r}, not {platform.name!r}"
        )
    engine = ModelEngine(platform, shape)
    scheduler.launch(engine)
    return _estimate(
        engine.env.agents, platform, shape, two_port, check_memory, scenario
    )
