"""Chunks and phases: the work units the master hands to workers.

A **chunk** is a rectangular tile of C blocks (``row_range ×
col_range``) assigned to one worker: the worker receives the tile,
applies every inner-dimension update to it, and returns it.  A **phase**
is one delivery-plus-update step within a chunk, covering a contiguous
range of the inner dimension ``k``:

* the paper's optimized layout uses tiles of side µ and *single-k*
  phases (µ A blocks + µ B blocks enable µ² updates);
* Toledo's BMM layout uses tiles of side σ = ``floor(sqrt(m/3))`` and
  σ-wide phases (σ² A blocks + σ² B blocks enable σ³ updates).

Ranges are half-open 0-based ``(start, stop)`` over block indices, so
numeric execution reduces to contiguous numpy slice updates
``C[r0:r1, c0:c1] += A[r0:r1, k0:k1] @ B[k0:k1, c0:c1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from operator import itemgetter
from typing import Iterator, NamedTuple, Sequence

from repro.blocks.shape import ProblemShape

__all__ = ["Phase", "Chunk", "tile_chunks", "toledo_chunks", "check_chunk_cover"]


class Phase(NamedTuple):
    """One delivery-plus-update step of a chunk.

    A ``NamedTuple``: layouts materialise one ``Phase`` per inner-k step
    of every chunk (hundreds of thousands for sweep-scale instances), so
    construction cost and per-field access in the engines' inner loops
    both matter.

    Attributes:
        k_range: half-open block range of the inner dimension covered.
        a_blocks: A blocks delivered (= phase rows × k width).
        b_blocks: B blocks delivered (= k width × chunk cols).
        updates: block updates enabled (= phase rows × cols × k width).
        row_range: optional half-open row sub-range when the phase
            updates only part of the chunk's rows (used by the
            fine-grained maximum re-use streaming); ``None`` means the
            chunk's full row range.
    """

    k_range: tuple[int, int]
    a_blocks: int
    b_blocks: int
    updates: int
    row_range: tuple[int, int] | None = None

    @property
    def in_blocks(self) -> int:
        """Total blocks shipped to the worker for this phase."""
        return self.a_blocks + self.b_blocks


@dataclass(frozen=True)
class Chunk:
    """A tile of C assigned to one worker, with its phase decomposition.

    Chunks are immutable after construction, so the derived totals and
    per-phase labels below are ``cached_property``s: scheduler inner
    loops (min-min cost estimates, the engines' transfer bookkeeping)
    read them once per chunk instead of re-summing per access.

    Attributes:
        row_range: half-open block-row range of the C tile.
        col_range: half-open block-column range of the C tile.
        phases: the ordered phases covering the full inner dimension.
    """

    row_range: tuple[int, int]
    col_range: tuple[int, int]
    phases: tuple[Phase, ...]

    @property
    def rows(self) -> int:
        """Tile height in blocks."""
        return self.row_range[1] - self.row_range[0]

    @property
    def cols(self) -> int:
        """Tile width in blocks."""
        return self.col_range[1] - self.col_range[0]

    @cached_property
    def c_blocks(self) -> int:
        """Number of C blocks in the tile."""
        return self.rows * self.cols

    @cached_property
    def updates(self) -> int:
        """Total block updates over all phases."""
        return sum(map(_get_updates, self.phases))

    @cached_property
    def comm_blocks(self) -> int:
        """Total blocks moved for this chunk: C in + A/B in + C out."""
        return 2 * self.c_blocks + sum(
            map(_get_a, self.phases)
        ) + sum(map(_get_b, self.phases))

    @cached_property
    def ab_labels(self) -> tuple[str, ...]:
        """Per-phase labels of the A/B delivery transfers."""
        memo = _AB_LABELS
        labels = []
        for ph in self.phases:
            kr = ph.k_range
            label = memo.get(kr)
            if label is None:
                label = memo[kr] = f"AB[{kr[0]}:{kr[1]})"
            labels.append(label)
        return tuple(labels)

    @cached_property
    def upd_labels(self) -> tuple[str, ...]:
        """Per-phase labels of the compute intervals."""
        memo = _UPD_LABELS
        labels = []
        for ph in self.phases:
            kr = ph.k_range
            label = memo.get(kr)
            if label is None:
                label = memo[kr] = f"upd[{kr[0]}:{kr[1]})"
            labels.append(label)
        return tuple(labels)


#: Interned label strings, shared across every chunk touching the same
#: inner-k range (tiles of one problem all stream the same k sequence).
_AB_LABELS: dict[tuple[int, int], str] = {}
_UPD_LABELS: dict[tuple[int, int], str] = {}

#: C-level field extractors over the Phase tuples.
_get_a, _get_b, _get_updates = itemgetter(1), itemgetter(2), itemgetter(3)


def _ranges(total: int, width: int) -> list[tuple[int, int]]:
    """Split ``0..total`` into half-open ranges of at most ``width``."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return [(lo, min(lo + width, total)) for lo in range(0, total, width)]


@lru_cache(maxsize=32)
def _build_chunks_cached(
    r: int, s: int, t: int, tile: int, k_width: int
) -> tuple[Chunk, ...]:
    chunks: list[Chunk] = []
    k_widths = [(kr, kr[1] - kr[0]) for kr in _ranges(t, k_width)]
    tnew = tuple.__new__
    for col_range in _ranges(s, tile):
        cols = col_range[1] - col_range[0]
        for row_range in _ranges(r, tile):
            rows = row_range[1] - row_range[0]
            rc = rows * cols
            # tuple.__new__ bypasses the generated NamedTuple __new__;
            # sweep-scale instances build hundreds of thousands of
            # phases, so constructor overhead is visible end to end.
            phases = tuple(
                tnew(Phase, (kr, rows * dk, dk * cols, rc * dk, None))
                for kr, dk in k_widths
            )
            chunks.append(Chunk(row_range, col_range, phases))
    return tuple(chunks)


def _build_chunks(shape: ProblemShape, tile: int, k_width: int) -> list[Chunk]:
    # Memoized on the grid geometry: within one experiment sweep many
    # (workload, algorithm) points share a tiling (e.g. every overlap-
    # layout algorithm at the same memory size), and chunks are
    # immutable, so they are built once.  A fresh list is returned so
    # callers may reorder/slice freely.
    return list(_build_chunks_cached(shape.r, shape.s, shape.t, tile, k_width))


def tile_chunks(shape: ProblemShape, mu: int) -> list[Chunk]:
    """µ×µ tiles with single-k phases — the paper's optimized layout.

    Tiles are emitted column-panel-major (all row tiles of a column
    panel before the next panel), matching Algorithm 1's loop order.
    Edge tiles are ragged when ``r`` or ``s`` is not divisible by µ.
    """
    if mu < 1:
        raise ValueError(f"mu must be >= 1, got {mu}")
    return _build_chunks(shape, tile=mu, k_width=1)


def toledo_chunks(shape: ProblemShape, sigma: int) -> list[Chunk]:
    """σ×σ tiles with σ-wide phases — Toledo's BMM memory layout."""
    if sigma < 1:
        raise ValueError(f"sigma must be >= 1, got {sigma}")
    return _build_chunks(shape, tile=sigma, k_width=sigma)


def check_chunk_cover(shape: ProblemShape, chunks: Sequence[Chunk]) -> None:
    """Validate that ``chunks`` tile the C grid exactly once and cover
    the full inner dimension.  Raises ``ValueError`` on any violation.
    """
    seen: set[tuple[int, int]] = set()
    for ch in chunks:
        expected = ch.rows * ch.cols * shape.t
        if ch.updates != expected:
            raise ValueError(
                f"chunk {ch.row_range}x{ch.col_range} performs {ch.updates} "
                f"updates, expected {expected}"
            )
        for i in range(*ch.row_range):
            for j in range(*ch.col_range):
                if (i, j) in seen:
                    raise ValueError(f"C block ({i},{j}) covered twice")
                seen.add((i, j))
    if len(seen) != shape.r * shape.s:
        raise ValueError(
            f"chunks cover {len(seen)} C blocks, expected {shape.r * shape.s}"
        )
