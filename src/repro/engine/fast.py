"""Event-free fast timeline engine — the DES without the DES.

Under the strict one-port FIFO model the whole timeline of a run is a
deterministic function of the chunk streams: every transfer holds the
port for a known duration, the port serves requests in arrival order,
and each worker computes its phases FIFO.  Nothing in the model ever
*chooses* — so simulating it with generator processes, ``Event``
objects, resource context managers and callback lists (the
:mod:`repro.sim` kernel) pays a large constant factor purely for
bookkeeping the model does not need.

This module re-derives the identical timeline with a single
chronological scan.  Per worker it advances a tiny explicit state
machine over the chunk protocol (C-in → phases → C-out), keeping the
``(recv_done, compute_done)`` clocks in plain lists; the master's port
is a boolean plus a FIFO deque.  The only data structure shared with a
classical DES is a small heap of ``(time, code)`` pairs ordering the
three timed occurrences the model has — a request grant firing, a
transfer completion, and a buffer-generation (or final-compute) gate
opening.

Exactness, not approximation
----------------------------
The scan reproduces the kernel's schedule *byte for byte*, including
ties.  The kernel orders same-time events by ``(priority, seq)`` where
``seq`` is a global scheduling counter; the scan schedules the same
three occurrence kinds in the same relative order the kernel would
(grant hops included, because a grant's completion timeout is sequenced
only when the grant fires), so every ``(time, seq)`` comparison
resolves identically.  Even float rounding is replicated: a gate
opening at ``t`` is scheduled at ``now + (t - now)`` exactly as the
kernel's relative timeout would.  Demand-driven dispatch ("send the
next chunk to the first available worker") therefore pops the shared
queue in exactly the order the kernel's event interleaving produces.
The DES remains the reference oracle: the parity suite asserts
trace-for-trace equality across all schedulers on randomized platforms,
one-port and two-port.

Schedulers need no changes: :class:`FastEngine` quacks like
:class:`~repro.engine.engine.Engine` during ``launch`` —
``static_agent``/``demand_agent`` return lightweight descriptors and
``env.process`` registers them.  A scheduler that registers a raw
generator process (custom kernel logic) raises
:class:`FastEngineUnsupported`, and ``run_scheduler`` falls back to the
DES by re-launching.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush
from typing import Optional, Sequence

from repro.blocks.matrix import BlockMatrix
from repro.blocks.shape import ProblemShape
from repro.engine.chunks import Chunk
from repro.engine.common import memory_exceeded, validate_block_data
from repro.engine.trace import CommInterval, ComputeInterval, Trace
from repro.platform.model import Platform
from repro.scenarios.model import Scenario

__all__ = ["FastEngine", "FastEngineUnsupported", "run_fast"]

# Heap-entry kinds, packed into the low bits of ``(seq << 2) | kind`` so
# entries are 3-tuples; ``seq`` is unique, so the agent never compares.
_HOP = 0   # a granted port request firing (the kernel's request event)
_DONE = 1  # a transfer completion (the kernel's transfer timeout)
_WAIT = 2  # a generation-gate / final-compute timeout opening

# Agent stages: what the pending _DONE means for this agent.
_CIN = 0    # C tile inbound
_PHASE = 1  # an A/B phase delivery
_COUT = 2   # C tile outbound
_BG = 3     # a background-traffic hold of the master's port
# Wait kinds.
_GAP = 0    # buffer-generation gate before the next phase request
_FINAL = 1  # final-compute gate before the C-out request
_BGREQ = 2  # background agent waking up to request its next hold


class FastEngineUnsupported(TypeError):
    """The scheduler drives raw kernel processes; use the DES engine."""


class _AgentSpec:
    """What ``static_agent``/``demand_agent`` return instead of a generator."""

    __slots__ = ("widx", "chunks", "queue", "gap")

    def __init__(self, widx, chunks, queue, gap):
        self.widx = widx
        self.chunks = chunks
        self.queue = queue
        self.gap = gap


class _Launchpad:
    """Stand-in for ``Engine.env`` accepting agent descriptors only."""

    __slots__ = ("agents",)

    def __init__(self):
        self.agents: list[_AgentSpec] = []

    def process(self, agent, name: str = "") -> _AgentSpec:
        if not isinstance(agent, _AgentSpec):
            raise FastEngineUnsupported(
                "the fast engine only runs chunk agents "
                "(static_agent/demand_agent); got a raw process "
                f"{agent!r} — run with engine='des'"
            )
        self.agents.append(agent)
        return agent


class _Agent:
    """Runtime state of one worker agent."""

    __slots__ = (
        "widx", "gap", "chunks", "cursor", "queue", "c", "w",
        "chunk", "phases", "nph", "ab_labels", "upd_labels",
        "end1", "end2",
        "pidx", "stage", "wait_kind", "start", "duration", "blocks",
    )

    def __init__(self, spec: _AgentSpec, worker):
        self.widx = spec.widx
        self.gap = spec.gap
        self.chunks = spec.chunks
        self.cursor = 0
        self.queue = spec.queue
        self.c = worker.c
        self.w = worker.w


class _BgAgent:
    """Runtime state of the background-traffic pseudo-agent.

    Mirrors the DES engine's single background process: it services the
    scenario's port holds in time order, queueing FIFO on the master's
    port like any worker request.  Quacks enough like :class:`_Agent`
    for the heap, the port queue and the grant-flush paths (``stage``
    is always :data:`_BG`, so scenario-rate recomputation skips it —
    hold durations are absolute seconds, not ``c``-scaled).
    """

    __slots__ = ("events", "cursor", "stage", "wait_kind", "start", "duration",
                 "widx")

    def __init__(self, events):
        self.events = events
        self.cursor = 0
        self.stage = _BG
        self.wait_kind = _BGREQ
        self.widx = -1  # read (and ignored) by the shared dispatch paths


class FastEngine:
    """Drop-in ``launch`` target mirroring :class:`Engine`'s surface."""

    def __init__(
        self,
        platform: Platform,
        shape: ProblemShape,
        data: Optional[tuple[BlockMatrix, BlockMatrix, BlockMatrix]] = None,
        two_port: bool = False,
        check_memory: bool = True,
        scenario: Optional[Scenario] = None,
    ):
        if scenario is not None and scenario.platform != platform:
            raise ValueError(
                f"scenario {scenario.name!r} wraps platform "
                f"{scenario.platform.name!r}, not {platform.name!r}"
            )
        self.platform = platform
        self.shape = shape
        self.data = data
        self.check_memory = check_memory
        self.two_port = two_port
        self.env = _Launchpad()
        self.trace = Trace()
        self.compute_done = [0.0] * platform.p
        self.scenario = scenario
        if data is not None:
            validate_block_data(data, shape)

    # -- the agent factories schedulers call ------------------------------
    def static_agent(
        self, widx: int, chunks: Sequence[Chunk], generation_gap: int
    ) -> _AgentSpec:
        """Descriptor for a worker processing a fixed chunk list."""
        return _AgentSpec(widx, list(chunks), None, generation_gap)

    def demand_agent(self, widx: int, queue, generation_gap: int) -> _AgentSpec:
        """Descriptor for a worker draining a shared chunk queue."""
        return _AgentSpec(widx, None, queue, generation_gap)

    # -- the chronological scan ----------------------------------------------
    def run(self) -> Trace:
        """Advance the timeline to completion; returns the trace.

        One monolithic event loop: the three occurrence kinds dispatch
        inline, hot state lives in local lists indexed by worker, and
        the phase→phase steady state (the overwhelming majority of
        events) runs without a Python-level call beyond the heap
        primitives and ``tuple.__new__``.

        Port grants are *deferred to the end of the current burst* and
        then, when no other heap entry shares the current timestamp,
        fused straight into their completion event.  Both halves mirror
        the kernel exactly: the kernel's grant event fires after the
        granting burst finishes (so the completion's place in the global
        scheduling order is decided only then), and when nothing else
        occupies the current instant the grant hop is unobservable.
        With ties present the hop is kept, so same-time ordering stays
        byte-exact.
        """
        workers = self.platform.workers
        p = self.platform.p
        trace = self.trace
        comms = trace.comms
        computes = trace.computes
        compute_done = self.compute_done
        check_memory = self.check_memory
        recv_pid = 1 if self.two_port else 0
        q = self.shape.q
        data = self.data
        has_data = data is not None
        if has_data:
            a_arr, b_arr, c_arr = data[0].array, data[1].array, data[2].array

        scenario = self.scenario
        # Scenario hooks: rate lookups sampled at each operation's start
        # instant.  ``varying`` stays False for stationary scenarios so
        # the hot path is untouched; an identity scenario reproduces the
        # stationary timeline bit-for-bit (base · 1.0 == base).
        varying = scenario is not None and scenario.has_rate_variation
        if varying:
            c_rate = scenario.c_rate
            w_rate = scenario.w_rate

        caps = [wk.m for wk in workers]
        mem_used = [0] * p
        peaks = [0] * p
        # Per-worker deferred frees.  Entries are (compute_end, blocks)
        # appended in compute order; per-worker compute ends are
        # monotone (FIFO compute), so expiry is always a prefix.
        pending_free: list[list[tuple[float, int]]] = [[] for _ in range(p)]
        port_free = [True, True]
        port_queue: tuple[deque, deque] = (deque(), deque())
        heap: list[tuple[float, int, _Agent]] = []
        grants: list[_Agent] = []
        push = heappush
        pop = heappop
        tnew = tuple.__new__
        _CI = CommInterval
        _KI = ComputeInterval
        # The kernel's global scheduling counter, stepped by 4 with the
        # entry kind packed in the low bits: entries stay 3-tuples and
        # heap comparisons never reach the agent.
        seq = 0

        def request_phase(agent: _Agent, j: int, now: float) -> None:
            # Deliver phase j: claim buffers, then request the send port.
            ph = agent.phases[j]
            in_blocks = ph[1] + ph[2]  # a_blocks + b_blocks
            widx = agent.widx
            used = mem_used[widx]
            pend = pending_free[widx]
            if pend:
                lim = now + 1e-12
                i = 0
                while i < len(pend) and pend[i][0] <= lim:
                    used -= pend[i][1]
                    i += 1
                if i:
                    del pend[:i]
            used += in_blocks
            mem_used[widx] = used
            if used > peaks[widx]:
                peaks[widx] = used
                # A capacity violation is necessarily a new peak, so the
                # online check (same message as the DES) lives here.
                if check_memory and used > caps[widx]:
                    raise memory_exceeded(widx, used, caps[widx], now)
            agent.stage = _PHASE
            agent.pidx = j
            agent.blocks = in_blocks
            agent.duration = in_blocks * agent.c
            if port_free[0]:
                port_free[0] = False
                agent.start = now
                grants.append(agent)
            else:
                port_queue[0].append(agent)

        def request_cout(agent: _Agent, now: float) -> None:
            blocks = agent.chunk.c_blocks
            agent.stage = _COUT
            agent.blocks = blocks
            agent.duration = blocks * agent.c
            if port_free[recv_pid]:
                port_free[recv_pid] = False
                agent.start = now
                grants.append(agent)
            else:
                port_queue[recv_pid].append(agent)

        def request_bg(agent: _BgAgent, now: float) -> None:
            # The background agent claims the master's port for its next
            # scheduled hold (duration is absolute, never c-scaled).
            agent.duration = agent.events[agent.cursor].duration
            if port_free[0]:
                port_free[0] = False
                agent.start = now
                grants.append(agent)
            else:
                port_queue[0].append(agent)

        def start_chunk(agent: _Agent, now: float) -> None:
            # Next chunk (or retire the agent); then the C-in request.
            if agent.queue is not None:
                chunk = agent.queue.pop()
                if chunk is None:
                    return
            else:
                if agent.cursor >= len(agent.chunks):
                    return
                chunk = agent.chunks[agent.cursor]
                agent.cursor += 1
            if agent.gap not in (1, 2):
                raise ValueError(
                    f"generation_gap must be 1 or 2, got {agent.gap}"
                )
            agent.chunk = chunk
            agent.phases = chunk.phases
            agent.nph = len(chunk.phases)
            agent.ab_labels = chunk.ab_labels
            agent.upd_labels = chunk.upd_labels
            blocks = chunk.c_blocks
            widx = agent.widx
            used = mem_used[widx]
            pend = pending_free[widx]
            if pend:
                lim = now + 1e-12
                i = 0
                while i < len(pend) and pend[i][0] <= lim:
                    used -= pend[i][1]
                    i += 1
                if i:
                    del pend[:i]
            used += blocks
            mem_used[widx] = used
            if used > peaks[widx]:
                peaks[widx] = used
                if check_memory and used > caps[widx]:
                    raise memory_exceeded(widx, used, caps[widx], now)
            agent.stage = _CIN
            agent.blocks = blocks
            agent.duration = blocks * agent.c
            if port_free[0]:
                port_free[0] = False
                agent.start = now
                grants.append(agent)
            else:
                port_queue[0].append(agent)

        def end_of_phases(agent: _Agent, now: float) -> None:
            nonlocal wait_agent, wait_time
            # All phases delivered: wait out the final compute, then C-out.
            final = compute_done[agent.widx]
            if final > now:
                agent.wait_kind = _FINAL
                wait_agent = agent
                wait_time = now + (final - now)
            else:
                request_cout(agent, now)

        # The scan allocates millions of small tuples and frees none of
        # them until the trace is dropped; pausing generational GC for
        # its duration avoids pointless collection passes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()

        # t=0: the kernel initialises processes (URGENT events) in
        # creation order before any normal event fires; each agent runs
        # to its first port request.  Grants flush per agent, exactly as
        # each Initialize burst would let its request event fire later.
        # The DES registers the scenario's background process before the
        # scheduler's agents (Engine.__init__ precedes launch), so its
        # first timeout / port request sequences ahead of theirs.
        if scenario is not None and scenario.background:
            bg = _BgAgent(scenario.background)
            first = bg.events[0].time
            if first > 0.0:
                seq += 4
                push(heap, (first, seq | _WAIT, bg))
            else:
                # The heap is still empty (nothing precedes the first
                # process), so the grant always fuses to its completion.
                request_bg(bg, 0.0)
                granted = grants[0]
                seq += 4
                push(heap, (granted.duration, seq | _DONE, granted))
                grants.clear()
        agents = [_Agent(spec, workers[spec.widx]) for spec in self.env.agents]
        for agent in agents:
            start_chunk(agent, 0.0)
            if grants:
                granted = grants[0]
                if varying:
                    granted.duration = granted.blocks * c_rate(granted.widx, 0.0)
                seq += 4
                if heap and heap[0][0] <= 0.0:
                    push(heap, (0.0, seq, granted))
                else:
                    push(heap, (granted.duration, seq | _DONE, granted))
                grants.clear()

        pending: Optional[_Agent] = None
        pending_time = 0.0
        pending_kind = _DONE
        wait_agent: Optional[_Agent] = None
        wait_time = 0.0
        try:
            while heap or pending is not None:
                if pending is None:
                    now, code, agent = pop(heap)
                    kind = code & 3
                else:
                    # Direct dispatch: an occurrence scheduled ahead of
                    # every heap entry needs no heap round trip.
                    now = pending_time
                    agent = pending
                    pending = None
                    kind = pending_kind
                if kind == _DONE:
                    stage = agent.stage
                    widx = agent.widx
                    if stage == _PHASE:
                        j = agent.pidx
                        blocks = agent.blocks
                        comms.append(
                            tnew(_CI, (
                                widx + 1, "send", agent.start, now, blocks,
                                agent.ab_labels[j], 0,
                            ))
                        )
                        waiters = port_queue[0]
                        if waiters:
                            nxt = waiters.popleft()
                            nxt.start = now
                            grants.append(nxt)
                        else:
                            port_free[0] = True
                        ph = agent.phases[j]
                        start = compute_done[widx]
                        if now > start:
                            start = now
                        updates = ph[3]
                        if varying:
                            end = start + updates * w_rate(widx, start)
                        else:
                            end = start + updates * agent.w
                        compute_done[widx] = end
                        computes.append(
                            tnew(_KI, (
                                widx + 1, start, end, updates, agent.upd_labels[j],
                            ))
                        )
                        pending_free[widx].append((end, blocks))
                        if has_data:
                            chunk = agent.chunk
                            rr = ph[4]  # row_range override (max-re-use rows)
                            r0, r1 = rr if rr is not None else chunk.row_range
                            c0, c1 = chunk.col_range
                            k0, k1 = ph[0]
                            c_arr[r0 * q : r1 * q, c0 * q : c1 * q] += (
                                a_arr[r0 * q : r1 * q, k0 * q : k1 * q]
                                @ b_arr[k0 * q : k1 * q, c0 * q : c1 * q]
                            )
                        # Rolling compute-end window: the gate for phase j+1
                        # is ends[j+1-gap], i.e. the last (gap 1) or second-
                        # to-last (gap 2) compute end of this chunk.
                        agent.end2 = agent.end1
                        agent.end1 = end
                        j += 1
                        if j < agent.nph:
                            gate = now
                            if j >= agent.gap:
                                gate = agent.end1 if agent.gap == 1 else agent.end2
                            if gate > now:
                                # The kernel schedules timeout(gate - now): the
                                # fire time is now + (gate - now), replicated so
                                # ties resolve identically under float rounding.
                                agent.pidx = j
                                agent.wait_kind = _GAP
                                wait_agent = agent
                                wait_time = now + (gate - now)
                            else:
                                # Inlined request_phase (hot path): deliver phase j.
                                # ``pend`` is non-empty (a free was appended for the
                                # phase just computed) and ``stage`` is already _PHASE.
                                ph = agent.phases[j]
                                in_blocks = ph[1] + ph[2]
                                used = mem_used[widx]
                                pend = pending_free[widx]
                                lim = now + 1e-12
                                i = 0
                                n = len(pend)
                                while i < n and pend[i][0] <= lim:
                                    used -= pend[i][1]
                                    i += 1
                                if i:
                                    del pend[:i]
                                used += in_blocks
                                mem_used[widx] = used
                                if used > peaks[widx]:
                                    peaks[widx] = used
                                    if check_memory and used > caps[widx]:
                                        raise memory_exceeded(widx, used, caps[widx], now)
                                agent.pidx = j
                                agent.blocks = in_blocks
                                agent.duration = in_blocks * agent.c
                                if port_free[0]:
                                    port_free[0] = False
                                    agent.start = now
                                    grants.append(agent)
                                else:
                                    port_queue[0].append(agent)
                        else:
                            end_of_phases(agent, now)
                    elif stage == _CIN:
                        comms.append(
                            tnew(_CI, (
                                widx + 1, "send", agent.start, now, agent.blocks,
                                "C-in", 0,
                            ))
                        )
                        waiters = port_queue[0]
                        if waiters:
                            nxt = waiters.popleft()
                            nxt.start = now
                            grants.append(nxt)
                        else:
                            port_free[0] = True
                        agent.end1 = agent.end2 = 0.0
                        if agent.nph:
                            request_phase(agent, 0, now)
                        else:
                            end_of_phases(agent, now)
                    elif stage == _COUT:  # chunk complete: free C tile, next chunk
                        comms.append(
                            tnew(_CI, (
                                widx + 1, "recv", agent.start, now, agent.blocks,
                                "C-out", recv_pid,
                            ))
                        )
                        waiters = port_queue[recv_pid]
                        if waiters:
                            nxt = waiters.popleft()
                            nxt.start = now
                            grants.append(nxt)
                        else:
                            port_free[recv_pid] = True
                        used = mem_used[widx]
                        pend = pending_free[widx]
                        if pend:
                            lim = now + 1e-12
                            i = 0
                            while i < len(pend) and pend[i][0] <= lim:
                                used -= pend[i][1]
                                i += 1
                            if i:
                                del pend[:i]
                        mem_used[widx] = used - agent.blocks
                        start_chunk(agent, now)
                    else:  # _BG — background hold over: release, next event
                        ev = agent.events[agent.cursor]
                        comms.append(
                            tnew(_CI, (0, "send", agent.start, now, 0, ev.label, 0))
                        )
                        waiters = port_queue[0]
                        if waiters:
                            nxt = waiters.popleft()
                            nxt.start = now
                            grants.append(nxt)
                        else:
                            port_free[0] = True
                        agent.cursor += 1
                        if agent.cursor < len(agent.events):
                            when = agent.events[agent.cursor].time
                            if when > now:
                                # Kernel: timeout(when - now) scheduled in
                                # this burst (wait_kind is always _BGREQ).
                                wait_agent = agent
                                wait_time = now + (when - now)
                            else:
                                # Overdue (delayed behind a long hold):
                                # re-request within the same burst.
                                request_bg(agent, now)
                elif kind == _WAIT:
                    if agent.wait_kind == _GAP:
                        j = agent.pidx
                        widx = agent.widx
                        # Inlined request_phase (hot path): deliver phase j.
                        # ``pend`` is non-empty (a free was appended for the
                        # phase just computed) and ``stage`` is already _PHASE.
                        ph = agent.phases[j]
                        in_blocks = ph[1] + ph[2]
                        used = mem_used[widx]
                        pend = pending_free[widx]
                        lim = now + 1e-12
                        i = 0
                        n = len(pend)
                        while i < n and pend[i][0] <= lim:
                            used -= pend[i][1]
                            i += 1
                        if i:
                            del pend[:i]
                        used += in_blocks
                        mem_used[widx] = used
                        if used > peaks[widx]:
                            peaks[widx] = used
                            if check_memory and used > caps[widx]:
                                raise memory_exceeded(widx, used, caps[widx], now)
                        agent.pidx = j
                        agent.blocks = in_blocks
                        agent.duration = in_blocks * agent.c
                        if port_free[0]:
                            port_free[0] = False
                            agent.start = now
                            grants.append(agent)
                        else:
                            port_queue[0].append(agent)
                    elif agent.wait_kind == _FINAL:
                        request_cout(agent, now)
                    else:  # _BGREQ — background wake-up: claim the port
                        request_bg(agent, now)
                else:  # _HOP
                    # The grant hop fired (a tie forced it): the completion
                    # is sequenced here, as the kernel would.  Varying rates
                    # are sampled now — the hop instant IS the grant time.
                    seq += 4
                    if varying and agent.stage != _BG:
                        agent.duration = agent.blocks * c_rate(agent.widx, now)
                    push(heap, (now + agent.duration, seq | _DONE, agent))
                    continue
                if wait_agent is not None:
                    # End of burst: schedule the deferred gate timeout.
                    # Its sequence number precedes any grant of the same
                    # burst (the kernel schedules the timeout mid-burst,
                    # the grant's completion only when the grant fires);
                    # when nothing precedes it, dispatch it directly.
                    seq += 4
                    if grants or (heap and heap[0][0] <= wait_time):
                        push(heap, (wait_time, seq | _WAIT, wait_agent))
                    else:
                        pending = wait_agent
                        pending_time = wait_time
                        pending_kind = _WAIT
                    wait_agent = None
                if grants:
                    # End of burst: flush grants in order.  With a same-time
                    # entry pending, take the kernel's hop; otherwise fuse
                    # the grant into its completion directly — and when the
                    # completion precedes every heap entry, skip the heap
                    # round trip altogether (nothing can preempt it).
                    # (Specialised single-grant path: bursts grant at most
                    # one transfer per port, and two only in two-port
                    # C-out bursts.)
                    if varying:
                        # Every grant in the list was granted at ``now``:
                        # sample each transfer's rate here, exactly as the
                        # kernel computes the timeout after ``yield req``.
                        # Background holds keep their absolute durations.
                        for g in grants:
                            if g.stage != _BG:
                                g.duration = g.blocks * c_rate(g.widx, now)
                    granted = grants[0]
                    if len(grants) == 1:
                        grants.clear()
                        if heap:
                            head = heap[0][0]
                            if head <= now:
                                seq += 4
                                push(heap, (now, seq, granted))
                                continue
                            done_at = now + granted.duration
                            if head <= done_at:
                                seq += 4
                                push(heap, (done_at, seq | _DONE, granted))
                                continue
                        pending = granted
                        pending_time = now + granted.duration
                        pending_kind = _DONE
                    else:
                        seq += 4
                        if heap and heap[0][0] <= now:
                            push(heap, (now, seq, granted))
                            for granted in grants[1:]:
                                seq += 4
                                push(heap, (now, seq, granted))
                        else:
                            push(
                                heap,
                                (now + granted.duration, seq | _DONE, granted),
                            )
                            for granted in grants[1:]:
                                seq += 4
                                push(
                                    heap,
                                    (now + granted.duration, seq | _DONE,
                                     granted),
                                )
                        grants.clear()

        finally:
            if gc_was_enabled:
                gc.enable()

        memory_peak = trace.memory_peak
        for widx in range(p):
            if peaks[widx]:
                memory_peak[widx + 1] = peaks[widx]
        return trace


def run_fast(
    scheduler,
    platform: Platform,
    shape: ProblemShape,
    data: Optional[tuple[BlockMatrix, BlockMatrix, BlockMatrix]] = None,
    two_port: bool = False,
    check_memory: bool = True,
    scenario: Optional[Scenario] = None,
) -> Trace:
    """Launch ``scheduler`` on the fast engine and return its trace.

    Raises :class:`FastEngineUnsupported` when the scheduler registers
    raw kernel processes (callers fall back to the DES).  The exception
    can only originate from ``launch``, and the engine is constructed
    *without* the numeric ``data`` until ``launch`` has fully succeeded:
    an abandoned fast attempt therefore cannot have applied any block
    update to an in-place ``C``, so the DES re-run after a fallback
    starts from pristine data.  (``launch`` itself must be free of
    scheduler-state side effects to be re-runnable — true of every
    in-tree scheduler, which rebuild chunk lists and queues from
    scratch on each call.)
    """
    engine = FastEngine(
        platform, shape, data=None, two_port=two_port,
        check_memory=check_memory, scenario=scenario,
    )
    if data is not None:
        # Validate up front (same error order as the DES, which checks in
        # its constructor) but attach only after launch has succeeded.
        validate_block_data(data, shape)
    scheduler.launch(engine)
    engine.data = data
    return engine.run()
