"""Executable block LU following the Section 7.1 update structure.

Right-looking block LU *without pivoting across blocks* (the paper's
scheme factors the diagonal pivot block-matrix in place, so inputs must
make that stable — tests use diagonally dominant matrices):

for each pivot step (size ``µ·q`` elements):

1. factor the pivot square in place (unblocked LU, no pivoting),
2. vertical panel ``x ← x · U⁻¹`` row-band by row-band,
3. horizontal panel ``y ← L⁻¹ · y`` column-band by column-band,
4. core ``C ← C − L_panel · U_panel``.

On exit the argument holds the packed LU factors (unit-lower L below
the diagonal, U on and above).  :func:`verify_lu` re-multiplies them
and compares against the original.
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_lu", "verify_lu", "unpack_lu"]


def _factor_unblocked(a: np.ndarray) -> None:
    """In-place unpivoted LU of a small dense square matrix."""
    n = a.shape[0]
    for k in range(n):
        piv = a[k, k]
        if abs(piv) < 1e-300:
            raise ZeroDivisionError(
                f"zero pivot at {k}; matrix needs pivoting (use a "
                "diagonally dominant input)"
            )
        a[k + 1 :, k] /= piv
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])


def block_lu(a: np.ndarray, panel: int) -> np.ndarray:
    """In-place right-looking block LU with panel width ``panel``.

    ``panel`` is the element-level pivot size (the paper's ``µ·q``).
    Returns ``a`` for convenience.
    """
    a = np.asarray(a)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError(f"need a square matrix, got shape {a.shape}")
    if panel < 1:
        raise ValueError(f"panel must be >= 1, got {panel}")
    from scipy.linalg import solve_triangular

    for k0 in range(0, n, panel):
        k1 = min(k0 + panel, n)
        # 1. pivot factorization
        _factor_unblocked(a[k0:k1, k0:k1])
        l_piv = np.tril(a[k0:k1, k0:k1], -1) + np.eye(k1 - k0)
        u_piv = np.triu(a[k0:k1, k0:k1])
        if k1 < n:
            # 2. vertical panel: rows x ← x U⁻¹  (solve x U = row)
            a[k1:, k0:k1] = solve_triangular(
                u_piv.T, a[k1:, k0:k1].T, lower=True
            ).T
            # 3. horizontal panel: cols y ← L⁻¹ y
            a[k0:k1, k1:] = solve_triangular(l_piv, a[k0:k1, k1:], lower=True)
            # 4. rank-panel core update
            a[k1:, k1:] -= a[k1:, k0:k1] @ a[k0:k1, k1:]
    return a


def unpack_lu(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed factors into (unit-lower L, upper U)."""
    n = packed.shape[0]
    lower = np.tril(packed, -1) + np.eye(n)
    upper = np.triu(packed)
    return lower, upper


def verify_lu(original: np.ndarray, packed: np.ndarray, rtol: float = 1e-9) -> bool:
    """True when the packed factors reproduce ``original`` (L·U ≈ A)."""
    lower, upper = unpack_lu(packed)
    scale = max(1.0, float(np.abs(original).max()))
    return bool(
        np.allclose(lower @ upper, original, rtol=rtol, atol=rtol * scale)
    )
