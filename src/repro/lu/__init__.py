"""Extension to LU factorization — Section 7.

Right-looking block LU with a second blocking level of size µ (the
largest µ with ``µ² + 4µ ≤ m``): at each elimination step the pivot
µ×µ block-matrix is factored, the vertical and horizontal panels are
updated row-by-row / column-by-column against it, and the trailing
core matrix receives a rank-µ update — the same kernel as the matrix
product, which is why the master-worker machinery transfers.

* :mod:`repro.lu.costs` — the per-step communication and computation
  costs of Section 7.1, their exact sums, and the paper's closed forms
  (with the discrepancy in the communication formula documented).
* :mod:`repro.lu.homogeneous` — processor count ``P = ceil(µw/3c)`` and
  a makespan model for the parallel core update.
* :mod:`repro.lu.heterogeneous` — the chunk-shape policies for workers
  whose memory does not match the pivot size (square chunk iff
  ``µ_i ≤ µ/2``), virtual processors for over-provisioned workers, and
  the exhaustive search over the pivot size µ.
* :mod:`repro.lu.numeric` — an executable numpy block LU following
  exactly the Section 7.1 update structure, verified against ``A = LU``.
"""

from repro.lu.costs import (
    LUStepCost,
    lu_communication_paper_closed_form,
    lu_computation_closed_form,
    lu_step_cost,
    lu_total_cost,
)
from repro.lu.heterogeneous import (
    ChunkPolicy,
    best_pivot_size,
    chunk_policy,
    virtual_processors,
)
from repro.lu.homogeneous import lu_makespan_estimate, lu_worker_count
from repro.lu.numeric import block_lu, verify_lu
from repro.lu.scheduler import simulate_parallel_lu

__all__ = [
    "ChunkPolicy",
    "LUStepCost",
    "best_pivot_size",
    "block_lu",
    "chunk_policy",
    "lu_communication_paper_closed_form",
    "lu_computation_closed_form",
    "lu_makespan_estimate",
    "lu_step_cost",
    "lu_total_cost",
    "lu_worker_count",
    "simulate_parallel_lu",
    "verify_lu",
]
