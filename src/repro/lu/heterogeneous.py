"""Heterogeneous LU — Section 7.3.

Unlike the matrix product, LU forces a *common* pivot size µ on every
worker at a given elimination step.  A worker ``P_i`` whose memory chunk
size ``µ_i`` differs from µ needs a policy:

* ``µ_i < µ`` — two candidate shapes for the resident horizontal-panel
  chunk:

  - **square** (µ_i × µ_i): computation-to-communication ratio
    ``µ_i w / 3c``;
  - **whole columns** (µ × µ_i²/µ): ratio ``µ_i² w / ((µ + 2µ_i²/µ) c)``.

  The square chunk wins exactly when ``µ_i ≤ µ/2`` (the paper's
  inequality ``(2µ_i/µ − 1)(µ_i/µ − 1) < 0`` flips sign there).
* ``µ_i > µ`` — split the worker's memory into ``floor(µ_i²/µ²)``
  square chunks and treat it as that many virtual processors.

The pivot size itself is chosen by exhaustive search over feasible µ
values, estimating the full factorization time for each (Section 7.3's
closing recipe).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.layout import mu_overlap
from repro.lu.costs import lu_step_cost
from repro.platform.model import Platform

__all__ = ["ChunkPolicy", "chunk_policy", "virtual_processors", "best_pivot_size"]


@dataclass(frozen=True)
class ChunkPolicy:
    """Chosen chunk shape and its efficiency for one worker.

    Attributes:
        shape: ``"square"``, ``"columns"``, or ``"virtual"``.
        ratio: computation-to-communication ratio of the chosen shape
            (block updates per block moved, scaled by w/c).
        virtual_count: number of virtual processors (1 unless µ_i > µ).
    """

    shape: str
    ratio: float
    virtual_count: int = 1


def chunk_policy(mu_i: int, mu: int, c: float, w: float) -> ChunkPolicy:
    """Pick the Section 7.3 chunk shape for a worker with chunk µ_i.

    Implements the case analysis above; for ``µ_i = µ`` the worker
    behaves exactly as in the homogeneous algorithm (square chunk).
    """
    if mu_i < 1 or mu < 1:
        raise ValueError("mu_i and mu must be >= 1")
    if mu_i > mu:
        count = (mu_i * mu_i) // (mu * mu)
        return ChunkPolicy("virtual", mu * w / (3.0 * c), virtual_count=count)
    square_ratio = mu_i * w / (3.0 * c)
    column_ratio = (mu_i * mu_i * w) / ((mu + 2.0 * mu_i * mu_i / mu) * c)
    if 2 * mu_i <= mu:
        return ChunkPolicy("square", square_ratio)
    return ChunkPolicy("columns", column_ratio)


def virtual_processors(mu_i: int, mu: int) -> int:
    """How many µ-sized virtual processors a µ_i-memory worker provides."""
    if mu_i < mu:
        return 1
    return max(1, (mu_i * mu_i) // (mu * mu))


def _estimate_time(platform: Platform, r: int, mu: int) -> float:
    """Estimated factorization time with pivot size µ on ``platform``.

    Follows the Section 7.3 recipe: (a) the fastest worker (in
    ``2µ²c_i + µ³w_i`` terms) handles the pivot and panel updates;
    (b) the core update is distributed by effective throughput — each
    worker contributes updates at its chunk policy's rate, capped by the
    master port — mirroring the matrix-product selection logic.
    """
    if r % mu:
        return math.inf
    mus = [mu_overlap(wk.m) for wk in platform.workers]
    # (a) sequential owner: fastest at pivot + panel work.
    seq_scores = [
        2 * mu * mu * wk.c + mu**3 * wk.w for wk in platform.workers
    ]
    seq_widx = min(range(platform.p), key=lambda i: seq_scores[i])
    seq_wk = platform.workers[seq_widx]
    # (b) core-update throughput: enroll workers bandwidth-centrically.
    #     Worker i moves 3 blocks per µ_eff updates ... expressed per
    #     update: port cost 3c_i/(µ_eff,i) where µ_eff is its policy chunk.
    rates = []
    for i, wk in enumerate(platform.workers):
        pol = chunk_policy(mus[i], mu, wk.c, wk.w)
        eff_mu = min(mus[i], mu)
        port_per_update = 3.0 * wk.c / eff_mu
        cpu_rate = pol.virtual_count / wk.w  # updates per second, CPU-bound
        rates.append((port_per_update, cpu_rate))
    order = sorted(range(platform.p), key=lambda i: rates[i][0])
    total = 0.0
    for k in range(1, r // mu + 1):
        st = lu_step_cost(r, mu, k)
        sequential = (
            (st.comm_pivot + st.comm_vertical + st.comm_horizontal) * seq_wk.c
            + (st.comp_pivot + st.comp_vertical + st.comp_horizontal) * seq_wk.w
        )
        # Steady-state throughput of the core update under the one port.
        port_left, throughput = 1.0, 0.0
        for i in order:
            port_per_update, cpu_rate = rates[i]
            full_port = port_per_update * cpu_rate
            if full_port <= port_left:
                throughput += cpu_rate
                port_left -= full_port
            else:
                throughput += port_left / port_per_update
                port_left = 0.0
                break
        core_time = st.comp_core / throughput if throughput > 0 else math.inf
        total += sequential + core_time
    return total


def best_pivot_size(
    platform: Platform,
    r: int,
    candidates: Optional[Sequence[int]] = None,
) -> tuple[int, float]:
    """Exhaustive search for the pivot size µ (Section 7.3).

    ``candidates`` defaults to every divisor of ``r`` that fits the
    smallest worker's µ-range upper bound; returns ``(µ, estimated
    time)`` for the best.
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if candidates is None:
        cap = max(mu_overlap(wk.m) for wk in platform.workers)
        candidates = [d for d in range(1, min(r, 2 * cap) + 1) if r % d == 0]
    best_mu, best_time = 0, math.inf
    for mu in candidates:
        est = _estimate_time(platform, r, mu)
        if est < best_time:
            best_mu, best_time = mu, est
    if best_mu == 0:
        raise ValueError("no feasible pivot size among candidates")
    return best_mu, best_time
