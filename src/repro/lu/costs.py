"""Cost model of single-worker block LU — Section 7.1.

All quantities are in block units: the matrix is r×r blocks, the second
blocking level is µ (r assumed divisible by µ for the closed forms),
``c`` is seconds per block moved and ``w`` seconds per block update.

Step ``k`` (1-based, ``k = 1 .. r/µ``) of the factorization:

1. **Pivot**: factor the µ×µ pivot block-matrix —
   comm ``2µ²c``, comp ``µ³w``.
2. **Vertical panel** (the ``r − kµ`` block-rows below the pivot, each
   µ blocks wide): each row is brought, replaced by ``x·U⁻¹`` and sent
   back — comm ``2µ(r−kµ)c``, comp ``½µ²(r−kµ)w``.
3. **Horizontal panel**: symmetric — comm ``2µ(r−kµ)c``,
   comp ``½µ²(r−kµ)w``.
4. **Core update** (rank-µ update of the trailing ``(r−kµ)²`` blocks,
   processed µ columns at a time with a µ×µ horizontal-panel chunk kept
   resident): per group of µ columns, comm ``(µ² + 3(r−kµ)µ)c`` and
   comp ``(r−kµ)µ²w``; there are ``r/µ − k`` groups.

A note on the paper's closed forms.  The computation total
``(r³ + 2µ²r)w/3`` matches the exact sum of the step costs.  The
communication closed form printed in the paper, ``(r³/µ − r² + 2µr)c``,
equals the sum of the *pivot and core* terms only; adding the panel
terms of its own step analysis gives ``(r³/µ + r²)c``, i.e. the paper's
formula under-counts by the lower-order ``2r(r − µ)c``.
:func:`lu_total_cost` returns the exact sums;
:func:`lu_communication_paper_closed_form` reproduces the printed
formula for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LUStepCost",
    "lu_step_cost",
    "lu_total_cost",
    "lu_communication_paper_closed_form",
    "lu_computation_closed_form",
]


def _check(r: int, mu: int) -> None:
    if mu < 1:
        raise ValueError(f"mu must be >= 1, got {mu}")
    if r < mu:
        raise ValueError(f"need r >= mu, got r={r}, mu={mu}")
    if r % mu:
        raise ValueError(f"r={r} must be divisible by mu={mu}")


@dataclass(frozen=True)
class LUStepCost:
    """Costs of one elimination step, split by part (block units).

    ``comm_*`` count blocks moved; ``comp_*`` count block operations
    (weighted so that one full block update = 1).
    """

    step: int
    comm_pivot: float
    comm_vertical: float
    comm_horizontal: float
    comm_core: float
    comp_pivot: float
    comp_vertical: float
    comp_horizontal: float
    comp_core: float

    @property
    def comm_total(self) -> float:
        """Blocks moved during this step."""
        return self.comm_pivot + self.comm_vertical + self.comm_horizontal + self.comm_core

    @property
    def comp_total(self) -> float:
        """Block operations during this step."""
        return self.comp_pivot + self.comp_vertical + self.comp_horizontal + self.comp_core


def lu_step_cost(r: int, mu: int, k: int) -> LUStepCost:
    """Step-``k`` costs, following Section 7.1 verbatim."""
    _check(r, mu)
    n = r // mu
    if not 1 <= k <= n:
        raise ValueError(f"step k={k} out of 1..{n}")
    rem = r - k * mu  # blocks below/right of the pivot
    groups = n - k  # column groups of the core matrix
    return LUStepCost(
        step=k,
        comm_pivot=2.0 * mu * mu,
        comm_vertical=2.0 * mu * rem,
        comm_horizontal=2.0 * mu * rem,
        comm_core=groups * (mu * mu + 3.0 * rem * mu),
        comp_pivot=float(mu**3),
        comp_vertical=0.5 * mu * mu * rem,
        comp_horizontal=0.5 * mu * mu * rem,
        comp_core=groups * rem * float(mu * mu),
    )


def lu_total_cost(r: int, mu: int) -> tuple[float, float]:
    """Exact totals ``(comm_blocks, comp_blocks)`` summed over all steps.

    The communication total equals ``r³/µ + r²`` and the computation
    total ``(r³ + 2µ²r)/3`` (both in block units; multiply by ``c`` and
    ``w`` for seconds).
    """
    _check(r, mu)
    comm = comp = 0.0
    for k in range(1, r // mu + 1):
        st = lu_step_cost(r, mu, k)
        comm += st.comm_total
        comp += st.comp_total
    return comm, comp


def lu_communication_paper_closed_form(r: int, mu: int) -> float:
    """The closed form printed in the paper: ``r³/µ − r² + 2µr`` blocks.

    Matches the pivot + core terms of the step analysis; the panel terms
    add a further ``2r(r − µ)`` blocks (see the module docstring).
    """
    _check(r, mu)
    return r**3 / mu - r**2 + 2.0 * mu * r


def lu_computation_closed_form(r: int, mu: int) -> float:
    """The paper's computation closed form ``(r³ + 2µ²r)/3`` blocks."""
    _check(r, mu)
    return (r**3 + 2.0 * mu * mu * r) / 3.0
