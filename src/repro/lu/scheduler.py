"""Simulated parallel LU on the master-worker engine — Section 7.2.

Executes the homogeneous parallel LU scheme on the one-port simulator:
at each elimination step one worker handles the sequential part (pivot
factorization plus both panel updates, with its communications), then
the enrolled ``P = ceil(µw/3c)`` workers share the core update, each
column group costing ``(µ² + 3(r−kµ)µ)c`` of port time and
``(r−kµ)µ²w`` of compute.

This gives an engine-level trace (Gantt, port utilisation, one-port
invariants) for the LU extension, complementing the closed-form
estimate of :func:`repro.lu.homogeneous.lu_makespan_estimate`.
"""

from __future__ import annotations

from repro.engine.trace import CommInterval, ComputeInterval, Trace
from repro.lu.costs import lu_step_cost
from repro.lu.homogeneous import lu_worker_count
from repro.platform.model import Platform
from repro.sim.core import Environment
from repro.sim.resources import Resource

__all__ = ["simulate_parallel_lu"]


def simulate_parallel_lu(platform: Platform, r: int, mu: int) -> Trace:
    """Simulate the Section 7.2 parallel LU; returns the engine trace.

    The platform must be homogeneous (the Section 7.2 setting); ``r`` is
    the matrix size in blocks and ``mu`` the pivot size (must divide
    ``r``).
    """
    if not platform.is_homogeneous:
        raise ValueError("simulate_parallel_lu expects a homogeneous platform")
    wk = platform.workers[0]
    workers = lu_worker_count(mu, wk.c, wk.w, platform.p)
    env = Environment()
    port = Resource(env, capacity=1)
    trace = Trace()
    compute_done = [0.0] * platform.p

    def transfer(widx: int, blocks: float, direction: str, label: str):
        with port.request() as req:
            yield req
            start = env.now
            yield env.timeout(blocks * wk.c)
            trace.add_comm(
                CommInterval(widx + 1, direction, start, env.now, int(blocks), label)
            )
        return env.now

    def compute(widx: int, ops: float, arrival: float, label: str) -> float:
        start = max(arrival, compute_done[widx])
        end = start + ops * wk.w
        compute_done[widx] = end
        trace.add_compute(ComputeInterval(widx + 1, start, end, int(ops), label))
        return end

    def run():
        n = r // mu
        for k in range(1, n + 1):
            st = lu_step_cost(r, mu, k)
            # Sequential part on worker 0: pivot + both panels.
            seq_comm = st.comm_pivot + st.comm_vertical + st.comm_horizontal
            seq_comp = st.comp_pivot + st.comp_vertical + st.comp_horizontal
            arrival = yield from transfer(0, seq_comm, "send", f"seq k={k}")
            end = compute(0, seq_comp, arrival, f"pivot+panels k={k}")
            yield env.timeout(max(0.0, end - env.now))
            # Parallel core update: (n - k) column groups round-robin.
            groups = n - k
            if groups == 0:
                continue
            rem = r - k * mu
            per_group_comm = mu * mu + 3.0 * rem * mu
            per_group_comp = rem * mu * mu
            ends = []
            for g in range(groups):
                widx = g % workers
                a = yield from transfer(
                    widx, per_group_comm, "send", f"core k={k} g={g}"
                )
                ends.append(compute(widx, per_group_comp, a, f"core k={k} g={g}"))
            yield env.timeout(max(0.0, max(ends) - env.now))

    env.process(run(), name="lu-master")
    env.run()
    trace.check_invariants()
    return trace
