"""Parallel LU on homogeneous clusters — Section 7.2.

The dominant cost is the core update (``(r³/3 − µr²/2 + µ²r/6)w``), so
the paper parallelises it: per round a worker receives the µ×µ
horizontal-panel chunk (µ² blocks), the ``µ(r−kµ)`` vertical-panel
blocks, and exchanges ``2µ(r−kµ)`` core blocks, against ``µ²(r−kµ)``
block updates.  Saturating the master port gives

    ``P = ceil(µw / 3c)``

(neglecting the µ² chunk term for large ``r/µ``).  A single processor
factors the pivot and updates both panels; ``P`` workers then share the
core update.
"""

from __future__ import annotations

import math

from repro.lu.costs import lu_step_cost

__all__ = ["lu_worker_count", "lu_makespan_estimate"]


def lu_worker_count(mu: int, c: float, w: float, p: int) -> int:
    """The Section 7.2 enrolment rule ``P = min(p, ceil(µw/3c))``."""
    if mu < 1:
        raise ValueError(f"mu must be >= 1, got {mu}")
    if c <= 0 or w <= 0:
        raise ValueError("c and w must be positive")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return min(p, math.ceil(mu * w / (3.0 * c)))


def lu_makespan_estimate(r: int, mu: int, c: float, w: float, p: int) -> float:
    """Estimated parallel makespan of the Section 7.2 algorithm.

    Per step ``k``: the sequential part (pivot factorization and both
    panel updates, on one worker, including its communications) plus the
    parallelised core update, which takes the larger of the master-port
    time and the per-worker compute time spread over
    ``P = lu_worker_count(...)`` workers.

    This is a bound-style estimate (it assumes perfect overlap inside
    the core update and none across parts), suitable for comparing pivot
    sizes and worker counts — the role it plays in Section 7.3's
    exhaustive µ search.
    """
    workers = lu_worker_count(mu, c, w, p)
    total = 0.0
    for k in range(1, r // mu + 1):
        st = lu_step_cost(r, mu, k)
        sequential = (
            (st.comm_pivot + st.comm_vertical + st.comm_horizontal) * c
            + (st.comp_pivot + st.comp_vertical + st.comp_horizontal) * w
        )
        core_comm = st.comm_core * c
        core_comp = st.comp_core * w / workers
        total += sequential + max(core_comm, core_comp)
    return total
