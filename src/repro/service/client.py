"""Client side of the sweep service protocol.

:class:`ServeClient` is a thin, reconnecting wrapper over one unix-
domain socket: connect (with retries), ``hello``, then either a
request/response exchange (``ping``/``status``/``cancel``/
``shutdown``) or the streaming pair — ``submit`` or ``attach`` followed
by :meth:`events`.  The *policy* for surviving drops — when to
re-attach with the resume token, when to fall back to resubmitting —
lives in :class:`~repro.runner.backends.remote.RemoteBackend`, which
composes these primitives; keeping the transport dumb keeps the state
machine testable.

``drop_connection`` exists for the chaos harness: it severs the socket
abruptly, mid-stream, exactly like a network partition would, so the
reconnect path is exercised by real torn reads rather than simulated
flags.
"""

from __future__ import annotations

import os
import socket
import struct
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.service.protocol import FrameError, recv_frame, send_frame

__all__ = [
    "DaemonUnreachable",
    "ServeAborted",
    "ServeClient",
    "ServeError",
    "default_socket_path",
]


class ServeError(Exception):
    """The daemon answered, but with a protocol-level failure."""


class DaemonUnreachable(ServeError):
    """No daemon answered on the socket within the retry budget."""


class ServeAborted(ServeError):
    """The daemon aborted the request (drain, cancel, or recovery)."""


def default_socket_path() -> Path:
    """``$REPRO_SERVE_SOCKET`` or ``<default cache dir>/serve.sock``.

    Sharing the cache directory's default means a daemon and its
    clients agree on both rendezvous point and result store unless
    told otherwise.
    """
    env = os.environ.get("REPRO_SERVE_SOCKET")
    if env:
        return Path(env)
    from repro.runner.cache import default_cache_dir

    return default_cache_dir() / "serve.sock"


class ServeClient:
    """One connection's worth of protocol state."""

    def __init__(
        self,
        socket_path: Optional[Path | str] = None,
        connect_retries: int = 3,
        retry_delay: float = 0.2,
        hello_timeout: float = 5.0,
    ) -> None:
        self.socket_path = Path(socket_path or default_socket_path())
        self.connect_retries = max(1, connect_retries)
        self.retry_delay = retry_delay
        #: Deadline on the connect+hello handshake.  A SIGKILLed daemon
        #: can leave an orphaned pool worker holding the listener fd, so
        #: ``connect`` *succeeds* against a socket nobody will ever
        #: accept on; without a bound the client would hang forever in
        #: the hello read instead of burning a retry and failing over.
        self.hello_timeout = hello_timeout
        self.daemon_pid: Optional[int] = None
        self._sock: Optional[socket.socket] = None

    # -- transport ------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Dial the daemon and ``hello``; returns the hello reply."""
        self.close()
        last_error: Optional[Exception] = None
        for attempt in range(self.connect_retries):
            if attempt:
                time.sleep(self.retry_delay * attempt)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(self.hello_timeout)
                sock.connect(str(self.socket_path))
                send_frame(sock, {"op": "hello"})
                reply = recv_frame(sock)
                if not reply or not reply.get("ok"):
                    raise ServeError(f"bad hello reply: {reply!r}")
                # Streaming reads block indefinitely by design: a point
                # may compute for longer than any handshake bound.
                sock.settimeout(None)
            except (OSError, FrameError, ServeError) as exc:
                sock.close()
                last_error = exc
                continue
            self._sock = sock
            self.daemon_pid = reply.get("pid")
            return reply
        raise DaemonUnreachable(
            f"no sweep daemon on {self.socket_path} "
            f"after {self.connect_retries} attempts: {last_error}"
        )

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def drop_connection(self) -> None:
        """Sever the socket abruptly (chaos: simulated partition)."""
        if self._sock is not None:
            try:
                # SO_LINGER 0 → RST on close: the daemon sees a hard
                # drop, not a polite shutdown.
                self._sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
        self.close()

    def _require(self) -> socket.socket:
        if self._sock is None:
            raise ServeError("not connected")
        return self._sock

    # -- streaming pair -------------------------------------------------

    def submit(
        self,
        sweep: str,
        items: Sequence[Mapping[str, Any]],
        keys: Optional[Sequence[str]],
        fn: Tuple[str, str],
        timeout: Optional[float] = None,
        wrap: Optional[Sequence[Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a campaign; returns the reply carrying the resume
        token.  The connection then streams events."""
        sock = self._require()
        send_frame(sock, {
            "op": "submit", "sweep": sweep, "items": list(items),
            "keys": list(keys) if keys is not None else None,
            "fn": list(fn), "timeout": timeout,
            "wrap": list(wrap) if wrap is not None else None,
        })
        reply = recv_frame(sock)
        if reply is None:
            raise FrameError("connection closed before submit reply")
        if not reply.get("ok"):
            raise ServeError(f"submit rejected: {reply.get('error')}")
        return reply

    def attach(self, token: str, after: int) -> Dict[str, Any]:
        """Re-attach to a session; the reply is followed by events with
        ``seq > after``.  Raises :class:`ServeError` with message
        ``unknown-token`` when the daemon does not know the session
        (reaped, or a restarted daemon)."""
        sock = self._require()
        send_frame(sock, {"op": "attach", "token": token, "after": after})
        reply = recv_frame(sock)
        if reply is None:
            raise FrameError("connection closed before attach reply")
        if not reply.get("ok"):
            raise ServeError(str(reply.get("error") or "attach rejected"))
        return reply

    def events(self) -> Iterator[Dict[str, Any]]:
        """Stream event frames until the terminal one.

        Yields every frame, including the terminal ``done``/``abort``/
        ``gap``; raises :class:`FrameError`/``OSError`` when the
        connection drops mid-stream (the caller decides whether to
        re-attach).
        """
        sock = self._require()
        while True:
            frame = recv_frame(sock)
            if frame is None:
                raise FrameError("stream closed before terminal event")
            yield frame
            if frame.get("event") in ("done", "abort", "gap"):
                return

    # -- one-shot requests ---------------------------------------------

    def request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Connect, send one op, return its reply, close."""
        self.connect()
        try:
            sock = self._require()
            send_frame(sock, dict(message))
            reply = recv_frame(sock)
            if reply is None:
                raise ServeError(f"no reply to {message.get('op')!r}")
            return reply
        finally:
            self.close()

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def cancel(self, token: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "token": token})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request({"op": "shutdown", "drain": drain})
