"""The ``repro serve`` daemon: one warm pool, many clients.

A :class:`ServeDaemon` owns exactly one warm :class:`~repro.runner.
backends.persistent.PersistentBackend` pool and one :class:`~repro.
runner.cache.ResultCache`, listens on a unix-domain socket, and speaks
the length-prefixed JSON protocol from :mod:`~repro.service.protocol`.
Every accepted connection gets its own thread; compute is serialized
through the :class:`~repro.service.scheduler.CampaignScheduler`, which
interleaves concurrent clients' batches fairly over the shared pool.

Startup order is deliberate: recover the journal (close out requests a
dead predecessor left in flight), **warm the pool before any thread
starts** (fork-before-threads hygiene), then bind the socket — by the
time a client can connect, the daemon is already consistent and hot.

Shutdown is graceful on SIGTERM/SIGINT: stop accepting, let the leased
batch finish, abort queued requests with journalled reasons, drain the
pool.  A ``kill -9`` instead exercises the recovery path the journal
exists for — see ``docs/serve.md``'s failure matrix.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.backends.persistent import PersistentBackend
from repro.runner.cache import ResultCache, default_cache_dir
from repro.service.journal import ServiceJournal
from repro.service.protocol import FrameError, encode_frame, recv_frame, send_frame
from repro.service.scheduler import CampaignScheduler
from repro.service.session import Session, SessionRegistry

__all__ = ["ServeConfig", "ServeDaemon"]


#: Daemons whose sockets must be closed in forked children.  The pool
#: heals by *forking* replacement workers while the daemon is serving,
#: and a fork inherits every open fd — including the listener and live
#: client connections.  An orphaned worker holding the listener keeps
#: the socket connectable after the daemon is SIGKILLed, so clients
#: dial a zombie and hang in the hello handshake; a worker holding a
#: connection fd keeps that client from ever seeing EOF.  The at-fork
#: hook closes both classes of fd in the child.
_FORK_REGISTRY: "weakref.WeakSet[ServeDaemon]" = weakref.WeakSet()
_fork_hook_installed = False


def _close_service_sockets_in_child() -> None:
    for daemon in list(_FORK_REGISTRY):
        try:
            daemon._close_sockets_after_fork()
        except Exception:
            pass  # a half-torn-down daemon must not break the worker


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    socket_path: Optional[str] = None
    jobs: int = 2
    cache_dir: Optional[str] = None
    lease_s: float = 120.0
    linger_s: float = 300.0
    batch_points: Optional[int] = None
    ring: int = 4096
    quiet: bool = False


class ServeDaemon:
    """The long-lived sweep service process."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        root = (
            Path(self.config.cache_dir)
            if self.config.cache_dir
            else default_cache_dir()
        )
        from repro.service.client import default_socket_path

        self.socket_path = Path(
            self.config.socket_path or default_socket_path()
        )
        self.cache = ResultCache(root)
        self.journal = ServiceJournal(root)
        self.registry = SessionRegistry(linger_s=self.config.linger_s)
        self.backend = PersistentBackend(jobs=max(1, self.config.jobs))
        self.scheduler = CampaignScheduler(
            self.backend,
            self.cache,
            self.journal,
            lease_s=self.config.lease_s,
            batch_points=self.config.batch_points,
            housekeeping=self.registry.reap,
        )
        self.recovered = 0  # requests the journal closed out at startup
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conn_socks: set = set()
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[serve] {message}", file=sys.stderr, flush=True)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        global _fork_hook_installed
        if not _fork_hook_installed:
            os.register_at_fork(after_in_child=_close_service_sockets_in_child)
            _fork_hook_installed = True
        _FORK_REGISTRY.add(self)
        recovered = self.journal.recover()
        self.recovered = len(recovered)
        if recovered:
            self._log(
                f"recovered journal: closed {len(recovered)} in-flight "
                f"request(s) from a previous daemon"
            )
        # Fork the workers before any service thread exists.
        self.backend.warm()
        self._bind()
        self.scheduler.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._log(
            f"listening on {self.socket_path} "
            f"(pid {os.getpid()}, jobs {self.backend.jobs})"
        )

    def _bind(self) -> None:
        path = self.socket_path
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            # A live daemon answers; a stale socket from a killed one
            # does not and is safe to replace.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(str(path))
            except OSError:
                path.unlink(missing_ok=True)
            else:
                probe.close()
                raise RuntimeError(
                    f"a daemon is already serving on {path}"
                )
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(64)
        self._listener = listener

    def stop(self, drain: bool = True) -> None:
        """Graceful drain (default) or immediate teardown."""
        if self._stopping.is_set():
            self._stopped.set()
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.scheduler.stop(drain=drain)
        if drain:
            self.backend.close()
        else:
            self.backend.terminate()
        self.socket_path.unlink(missing_ok=True)
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        _FORK_REGISTRY.discard(self)
        self._stopped.set()
        self._log("stopped" if drain else "terminated")

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT, then drain and return."""

        def _request_stop(signum, frame):  # noqa: ARG001
            self._log(f"signal {signum}: draining")
            # stop() joins worker threads; run it off the signal frame.
            threading.Thread(target=self.stop, daemon=True).start()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _request_stop)
        try:
            self._stopped.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # -- connections ----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed: shutting down
            with self._conn_lock:
                self._conn_socks.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    message = recv_frame(conn)
                except FrameError:
                    break  # desynchronized or torn: drop the connection
                if message is None:
                    break
                if not self._handle(conn, message):
                    break
        except OSError:
            pass
        finally:
            with self._conn_lock:
                self._conn_socks.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _close_sockets_after_fork(self) -> None:
        """Close the service's sockets *in a forked child*.

        Runs via ``os.register_at_fork`` inside every child this
        process forks — i.e. pool workers respawned by the healing
        path.  Closing only drops the child's copy of each fd; the
        daemon's own descriptors are untouched, but once the daemon
        dies no orphan keeps its sockets half-alive.
        """
        for sock in [self._listener, *list(self._conn_socks)]:
            if sock is None:
                continue
            try:
                sock.close()
            except OSError:
                pass

    def _handle(self, conn: socket.socket, message: Dict[str, Any]) -> bool:
        """Dispatch one request frame; ``False`` ends the connection."""
        op = message.get("op")
        if op == "hello":
            send_frame(conn, {
                "ok": True, "server": "repro-serve", "pid": os.getpid(),
                "jobs": self.backend.jobs, "socket": str(self.socket_path),
            })
            return True
        if op == "ping":
            send_frame(conn, {"ok": True, "pid": os.getpid()})
            return True
        if op == "status":
            send_frame(conn, {
                "ok": True,
                "pid": os.getpid(),
                "jobs": self.backend.jobs,
                "sessions": len(self.registry.all()),
                "journal": self.journal.summary(),
                **self.scheduler.stats(),
            })
            return True
        if op == "submit":
            return self._op_submit(conn, message)
        if op == "attach":
            return self._op_attach(conn, message)
        if op == "cancel":
            token = str(message.get("token", ""))
            send_frame(conn, {"ok": self.scheduler.cancel(token)})
            return True
        if op == "shutdown":
            send_frame(conn, {"ok": True})
            threading.Thread(
                target=self.stop,
                kwargs={"drain": bool(message.get("drain", True))},
                daemon=True,
            ).start()
            return False
        send_frame(conn, {"ok": False, "error": f"unknown op {op!r}"})
        return True

    def _op_submit(self, conn: socket.socket, message: Dict[str, Any]) -> bool:
        try:
            items = list(message["items"])
            fn_token = tuple(message["fn"])
            if len(fn_token) != 2:
                raise ValueError("fn token must be [module, qualname]")
        except (KeyError, TypeError, ValueError) as exc:
            send_frame(conn, {"ok": False, "error": f"bad submit: {exc}"})
            return True
        keys = message.get("keys")
        if keys is not None and len(keys) != len(items):
            send_frame(conn, {"ok": False, "error": "keys/items length mismatch"})
            return True
        session = Session(
            token=self.registry.new_token(),
            sweep=str(message.get("sweep", "adhoc")),
            items=items,
            keys=list(keys) if keys is not None else None,
            fn_token=(str(fn_token[0]), str(fn_token[1])),
            timeout=message.get("timeout"),
            wrap=message.get("wrap"),
            ring=self.config.ring,
        )
        if self._stopping.is_set():
            send_frame(conn, {"ok": False, "error": "daemon is draining"})
            return True
        self.registry.add(session)
        self.scheduler.submit(session)
        send_frame(conn, {
            "ok": True, "token": session.token, "total": len(items),
        })
        # A cleanly terminated stream leaves the connection in sync, so
        # the client can reuse it for its next sweep without paying a
        # reconnect round-trip per campaign member.
        return self._stream(conn, session, after=0)

    def _op_attach(self, conn: socket.socket, message: Dict[str, Any]) -> bool:
        token = str(message.get("token", ""))
        session = self.registry.get(token)
        if session is None:
            # Unknown here means either reaped or a different daemon
            # incarnation: the client falls back to resubmitting what
            # it has not yet received.
            send_frame(conn, {"ok": False, "error": "unknown-token"})
            return True
        after = int(message.get("after", 0))
        send_frame(conn, {
            "ok": True, "token": token, "total": len(session.items),
        })
        return self._stream(conn, session, after=after)

    def _stream(self, conn: socket.socket, session: Session, after: int) -> bool:
        """Replay ringed events past ``after``, then follow live ones.

        Events are coalesced into one ``sendall`` per wakeup so a burst
        of fast points does not pay one syscall round-trip each.
        Returns ``True`` only when the stream delivered its terminal
        event — the one case where the connection is still in sync and
        safe to keep open for the client's next request.
        """
        session.attach()
        last = after
        try:
            while True:
                events = session.events_after(last, timeout=0.5)
                if events is None:
                    send_frame(conn, {"event": "gap", "oldest": session.oldest_seq()})
                    return False
                if events:
                    conn.sendall(b"".join(encode_frame(e) for e in events))
                    last = events[-1]["seq"]
                    if events[-1].get("event") in ("done", "abort"):
                        return True
                elif session.closed:
                    # The terminal was streamed to an earlier attach and
                    # this client asked for events past it: nothing more
                    # will ever arrive, so drop the connection to push
                    # the client into its resubmit path.
                    return False
        except OSError:
            return False  # client went away; the session keeps computing
        finally:
            session.detach()
