"""The distributed sweep service: one warm daemon, many clients.

``python -m repro serve`` runs a long-lived daemon (:mod:`~repro.
service.daemon`) that owns one warm :class:`~repro.runner.backends.
PersistentBackend` worker pool plus one :class:`~repro.runner.
ResultCache`, and speaks a length-prefixed JSON protocol (:mod:`~repro.
service.protocol`) over a local socket.  ``sweep --backend remote``
routes through it via :class:`~repro.runner.backends.remote.
RemoteBackend` / :class:`~repro.service.client.ServeClient`.

Robustness is the design center — per-batch leases with progress
heartbeats (:mod:`~repro.service.scheduler`), client reconnect with
resume tokens replayed from per-session ring buffers (:mod:`~repro.
service.session`), and an append-only journaled request log
(:mod:`~repro.service.journal`) so a ``kill -9``'d daemon restarts
knowing exactly what was in flight.  See ``docs/serve.md`` for the
protocol frames, lease semantics, and the failure matrix.

This ``__init__`` stays import-light on purpose: the execution-backend
registry imports :mod:`repro.service.client` (via the ``remote``
backend) on every ``repro.runner`` import, and must not drag the whole
daemon — or the backends package again, circularly — with it.  Import
:class:`ServeDaemon` from :mod:`repro.service.daemon` directly.
"""

from repro.service.client import (
    DaemonUnreachable,
    ServeAborted,
    ServeClient,
    ServeError,
    default_socket_path,
)
from repro.service.protocol import FrameError, recv_frame, send_frame

__all__ = [
    "DaemonUnreachable",
    "FrameError",
    "ServeAborted",
    "ServeClient",
    "ServeError",
    "default_socket_path",
    "recv_frame",
    "send_frame",
]
