"""The daemon's journaled request log.

An append-only JSONL file in the cache directory (``<cache-root>/
SERVICE.jsonl`` — a *file* in the root, so the per-sweep manifest
machinery never mistakes it for a sweep namespace) recording every
request the daemon accepted and every batch it leased or completed::

    {"op": "request",  "token": t, "sweep": s, "total": N, "created": T}
    {"op": "lease",    "token": t, "batch": b, "indices": [...], "expires": T}
    {"op": "complete", "token": t, "batch": b}
    {"op": "done",     "token": t}
    {"op": "abort",    "token": t, "reason": "..."}

The fold is last-op-wins per token (``done``/``abort`` close a
request) and per ``(token, batch)`` (``complete`` clears a ``lease``),
with the same torn-line salvage rule as ``MANIFEST.jsonl``: an
unparsable line (the append a ``kill -9`` tore in half) is skipped,
never trusted, and costs at most its own record.

What the journal buys after a crash: a restarted daemon folds it,
reports every request that was still open — whose *leased but
uncompleted* batches are exactly the work in flight at the kill — and
closes them with ``abort`` records (their sessions died with the old
process; clients finish via ``--resume``, recomputing only those
in-flight batches because every *completed* batch's results were
already in the result cache before its ``complete`` record was
written).  The journal then compacts itself (write-new → atomic
rename) so dead history never accumulates across restarts.

Appends are single ``O_APPEND`` writes of one line, safe under the
daemon's scheduler/connection threads, and deliberately not fsynced:
the crash model is process death (``kill -9``), which loses nothing
already handed to the page cache.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["JOURNAL_NAME", "RequestState", "ServiceJournal"]

JOURNAL_NAME = "SERVICE.jsonl"


@dataclass
class RequestState:
    """One request's folded journal state."""

    token: str
    sweep: str = "?"
    total: int = 0
    status: str = "open"  # open | done | aborted
    reason: str = ""
    #: batch id -> the indices its lease named; cleared on complete.
    leased: Dict[int, List[int]] = field(default_factory=dict)
    completed: int = 0


class ServiceJournal:
    """Append, fold, recover, and compact the daemon's request log."""

    def __init__(self, root: Path | str) -> None:
        self.path = Path(root) / JOURNAL_NAME

    # -- writes ---------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        """One journal line, one atomic ``O_APPEND`` write; best-effort
        (a read-only cache directory loses the record, never the
        daemon)."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode())
            finally:
                os.close(fd)
        except OSError:
            pass

    def request(self, token: str, sweep: str, total: int) -> None:
        self.append(
            {"op": "request", "token": token, "sweep": sweep,
             "total": total, "created": time.time()}
        )

    def lease(self, token: str, batch: int, indices: List[int], expires: float) -> None:
        self.append(
            {"op": "lease", "token": token, "batch": batch,
             "indices": list(indices), "expires": expires}
        )

    def complete(self, token: str, batch: int) -> None:
        self.append({"op": "complete", "token": token, "batch": batch})

    def done(self, token: str) -> None:
        self.append({"op": "done", "token": token})

    def abort(self, token: str, reason: str) -> None:
        self.append({"op": "abort", "token": token, "reason": str(reason)})

    # -- fold -----------------------------------------------------------

    def fold(self) -> Dict[str, RequestState]:
        """Token → folded state; torn/unparsable lines are skipped."""
        try:
            text = self.path.read_text()
        except OSError:
            return {}
        states: Dict[str, RequestState] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op, token = record["op"], record["token"]
            except (ValueError, KeyError, TypeError):
                continue  # salvage what parses, skip the torn line
            state = states.setdefault(token, RequestState(token=token))
            if op == "request":
                state.sweep = record.get("sweep", "?")
                state.total = int(record.get("total", 0))
                state.status = "open"
            elif op == "lease":
                state.leased[int(record.get("batch", -1))] = list(
                    record.get("indices", [])
                )
            elif op == "complete":
                state.leased.pop(int(record.get("batch", -1)), None)
                state.completed += 1
            elif op == "done":
                state.status = "done"
            elif op == "abort":
                state.status = "aborted"
                state.reason = record.get("reason", "")
        return states

    # -- recovery & compaction ------------------------------------------

    def recover(self) -> List[RequestState]:
        """Close every request a dead daemon left open.

        Returns the recovered (previously open) states — their leased
        batches are the work that was in flight at the crash — after
        journalling an ``abort`` for each and compacting the log.
        """
        states = self.fold()
        recovered = [s for s in states.values() if s.status == "open"]
        for state in recovered:
            self.abort(state.token, "daemon restart: request was in flight")
            state.status = "aborted"
            state.reason = "daemon restart"
        self.compact()
        return recovered

    def compact(self) -> int:
        """Drop closed requests' history; returns records removed.

        Open requests keep their full record set (request + outstanding
        leases); ``done``/``aborted`` requests vanish entirely.  Write-
        new-then-atomic-rename, same crash-safety as manifest
        compaction.
        """
        states = self.fold()
        try:
            before = sum(
                1 for line in self.path.read_text().splitlines() if line.strip()
            )
        except OSError:
            return 0
        lines = []
        for token, state in states.items():
            if state.status != "open":
                continue
            lines.append(json.dumps(
                {"op": "request", "token": token, "sweep": state.sweep,
                 "total": state.total, "created": time.time()},
                separators=(",", ":"),
            ))
            for batch, indices in sorted(state.leased.items()):
                lines.append(json.dumps(
                    {"op": "lease", "token": token, "batch": batch,
                     "indices": indices, "expires": 0.0},
                    separators=(",", ":"),
                ))
        text = "".join(line + "\n" for line in lines)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        except OSError:
            return 0
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, self.path)
        except OSError:
            Path(tmp).unlink(missing_ok=True)
            return 0
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return before - len(lines)

    def summary(self) -> Dict[str, Any]:
        """Folded counts for the ``status`` op / ``serve --status``."""
        states = self.fold()
        by_status: Dict[str, int] = {}
        in_flight: List[Tuple[str, str, int]] = []
        for state in states.values():
            by_status[state.status] = by_status.get(state.status, 0) + 1
            if state.status == "open" and state.leased:
                in_flight.append((state.token, state.sweep, len(state.leased)))
        return {"requests": by_status, "in_flight": in_flight}
