"""Client sessions: resume tokens, event ring buffers, reconnect.

One :class:`Session` per accepted sweep request.  The session is the
daemon-side half of the reconnect contract: every event (one per
resolved point, plus the terminal ``done``/``abort``) gets a
monotonically increasing ``seq`` and lands in a bounded ring buffer.
A client that lost its connection re-attaches with its resume token
and the last ``seq`` it saw; the session replays everything newer from
the ring and the stream continues as if the drop never happened.  Only
a client that stays away long enough for the ring to overflow past its
position loses the session (it gets a ``gap`` error and falls back to
``--resume``, which is cheap — completed points are in the cache).

Sessions outlive their connections, not the daemon: computation keeps
running while nobody is attached, and a finished session lingers for
``linger_s`` so a late reconnect can still collect the tail before the
reaper drops it.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["Session", "SessionRegistry"]


class Session:
    """One submitted sweep request and its event history."""

    def __init__(
        self,
        token: str,
        sweep: str,
        items: List[Mapping[str, Any]],
        keys: Optional[List[str]],
        fn_token: Tuple[str, str],
        timeout: Optional[float],
        wrap: Optional[list],
        ring: int = 4096,
    ) -> None:
        self.token = token
        self.sweep = sweep
        self.items = items
        self.keys = keys
        self.fn_token = fn_token
        self.timeout = timeout
        self.wrap = wrap
        self._ring: deque = deque(maxlen=max(16, ring))
        self._seq = itertools.count(1)
        self._last_seq = 0
        self._cond = threading.Condition()
        self.closed = False      # done or abort event posted
        self.cancelled = False   # client asked to drop queued work
        self.attached = 0
        self.last_detach = time.monotonic()
        self.delivered = 0       # result events posted so far

    # -- producer side (scheduler) --------------------------------------

    def post(self, event: Dict[str, Any]) -> None:
        """Stamp ``seq`` on ``event``, ring it, wake attached streams."""
        self.post_many((event,))

    def post_many(self, events) -> None:
        """Post a burst of events under one lock round and one wake.

        The scheduler posts cheap points in bursts so an attached
        stream drains them into a single coalesced socket write instead
        of a wake-encode-send cycle per point — the difference between
        ~75µs and ~15µs of dispatch tax per point on the warm
        micro-point benchmark.
        """
        with self._cond:
            for event in events:
                event["seq"] = self._last_seq = next(self._seq)
                self._ring.append(event)
                if event.get("event") == "result":
                    self.delivered += 1
                if event.get("event") in ("done", "abort"):
                    self.closed = True
            self._cond.notify_all()

    def post_result(
        self, index: int, value: Any, seconds: float,
        error: Optional[str], cached: bool = False,
    ) -> None:
        self.post({
            "event": "result", "index": index, "value": value,
            "seconds": seconds, "error": error, "cached": cached,
        })

    # -- consumer side (connection streams) -----------------------------

    def oldest_seq(self) -> int:
        with self._cond:
            return self._ring[0]["seq"] if self._ring else self._last_seq + 1

    def events_after(self, after: int, timeout: float = 0.5) -> Optional[List[dict]]:
        """Every ringed event with ``seq > after`` (blocking up to
        ``timeout`` for the first new one), or ``None`` when ``after``
        has already slid out of the ring — the replay gap a too-late
        reconnect cannot bridge."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._ring and self._ring[0]["seq"] > after + 1:
                    return None  # gap: events were evicted unseen
                fresh = [e for e in self._ring if e["seq"] > after]
                if fresh or self.closed:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return fresh
                self._cond.wait(remaining)

    def attach(self) -> None:
        with self._cond:
            self.attached += 1

    def detach(self) -> None:
        with self._cond:
            self.attached = max(0, self.attached - 1)
            self.last_detach = time.monotonic()


class SessionRegistry:
    """Token → live session, with a linger-based reaper."""

    def __init__(self, linger_s: float = 300.0) -> None:
        self.linger_s = linger_s
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}

    @staticmethod
    def new_token() -> str:
        return uuid.uuid4().hex

    def add(self, session: Session) -> None:
        with self._lock:
            self._sessions[session.token] = session

    def get(self, token: str) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(token)

    def all(self) -> List[Session]:
        with self._lock:
            return list(self._sessions.values())

    def reap(self) -> int:
        """Drop closed sessions nobody has been attached to for
        ``linger_s``; returns how many were dropped."""
        now = time.monotonic()
        dropped = 0
        with self._lock:
            for token, session in list(self._sessions.items()):
                if (
                    session.closed
                    and session.attached == 0
                    and now - session.last_detach > self.linger_s
                ):
                    del self._sessions[token]
                    dropped += 1
        return dropped
