"""Campaign-level scheduling: batches, leases, fair interleaving.

The daemon funnels every client's sweep request through one
:class:`CampaignScheduler`, which owns the warm worker pool.  Each
request's cache-miss points are sliced into **batches**; a single
dispatcher thread drains the batch queues **round-robin across
sessions**, so two concurrent clients see their campaigns interleave
fairly over the shared fleet instead of queueing behind each other —
within a batch, the persistent pool still fans the points out over
every worker.

Each dispatched batch holds a **lease**: a deadline the batch must show
progress against, renewed (heartbeat) every time one of its points
resolves.  A batch whose lease expires — a worker wedged on a point
with no per-point timeout armed, a blocked I/O call, a livelocked
extension — has its pool workers killed, and the managed pool's
existing dead-worker healing requeues the in-flight work exactly as it
does for an external ``kill -9``; the pool's ``MAX_BATCH_REQUEUES``
guard keeps a genuinely poisonous batch from crash-looping forever.
Lease enforcement therefore needs real worker processes (``jobs >=
2``), the same caveat as per-point timeouts on the serial backend.

Batch leases and completions are journalled (:mod:`~repro.service.
journal`) *after* their results are in the result cache, so the
recovery invariant holds: anything the journal calls complete is
re-servable from cache, and a killed daemon owes only its leased,
uncompleted batches.
"""

from __future__ import annotations

import importlib
import os
import signal
import threading
import time
import traceback
from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.runner.backends.base import PointFn, TaskResult
from repro.runner.cache import ResultCache
from repro.service.journal import ServiceJournal
from repro.service.session import Session

__all__ = ["CampaignScheduler"]


def resolve_token(token: Tuple[str, str]) -> PointFn:
    """Import-resolve a ``(module, qualname)`` point-function token."""
    module_name, qualname = token
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


class _Batch:
    """One leased unit of work: a slice of a session's missing points."""

    __slots__ = ("session", "id", "indices", "deadline", "expiries")

    def __init__(self, session: Session, batch_id: int, indices: List[int]):
        self.session = session
        self.id = batch_id
        self.indices = indices
        self.deadline = 0.0
        self.expiries = 0


class _Job:
    """Scheduler-side bookkeeping for one session's request."""

    __slots__ = ("session", "batches")

    def __init__(self, session: Session):
        self.session = session
        self.batches: Deque[_Batch] = deque()


class CampaignScheduler:
    """Round-robin batch dispatcher over one warm persistent pool."""

    def __init__(
        self,
        backend,
        cache: Optional[ResultCache],
        journal: ServiceJournal,
        lease_s: float = 120.0,
        heartbeat_s: float = 0.25,
        batch_points: Optional[int] = None,
        housekeeping: Optional[Callable[[], None]] = None,
    ) -> None:
        self.backend = backend
        self.cache = cache
        self.journal = journal
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.batch_points = batch_points
        self.housekeeping = housekeeping
        self.lease_expiries = 0  # observability/tests
        self._jobs: "OrderedDict[str, _Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._work = threading.Event()
        self._stop = threading.Event()
        self._draining = False
        self._active: Optional[_Batch] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        for name, target in (
            ("repro-serve-dispatch", self._dispatch_loop),
            ("repro-serve-leases", self._monitor_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, drain: bool = True) -> None:
        """Stop dispatching.  ``drain`` finishes the currently leased
        batch first; otherwise the pool is torn down under it and the
        batch aborts."""
        self._draining = True
        if not drain:
            terminate = getattr(self.backend, "terminate", None)
            if terminate is not None:
                terminate()
        self._stop.set()
        self._work.set()
        for thread in self._threads:
            thread.join(timeout=max(10.0, self.lease_s))

    # -- intake ---------------------------------------------------------

    def submit(self, session: Session) -> None:
        """Accept one request: serve its cache hits immediately, queue
        batches for the misses."""
        self.journal.request(session.token, session.sweep, len(session.items))
        if self._draining:
            self.journal.abort(session.token, "draining")
            session.post({"event": "abort", "reason": "daemon is draining"})
            return
        missing: List[int] = []
        hits: List[dict] = []
        for idx in range(len(session.items)):
            if self.cache is not None and session.keys is not None:
                value, hit = self.cache.get(session.sweep, session.keys[idx])
                if hit:
                    hits.append({
                        "event": "result", "index": idx, "value": value,
                        "seconds": 0.0, "error": None, "cached": True,
                    })
                    continue
            missing.append(idx)
        session.post_many(hits)
        job = _Job(session)
        if not missing:
            # Journal before notifying: a client that saw the terminal
            # event must find the journal already consistent.
            self.journal.done(session.token)
            session.post({"event": "done"})
            return
        # Each batch pays one pool-map pipeline fill (~1ms), so the
        # default leans large; batches stay the fairness quantum for
        # interleaving clients, and leases renew per *point* regardless.
        size = self.batch_points or max(
            1, getattr(self.backend, "jobs", 1) * 16
        )
        for b, lo in enumerate(range(0, len(missing), size)):
            job.batches.append(_Batch(session, b, missing[lo : lo + size]))
        with self._lock:
            self._jobs[session.token] = job
        self._work.set()

    def cancel(self, token: str) -> bool:
        """Drop a session's queued batches (the active one finishes)."""
        with self._lock:
            job = self._jobs.get(token)
            if job is None:
                return False
            job.session.cancelled = True
            job.batches.clear()
            if self._active is None or self._active.session.token != token:
                del self._jobs[token]
                self.journal.abort(token, "cancelled by client")
                job.session.post({"event": "abort", "reason": "cancelled"})
        return True

    # -- dispatch -------------------------------------------------------

    def _next_batch(self) -> Optional[_Batch]:
        """Round-robin: take the head batch of the least-recently-served
        session that still has queued work."""
        with self._lock:
            for token in list(self._jobs):
                job = self._jobs[token]
                if job.batches:
                    self._jobs.move_to_end(token)  # fair: back of the line
                    batch = job.batches.popleft()
                    self._active = batch
                    batch.deadline = time.monotonic() + self.lease_s
                    return batch
        return None

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set() or not self._draining:
            if self._stop.is_set():
                break
            batch = self._next_batch()
            if batch is None:
                self._work.clear()
                self._work.wait(timeout=0.5)
                continue
            try:
                self._run_batch(batch)
            finally:
                with self._lock:
                    self._active = None
                self._finish_if_done(batch.session)
        self._abort_queued("daemon is draining")

    def _run_batch(self, batch: _Batch) -> None:
        session = batch.session
        self.journal.lease(
            session.token, batch.id, batch.indices,
            time.time() + self.lease_s,
        )
        items = [session.items[i] for i in batch.indices]
        wrap = tuple(session.wrap) if session.wrap else None
        resolved = 0
        # Cheap points resolve every few microseconds; posting each one
        # individually costs a wake-encode-send cycle across three
        # threads.  Buffer them into bursts — flushed on size, on
        # staleness (so slow points still stream promptly), and always
        # before the batch's completion is journalled.
        pending: List[dict] = []
        flushed_at = time.monotonic()
        try:
            fn = resolve_token(session.fn_token)
            results = self.backend.map(
                fn, items, timeout=session.timeout, wrap=wrap
            )
            for idx, task in zip(batch.indices, results):
                pending.append(self._resolve_point(session, idx, task))
                resolved += 1
                now = time.monotonic()
                batch.deadline = now + self.lease_s  # heartbeat
                if len(pending) >= 8 or now - flushed_at > 0.01:
                    session.post_many(pending)
                    pending, flushed_at = [], now
        except Exception:
            # The batch must resolve no matter what broke (token import,
            # a torn-down pool on force-stop): error out its unresolved
            # points, keep the daemon alive.  ``zip`` consumed results
            # in order, so the unresolved points are exactly the tail.
            error = traceback.format_exc()
            for idx in batch.indices[resolved:]:
                pending.append({
                    "event": "result", "index": idx, "value": None,
                    "seconds": 0.0, "error": error, "cached": False,
                })
        session.post_many(pending)
        self.journal.complete(session.token, batch.id)

    def _resolve_point(
        self, session: Session, idx: int, task: TaskResult
    ) -> dict:
        """Cache a resolved point; return its (unposted) result event."""
        error = task.error
        value = task.value
        if error is None and self.cache is not None and session.keys is not None:
            try:
                self.cache.put(
                    session.sweep, session.keys[idx], session.items[idx], value
                )
            except (TypeError, OSError):
                pass  # non-JSON value or read-only store: serve uncached
        return {
            "event": "result", "index": idx, "value": value,
            "seconds": task.seconds, "error": error, "cached": False,
        }

    def _finish_if_done(self, session: Session) -> None:
        with self._lock:
            job = self._jobs.get(session.token)
            if job is None or job.batches:
                return
            if self._active is not None and self._active.session is session:
                return
            del self._jobs[session.token]
        if session.cancelled:
            self.journal.abort(session.token, "cancelled by client")
            session.post({"event": "abort", "reason": "cancelled"})
        else:
            self.journal.done(session.token)
            session.post({"event": "done"})

    def _abort_queued(self, reason: str) -> None:
        with self._lock:
            jobs, self._jobs = list(self._jobs.values()), OrderedDict()
        for job in jobs:
            self.journal.abort(job.session.token, reason)
            job.session.post({"event": "abort", "reason": reason})

    # -- leases ---------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            self._check_lease()
            if self.housekeeping is not None:
                self.housekeeping()

    def _check_lease(self) -> None:
        with self._lock:
            batch = self._active
            if batch is None or time.monotonic() <= batch.deadline:
                return
            # Expired: no point of this batch resolved within lease_s.
            batch.deadline = time.monotonic() + self.lease_s
            batch.expiries += 1
            self.lease_expiries += 1
        pids = []
        worker_pids = getattr(self.backend, "worker_pids", None)
        if worker_pids is not None:
            pids = worker_pids()
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        # The dispatcher is blocked consuming backend.map; the pool's
        # liveness poll sees the kills, respawns, and requeues — the
        # lease-expiry requeue IS the pool's dead-worker requeue.
        self.journal.lease(
            batch.session.token, batch.id, batch.indices,
            time.time() + self.lease_s,
        )

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            queued = sum(len(job.batches) for job in self._jobs.values())
            active = self._active.session.token if self._active else None
        return {
            "queued_batches": queued,
            "active": active,
            "lease_expiries": self.lease_expiries,
            "respawns": getattr(self.backend, "respawns", 0),
        }
