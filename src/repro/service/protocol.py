"""Length-prefixed JSON framing for the sweep service.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Both sides exchange whole frames only, so a torn
read (peer died mid-frame) is always detectable as a :class:`FrameError`
rather than a half-parsed message — the same never-trust-a-torn-line
discipline the cache manifests follow on disk.

The JSON dialect is Python's (``NaN`` tokens allowed), matching the
cache entries the daemon writes; values round-trip byte-identically
through :func:`repro.runner.sweep._normalize` on both sides.

Request/response shapes are plain dicts documented in
``docs/serve.md``; this module only moves them.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = ["FrameError", "MAX_FRAME", "encode_frame", "recv_frame", "send_frame"]

#: Upper bound on one frame's body, a guard against a corrupt or
#: malicious length prefix allocating unbounded memory.  Generous: a
#: sweep submission carries every point's params in one frame.
MAX_FRAME = 256 * 1024 * 1024

_HEADER = struct.Struct("!I")


class FrameError(ConnectionError):
    """The stream ended or desynchronized mid-frame."""


def encode_frame(obj: Any) -> bytes:
    """One message as wire bytes (header + JSON body)."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Send one message as a single ``sendall`` (header + body)."""
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on EOF *before the first
    byte* (a clean close at a frame boundary), :class:`FrameError` on
    EOF mid-read (the peer died inside a frame)."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise FrameError(f"stream ended {n - got} bytes into a frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one message; ``None`` on a clean EOF between frames.

    Raises :class:`FrameError` for torn frames, oversized lengths, or
    bodies that fail to parse as a JSON object — a desynchronized
    stream must never be silently reinterpreted.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds MAX_FRAME")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("stream ended between frame header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"unparsable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message
