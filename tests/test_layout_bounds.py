"""Tests for memory layouts and the Section 4 CCR bounds."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    ccr_lower_bound_irony_toledo_tiskin,
    ccr_lower_bound_loomis_whitney,
    ccr_lower_bound_toledo_refined,
    ccr_max_reuse,
    ccr_max_reuse_asymptotic,
    hong_kung_bound,
    loomis_whitney_bound,
    solve_k_bound,
)
from repro.core.layout import (
    MemoryLayout,
    max_reuse_mu,
    mu_no_overlap,
    mu_overlap,
    overlapped_toledo_split,
    toledo_split,
)


class TestLayoutFormulas:
    def test_paper_example_m21(self):
        # Figure 5: m = 21 gives mu = 4.
        assert max_reuse_mu(21) == 4

    def test_small_values(self):
        assert max_reuse_mu(3) == 1
        assert mu_overlap(5) == 1
        assert mu_no_overlap(3) == 1

    @given(m=st.integers(3, 100000))
    @settings(max_examples=200, deadline=None)
    def test_max_reuse_mu_is_maximal(self, m):
        mu = max_reuse_mu(m)
        assert 1 + mu + mu * mu <= m
        assert 1 + (mu + 1) + (mu + 1) ** 2 > m

    @given(m=st.integers(5, 100000))
    @settings(max_examples=200, deadline=None)
    def test_mu_overlap_is_maximal(self, m):
        mu = mu_overlap(m)
        assert mu * mu + 4 * mu <= m
        assert (mu + 1) ** 2 + 4 * (mu + 1) > m

    @given(m=st.integers(3, 100000))
    @settings(max_examples=200, deadline=None)
    def test_mu_no_overlap_is_maximal(self, m):
        mu = mu_no_overlap(m)
        assert mu * mu + 2 * mu <= m
        assert (mu + 1) ** 2 + 2 * (mu + 1) > m

    @given(m=st.integers(5, 100000))
    @settings(max_examples=100, deadline=None)
    def test_layout_ordering(self, m):
        """More buffer overhead => smaller tile."""
        assert mu_overlap(m) <= mu_no_overlap(m)
        assert overlapped_toledo_split(m) <= toledo_split(m)

    def test_toledo_split_thirds(self):
        # m=10000: each third is 3333 blocks; side 57.
        assert toledo_split(10000) == 57
        assert overlapped_toledo_split(10000) == 44

    def test_too_small_memory_raises(self):
        with pytest.raises((ValueError, TypeError)):
            max_reuse_mu(2)
        with pytest.raises(ValueError):
            mu_overlap(4)
        with pytest.raises(ValueError):
            toledo_split(2)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            max_reuse_mu(21.5)


class TestMemoryLayoutObjects:
    def test_max_reuse_layout(self):
        lay = MemoryLayout.max_reuse(21)
        assert (lay.a_buffers, lay.b_buffers, lay.c_buffers) == (1, 4, 16)
        assert lay.total == 21
        assert lay.fits(21)
        assert not lay.fits(20)

    def test_overlapped_layout(self):
        lay = MemoryLayout.overlapped(45)  # mu=5: 25 + 20 = 45
        assert lay.mu == 5
        assert lay.total == 45
        assert lay.overlap

    def test_single_generation_layout(self):
        lay = MemoryLayout.single_generation(24)  # mu=4: 16+8
        assert lay.mu == 4
        assert not lay.overlap
        assert lay.total == 24


class TestBounds:
    def test_hong_kung_symmetry(self):
        assert hong_kung_bound(4, 4, 4) == pytest.approx(16.0)

    def test_loomis_whitney_value(self):
        assert loomis_whitney_bound(4, 9, 16) == pytest.approx(24.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            hong_kung_bound(-1, 1, 1)
        with pytest.raises(ValueError):
            loomis_whitney_bound(1, -1, 1)

    @given(
        na=st.floats(0.1, 100),
        nb=st.floats(0.1, 100),
        nc=st.floats(0.1, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_loomis_whitney_tighter_or_equal(self, na, nb, nc):
        """LW is at most a constant above HK; at the balanced point it is
        strictly tighter (sqrt(abc) <= min((a+b)sqrt(c), ...))/2 ... the
        relation the paper exploits is LW <= HK."""
        assert loomis_whitney_bound(na, nb, nc) <= hong_kung_bound(na, nb, nc) + 1e-9

    def test_ccr_formula_values(self):
        # m=21, mu=4, t=4: 2/4 + 2/4 = 1.
        assert ccr_max_reuse(21, 4) == pytest.approx(1.0)
        assert ccr_max_reuse_asymptotic(21) == pytest.approx(0.5)

    def test_lower_bound_closed_forms(self):
        m = 100
        assert ccr_lower_bound_loomis_whitney(m) == pytest.approx(math.sqrt(27 / 800))
        assert ccr_lower_bound_toledo_refined(m) == pytest.approx(math.sqrt(27 / 3200))
        assert ccr_lower_bound_irony_toledo_tiskin(m) == pytest.approx(
            math.sqrt(1 / 800)
        )

    def test_bound_improvement_factor(self):
        """The paper's new bound improves the previous best by sqrt(27)."""
        m = 1234
        ratio = ccr_lower_bound_loomis_whitney(m) / ccr_lower_bound_irony_toledo_tiskin(m)
        assert ratio == pytest.approx(math.sqrt(27.0))

    @given(m=st.integers(3, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_achieved_ccr_above_lower_bound(self, m):
        """Soundness: max-re-use never beats the lower bound."""
        assert ccr_max_reuse_asymptotic(m) >= ccr_lower_bound_loomis_whitney(m)

    def test_gap_approaches_sqrt_32_27(self):
        m = 10**8
        gap = ccr_max_reuse_asymptotic(m) / ccr_lower_bound_loomis_whitney(m)
        assert gap == pytest.approx(math.sqrt(32.0 / 27.0), rel=1e-3)

    @given(t=st.integers(1, 10**6), m=st.integers(3, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_finite_t_ccr_decreasing_in_t(self, t, m):
        assert ccr_max_reuse(m, t) >= ccr_max_reuse_asymptotic(m)


class TestKBoundOptimisation:
    def test_closed_forms(self):
        k_hk, point = solve_k_bound("hong-kung")
        assert k_hk == pytest.approx(math.sqrt(32 / 27))
        assert point == (2 / 3, 2 / 3, 2 / 3)
        k_lw, _ = solve_k_bound("loomis-whitney")
        assert k_lw == pytest.approx(math.sqrt(8 / 27))

    def test_numeric_matches_closed_form_lw(self):
        k_num, point = solve_k_bound("loomis-whitney", method="numeric")
        k_cf, _ = solve_k_bound("loomis-whitney")
        assert k_num == pytest.approx(k_cf, rel=1e-4)
        assert sum(point) == pytest.approx(2.0, rel=1e-3)

    def test_numeric_matches_closed_form_hk(self):
        k_num, _ = solve_k_bound("hong-kung", method="numeric")
        k_cf, _ = solve_k_bound("hong-kung")
        assert k_num == pytest.approx(k_cf, rel=1e-4)

    def test_unknown_lemma_rejected(self):
        with pytest.raises(ValueError):
            solve_k_bound("strassen")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            solve_k_bound("hong-kung", method="magic")
