"""Tests for the unified sweep runner (repro.runner).

Covers the ISSUE-1 acceptance surface: cache hit/miss semantics, hash
stability across processes, parallel-vs-serial result equality,
corrupted-cache-entry recovery, and the guarantee that a warm cache
never re-invokes the per-point function.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import campaign_for, fig10
from repro.runner import (
    Campaign,
    ResultCache,
    Sweep,
    cached_call,
    canonical_params,
    code_version,
    point_key,
    run_campaign,
    run_sweep,
)


def _counting_point(params):
    """Pure point fn that tallies invocations in an append-only file."""
    with open(params["counter"], "a") as fh:
        fh.write("x")
    return {"x": params["x"], "square": params["x"] ** 2}


def _calls(counter: Path) -> int:
    return len(counter.read_text()) if counter.exists() else 0


def _counting_sweep(tmp_path: Path, n: int = 4, name: str = "counting") -> Sweep:
    tmp_path.mkdir(parents=True, exist_ok=True)
    counter = tmp_path / "calls.txt"
    points = tuple({"x": x, "counter": str(counter)} for x in range(n))
    return Sweep(name=name, run_fn=_counting_point, points=points)


class TestHashing:
    def test_key_is_deterministic(self):
        params = {"a": 1, "b": [1, 2], "c": "x"}
        assert point_key("e", params, code="c0") == point_key("e", params, code="c0")

    def test_key_ignores_dict_order(self):
        assert point_key("e", {"a": 1, "b": 2}, code="c0") == point_key(
            "e", {"b": 2, "a": 1}, code="c0"
        )

    def test_key_separates_experiments_params_code(self):
        base = point_key("e", {"a": 1}, code="c0")
        assert point_key("f", {"a": 1}, code="c0") != base
        assert point_key("e", {"a": 2}, code="c0") != base
        assert point_key("e", {"a": 1}, code="c1") != base

    def test_canonical_params_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_params({"fn": lambda: None})

    def test_code_version_is_short_hex(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)

    def test_key_stable_across_processes(self):
        """sha256 of canonical JSON must not depend on the process."""
        params = {"d": 2.5, "c": "x", "b": [1, 2], "a": 1}
        expected = point_key("exp", params, code="deadbeef")
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "from repro.runner.hashing import point_key;"
            "print(point_key('exp',"
            " {'a': 1, 'b': [1, 2], 'c': 'x', 'd': 2.5}, code='deadbeef'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == expected


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k1", {"a": 1}, [{"row": 1}])
        value, hit = cache.get("s", "k1")
        assert hit and value == [{"row": 1}]

    def test_missing_is_miss(self, tmp_path):
        _, hit = ResultCache(tmp_path).get("s", "nope")
        assert not hit

    def test_corrupted_entry_is_healed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k1", {}, {"ok": True})
        path = cache.path_for("s", "k1")
        path.write_text("{truncated garbage")
        _, hit = cache.get("s", "k1")
        assert not hit
        assert not path.exists()  # healed: bad entry removed

    def test_key_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k1", {}, {"ok": True})
        entry = json.loads(cache.path_for("s", "k1").read_text())
        entry["key"] = "tampered"
        cache.path_for("s", "k1").write_text(json.dumps(entry))
        _, hit = cache.get("s", "k1")
        assert not hit

    def test_put_is_atomic_no_temp_left(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k1", {}, list(range(100)))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_put_rejects_unserializable(self, tmp_path):
        with pytest.raises(TypeError):
            ResultCache(tmp_path).put("s", "k1", {}, object())

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s1", "k1", {}, 1)
        cache.put("s2", "k2", {}, 2)
        stats = cache.stats()
        assert stats.entries == 2 and stats.sweeps == ("s1", "s2")
        assert cache.clear("s1") == 1
        assert cache.stats().entries == 1
        assert cache.clear() == 1
        assert cache.stats().entries == 0


class TestRunSweep:
    def test_cold_run_computes_every_point(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        result = run_sweep(sweep, cache=ResultCache(tmp_path / "cache"))
        assert result.misses == 4 and result.hits == 0
        assert _calls(tmp_path / "calls.txt") == 4
        assert [r["square"] for r in result.rows] == [0, 1, 4, 9]

    def test_warm_run_never_calls_point_fn(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(sweep, cache=cache)
        warm = run_sweep(sweep, cache=cache)
        assert warm.hits == 4 and warm.misses == 0
        assert _calls(tmp_path / "calls.txt") == 4  # unchanged: zero re-runs
        assert warm.rows == cold.rows

    def test_no_cache_always_computes(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        run_sweep(sweep)
        run_sweep(sweep)
        assert _calls(tmp_path / "calls.txt") == 8

    def test_code_version_change_invalidates(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        run_sweep(sweep, cache=cache, code="v1")
        second = run_sweep(sweep, cache=cache, code="v2")
        assert second.misses == 4
        assert _calls(tmp_path / "calls.txt") == 8

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_sweep(_counting_sweep(tmp_path / "a", n=6))
        parallel = run_sweep(_counting_sweep(tmp_path / "b", n=6), jobs=3)
        strip = lambda rows: json.dumps(rows)  # noqa: E731
        assert strip(parallel.rows) == strip(serial.rows)
        assert _calls(tmp_path / "b" / "calls.txt") == 6

    def test_parallel_fills_cache_for_serial(self, tmp_path):
        sweep = _counting_sweep(tmp_path, n=6)
        cache = ResultCache(tmp_path / "cache")
        run_sweep(sweep, jobs=3, cache=cache)
        warm = run_sweep(sweep, jobs=1, cache=cache)
        assert warm.hits == 6
        assert _calls(tmp_path / "calls.txt") == 6

    def test_corrupted_entry_recovery_end_to_end(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(sweep, cache=cache)
        victim = cache.path_for(sweep.name, cold.outcomes[2].key)
        victim.write_text("not json at all")
        healed = run_sweep(sweep, cache=cache)
        assert healed.hits == 3 and healed.misses == 1
        assert healed.rows == cold.rows
        _, hit = cache.get(sweep.name, cold.outcomes[2].key)
        assert hit  # the repaired entry is valid again

    def test_progress_streams_in_point_order(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        run_sweep(sweep, cache=cache)
        events = []
        run_sweep(sweep, cache=cache, progress=events.append)
        assert [e.index for e in events] == [0, 1, 2, 3]
        assert all(e.cached and e.total == 4 for e in events)

    def test_campaign_totals(self, tmp_path):
        campaign = Campaign(
            "both",
            (
                _counting_sweep(tmp_path / "a", n=2, name="a"),
                _counting_sweep(tmp_path / "b", n=3, name="b"),
            ),
        )
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(campaign, cache=cache)
        assert cold.misses == 5 and cold.hits == 0
        warm = run_campaign(campaign, cache=cache)
        assert warm.hits == 5 and warm.misses == 0
        assert list(warm.tables) == ["a", "b"]


class TestFig10Acceptance:
    """ISSUE 1 acceptance: parallel == serial bytes; warm cache = 0 runs."""

    def test_parallel_cached_run_matches_serial_and_warms(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = fig10.sweep(scale=8)
        serial_rows = fig10.run(scale=8)

        cold = run_sweep(sweep, jobs=4, cache=cache)
        assert json.dumps(cold.rows) == json.dumps(serial_rows)
        assert cold.misses == len(sweep.points)

        def forbidden(params):
            raise AssertionError("per-point function called on a warm cache")

        warm_sweep = Sweep(
            name=sweep.name,
            run_fn=forbidden,
            points=sweep.points,
            aggregate=sweep.aggregate,
            title=sweep.title,
        )
        warm = run_sweep(warm_sweep, jobs=4, cache=cache)
        assert warm.hits == len(sweep.points) and warm.misses == 0
        assert json.dumps(warm.rows) == json.dumps(serial_rows)


class TestCachedCall:
    def test_memoizes(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []
        fn = lambda x: (calls.append(x), x * 2)[1]  # noqa: E731
        assert cached_call("t", fn, 21, cache=cache) == 42
        assert cached_call("t", fn, 21, cache=cache) == 42
        assert calls == [21]

    def test_unserializable_results_pass_through(self, tmp_path):
        cache = ResultCache(tmp_path)
        fn = lambda: object()  # noqa: E731
        first = cached_call("t", fn, cache=cache)
        second = cached_call("t", fn, cache=cache)
        assert first is not second  # computed each time, never cached
        assert cache.stats().entries == 0

    def test_disable_env_bypasses_store(self, tmp_path, monkeypatch):
        """$REPRO_CACHE_DISABLE (the CLI's --no-cache export) must keep
        default-store cached_call from reading or writing anything."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        calls = []
        fn = lambda x: (calls.append(x), x * 2)[1]  # noqa: E731
        assert cached_call("t", fn, 21) == 42
        assert cached_call("t", fn, 21) == 42
        assert calls == [21, 21]  # computed twice
        assert ResultCache(tmp_path).stats().entries == 0  # nothing written

    def test_disable_env_off_spellings_keep_cache_on(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []
        fn = lambda x: (calls.append(x), x * 2)[1]  # noqa: E731
        for off in ("0", "false", "no", ""):
            monkeypatch.setenv("REPRO_CACHE_DISABLE", off)
            assert cached_call("t", fn, 21) == 42
        assert calls == [21]  # first call cached, the rest were hits

    def test_explicit_cache_wins_over_disable_env(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        cache = ResultCache(tmp_path)
        calls = []
        fn = lambda x: (calls.append(x), x * 2)[1]  # noqa: E731
        assert cached_call("t", fn, 21, cache=cache) == 42
        assert cached_call("t", fn, 21, cache=cache) == 42
        assert calls == [21]  # memoized: the explicit store is used

    def test_unwritable_store_degrades_to_compute(self, tmp_path, monkeypatch):
        """A read-only shared store must not crash point functions that
        memoize through cached_call — compute-without-caching instead."""

        def no_put(self, *a, **k):
            raise PermissionError("read-only store")

        monkeypatch.setattr(ResultCache, "put", no_put)
        cache = ResultCache(tmp_path)
        calls = []
        fn = lambda x: (calls.append(x), x * 2)[1]  # noqa: E731
        assert cached_call("t", fn, 21, cache=cache) == 42
        assert cached_call("t", fn, 21, cache=cache) == 42
        assert calls == [21, 21]  # computed each time, never crashed


class TestCampaignRegistry:
    def test_every_experiment_has_a_campaign(self):
        from repro.experiments import ALL_EXPERIMENTS

        for name in ALL_EXPERIMENTS:
            campaign = campaign_for(name)
            assert campaign.sweeps, name
            for sweep in campaign.sweeps:
                assert sweep.points, f"{name}:{sweep.name}"
                for params in sweep.points:
                    json.dumps(params)  # points must be JSON-able data

    def test_scale_forwarded_where_supported(self):
        scaled = campaign_for("fig10", scale=8)
        assert all("/8" in p["workload"] for p in scaled.sweeps[0].points)
        # fig04 has no scale parameter; passing one must not break it.
        assert campaign_for("fig04", scale=8).sweeps


class TestSweepCLI:
    def test_sweep_unknown_name_exits_2(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["sweep", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_sweep_runs_and_warms(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        argv = ["sweep", "maxreuse", "--cache-dir", str(tmp_path), "--quiet"]
        assert cli_main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "maxreuse: 0 cached, 1 computed" in cold_out
        assert cli_main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "maxreuse: 1 cached, 0 computed" in warm_out

    def test_sweep_no_cache_writes_nothing(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        argv = [
            "sweep", "maxreuse", "--cache-dir", str(tmp_path),
            "--no-cache", "--quiet",
        ]
        assert cli_main(argv) == 0
        assert "cache disabled" in capsys.readouterr().out
        assert not list(tmp_path.rglob("*.json"))

    def test_cache_info_and_clear(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        ResultCache(tmp_path).put("s", "k", {}, 1)
        assert cli_main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries   : 1" in capsys.readouterr().out
        assert cli_main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert ResultCache(tmp_path).stats().entries == 0


class TestCodeVersionFreshness:
    """code_version must track source edits within one process."""

    def _fake_package(self, tmp_path: Path) -> Path:
        root = tmp_path / "pkg"
        root.mkdir(parents=True)
        (root / "a.py").write_text("x = 1\n")
        (root / "sub").mkdir()
        (root / "sub" / "b.py").write_text("y = 2\n")
        return root

    def test_edit_changes_version_in_process(self, tmp_path):
        """Regression: a process-lifetime lru_cache once pinned the first
        digest forever, serving stale cached sweep results to long-lived
        sessions (REPL/Jupyter) that edit code and re-run."""
        root = self._fake_package(tmp_path)
        before = code_version(root)
        assert code_version(root) == before  # snapshot-memoized
        (root / "a.py").write_text("x = 10  # edited\n")
        after = code_version(root)
        assert after != before
        assert code_version(root) == after

    def test_new_and_deleted_files_change_version(self, tmp_path):
        root = self._fake_package(tmp_path)
        v0 = code_version(root)
        (root / "c.py").write_text("z = 3\n")
        v1 = code_version(root)
        assert v1 != v0
        (root / "c.py").unlink()
        assert code_version(root) == v0  # back to the original source set

    def test_default_root_is_stable_within_run(self):
        assert code_version() == code_version()

    def test_run_sweep_picks_up_edits_between_runs(self, tmp_path):
        """End to end: editing the (fake) package between two sweeps of
        the same process yields different cache keys — the second run
        recomputes instead of serving the first run's entries."""
        root = self._fake_package(tmp_path / "src")
        cache = ResultCache(tmp_path / "cache")
        sweep = _counting_sweep(tmp_path / "w", n=2)
        counter = tmp_path / "w" / "calls.txt"
        run_sweep(sweep, cache=cache, code=code_version(root))
        assert _calls(counter) == 2
        run_sweep(sweep, cache=cache, code=code_version(root))
        assert _calls(counter) == 2  # warm
        (root / "a.py").write_text("x = 99\n")
        run_sweep(sweep, cache=cache, code=code_version(root))
        assert _calls(counter) == 4  # invalidated by the edit


def _seed_flat(cache, sweep, key, value):
    """Plant a pre-sharding flat-layout entry (no journal record) —
    the shape of a cache directory written before the sharded layout."""
    path = cache.flat_path_for(sweep, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "format": 1, "key": key, "sweep": sweep, "params": {},
        "created": 0.0, "result": value,
    }))
    return path


def _journal_lines(cache, sweep):
    """Every journal line of a sweep, across the legacy and shard layers."""
    lines = []
    paths = [cache.manifest_path(sweep)]
    paths += sorted((cache.root / sweep).glob("*/MANIFEST.jsonl"))
    for path in paths:
        if path.exists():
            lines.extend(path.read_text().splitlines())
    return lines


class TestManifest:
    """The per-sweep append-only journal that indexes the cache."""

    def test_put_appends_and_stats_fold(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put("s", f"k{i}", {"i": i}, i)
        manifest = cache.manifest("s")
        assert sorted(manifest) == ["k0", "k1", "k2"]
        for key, size in manifest.items():
            assert size == cache.path_for("s", key).stat().st_size
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.bytes == sum(manifest.values())
        assert stats.sweeps == ("s",)

    def test_stats_is_an_index_read(self, tmp_path, monkeypatch):
        """Acceptance: stats() never globs or stats entry files once the
        manifests exist — O(sweeps), not O(entries)."""
        cache = ResultCache(tmp_path)
        cache.put("s1", "k1", {"a": 1}, [1])
        cache.put("s2", "k2", {"a": 2}, [2])

        def forbidden(self, *a, **k):
            raise AssertionError("stats() touched the entry files")

        monkeypatch.setattr(ResultCache, "entries", forbidden)
        monkeypatch.setattr(ResultCache, "rebuild_manifest", forbidden)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.sweeps == ("s1", "s2")
        assert stats.bytes > 0

    def test_legacy_directory_is_rebuilt(self, tmp_path):
        """A pre-manifest cache (flat entry files, no journal) is
        indexed on first read — the entry files are the ground truth."""
        cache = ResultCache(tmp_path)
        _seed_flat(cache, "s", "k0", 0)
        _seed_flat(cache, "s", "k1", 1)
        assert cache.stats().entries == 2
        assert cache.manifest_path("s").exists()  # healed

    def test_put_into_legacy_directory_indexes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        _seed_flat(cache, "s", "k0", 0)
        cache.put("s", "k1", {}, 1)  # sharded write next to flat legacy
        assert sorted(cache.manifest("s")) == ["k0", "k1"]
        assert cache.stats().entries == 2
        value, hit = cache.get("s", "k0")  # served from the flat layer
        assert hit and value == 0

    def test_sharded_rewrite_retires_flat_duplicate(self, tmp_path):
        """A put of a key that also exists flat supersedes the flat copy
        — one readable location per key, and the index agrees."""
        cache = ResultCache(tmp_path)
        _seed_flat(cache, "s", "k0", "old")
        assert cache.manifest_keys("s") == {"k0"}  # indexes the flat copy
        cache.put("s", "k0", {}, "new")
        assert not cache.flat_path_for("s", "k0").exists()
        value, hit = cache.get("s", "k0")
        assert hit and value == "new"
        assert cache.manifest_keys("s") == {"k0"}
        assert cache.stats().entries == 1

    def test_entries_shard_by_key_prefix(self, tmp_path):
        """Layout acceptance: entries land in ``<sweep>/<key[:2]>/`` with
        a per-shard journal, bounding every directory's fan-out."""
        cache = ResultCache(tmp_path)
        cache.put("s", "abcd", {}, 1)
        cache.put("s", "abxy", {}, 2)
        cache.put("s", "cdef", {}, 3)
        assert cache.path_for("s", "abcd") == tmp_path / "s" / "ab" / "abcd.json"
        assert (tmp_path / "s" / "ab" / "MANIFEST.jsonl").exists()
        assert (tmp_path / "s" / "cd" / "MANIFEST.jsonl").exists()
        assert sorted(cache.manifest("s")) == ["abcd", "abxy", "cdef"]
        assert dict(cache.stats().shards_per_sweep) == {"s": 2}

    def test_corrupt_manifest_is_rebuilt(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put("s", f"k{i}", {"i": i}, i)
        cache.manifest_path("s").write_text('{"op":"put","key":"k0"}\ntorn{')
        assert cache.stats().entries == 3  # rebuilt from entry files

    def test_healed_entry_records_a_del(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k0", {}, 0)
        cache.put("s", "k1", {}, 1)
        cache.path_for("s", "k0").write_text("not json")
        _, hit = cache.get("s", "k0")  # heals: unlinks + journals the del
        assert not hit
        assert sorted(cache.manifest_keys("s")) == ["k1"]
        assert cache.stats().entries == 1

    def test_manifest_keys_tolerate_missing_sweep(self, tmp_path):
        assert ResultCache(tmp_path).manifest_keys("nope") == set()

    def test_concurrent_writers_share_one_journal(self, tmp_path):
        """Two cache handles appending to the same sweep must both land."""
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        a.put("s", "ka", {}, 1)
        b.put("s", "kb", {}, 2)
        assert sorted(a.manifest_keys("s")) == ["ka", "kb"]

    def test_clear_counts_do_not_stat(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k", {"a": 1}, 1)
        assert cache.clear() == 1
        assert cache.stats().entries == 0

    def test_readonly_cache_still_serves_index_reads(
        self, tmp_path, monkeypatch
    ):
        """A legacy directory on a read-only mount: the rebuild cannot
        persist, but stats/manifest must still derive correct numbers
        instead of crashing (the container runs as root, so this is
        simulated by failing the temp-file creation)."""
        import repro.runner.cache as cache_mod

        cache = ResultCache(tmp_path)
        _seed_flat(cache, "s", "k0", 0)  # legacy flat layer, no index
        cache.put("s", "k1", {}, 1)
        cache.shard_manifest_path("s", "k1").unlink()  # torn shard index

        def no_write(*a, **k):
            raise OSError("read-only file system")

        monkeypatch.setattr(cache_mod.tempfile, "mkstemp", no_write)
        stats = cache.stats()
        assert stats.entries == 2 and stats.sweeps == ("s",)
        assert sorted(cache.manifest_keys("s")) == ["k0", "k1"]
        assert not cache.manifest_path("s").exists()  # nothing persisted
        assert not cache.shard_manifest_path("s", "k1").exists()

    def test_put_survives_unwritable_manifest(self, tmp_path, monkeypatch):
        """Entry files are the ground truth: a failing journal append
        must not fail the put, and the index self-heals later."""
        cache = ResultCache(tmp_path)

        def no_append(self, sweep, record, prefix=None):
            raise OSError("append refused")

        monkeypatch.setattr(ResultCache, "_append_manifest", no_append)
        cache.put("s", "k0", {}, {"ok": True})
        value, hit = cache.get("s", "k0")
        assert hit and value == {"ok": True}
        monkeypatch.undo()
        assert cache.stats().entries == 1  # rebuilt from the entry file


class TestResume:
    """run_sweep(resume=True): manifest-driven skip of existing points."""

    def test_resume_skips_listed_points(self, tmp_path):
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        run_sweep(sweep, cache=cache, code="v1")
        assert _calls(tmp_path / "calls.txt") == 4
        resumed = run_sweep(sweep, cache=cache, code="v1", resume=True)
        assert resumed.hits == 4 and resumed.misses == 0
        assert _calls(tmp_path / "calls.txt") == 4  # nothing recomputed

    def test_resume_after_partial_run(self, tmp_path):
        """The killed-sweep scenario: only some entries exist; resume
        computes exactly the rest and the rows match a full run."""
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        full = run_sweep(sweep, cache=ResultCache(tmp_path / "ref"), code="v1")
        # Simulate the kill: seed the cache with only the first 2 points.
        partial = Sweep(name=sweep.name, run_fn=sweep.run_fn,
                        points=sweep.points[:2])
        run_sweep(partial, cache=cache, code="v1")
        calls_before = _calls(tmp_path / "calls.txt")
        resumed = run_sweep(sweep, cache=cache, code="v1", resume=True)
        assert resumed.hits == 2 and resumed.misses == 2
        assert _calls(tmp_path / "calls.txt") == calls_before + 2
        assert json.dumps(resumed.rows) == json.dumps(full.rows)

    def test_resume_validates_stale_manifest_listings(self, tmp_path):
        """A listed key whose entry file vanished is recomputed, not
        trusted — the manifest is an index, never the data."""
        sweep = _counting_sweep(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(sweep, cache=cache, code="v1")
        victim = cache.path_for(sweep.name, cold.outcomes[1].key)
        victim.unlink()  # manifest still lists it
        resumed = run_sweep(sweep, cache=cache, code="v1", resume=True)
        assert resumed.hits == 3 and resumed.misses == 1
        assert json.dumps(resumed.rows) == json.dumps(cold.rows)

    def test_resume_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="requires a cache"):
            run_sweep(_counting_sweep(tmp_path), resume=True)


class TestManifestCompaction:
    """Folding dead journal history away, crash-safely (ISSUE 8)."""

    @staticmethod
    def _churn(cache, n_keys=2, rewrites=12):
        for _ in range(rewrites):
            for i in range(n_keys):
                cache.put("s", f"k{i}", {"i": i}, i)

    def test_compact_drops_dead_records_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._churn(cache)
        lines_before = _journal_lines(cache, "s")
        dropped = cache.compact("s")
        assert dropped == len(lines_before) - 2
        lines = _journal_lines(cache, "s")
        assert len(lines) == 2  # exactly the fold: one put per live key
        assert sorted(cache.manifest("s")) == ["k0", "k1"]
        for i in range(2):
            value, hit = cache.get("s", f"k{i}")
            assert hit and value == i

    def test_compact_noop_when_nothing_dead(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k0", {}, 0)
        before = _journal_lines(cache, "s")
        assert cache.compact("s") == 0
        assert _journal_lines(cache, "s") == before

    def test_compaction_preserves_quarantine_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._churn(cache)
        cache.quarantine("s", "bad", {"x": -1}, "permanent failure")
        assert cache.compact("s") > 0
        assert "bad" in cache.quarantined("s")

    def test_manifest_read_auto_compacts_churned_journal(self, tmp_path):
        """Opportunistic compaction: a plain index read rewrites a
        journal whose dead history outnumbers its live entries."""
        cache = ResultCache(tmp_path)
        self._churn(cache)
        assert len(_journal_lines(cache, "s")) > 2
        assert sorted(cache.manifest("s")) == ["k0", "k1"]  # triggers it
        assert len(_journal_lines(cache, "s")) == 2

    def test_small_journals_never_churn(self, tmp_path):
        """The floor: a handful of dead records is not worth a rewrite."""
        cache = ResultCache(tmp_path)
        cache.put("s", "k0", {}, 0)
        cache.put("s", "k0", {}, 0)  # one dead record
        lines = _journal_lines(cache, "s")
        cache.manifest("s")
        assert _journal_lines(cache, "s") == lines

    def test_torn_compaction_leaves_manifest_intact(
        self, tmp_path, monkeypatch
    ):
        """Crash between writing the compacted temp file and the rename:
        the old journal must survive untouched and no temp debris leak
        into the fold."""
        import repro.runner.cache as cache_mod

        cache = ResultCache(tmp_path)
        self._churn(cache)
        before = _journal_lines(cache, "s")

        def torn_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(cache_mod.os, "replace", torn_replace)
        assert cache.compact("s") == 0  # best-effort: reports nothing done
        monkeypatch.undo()
        assert _journal_lines(cache, "s") == before
        assert not list((tmp_path / "s").rglob("*.tmp"))
        assert cache.compact("s") > 0  # the retry completes the fold
        assert sorted(cache.manifest_keys("s")) == ["k0", "k1"]


class TestBulkIO:
    """put_many/get_many: a resolved batch costs one journal append
    and one fsync per shard touched, never one per point."""

    ENTRIES = [
        ("ab0000", {"i": 0}, 0),
        ("ab0001", {"i": 1}, 1),
        ("ab0002", {"i": 2}, 2),
        ("cd0000", {"i": 3}, 3),
        ("cd0001", {"i": 4}, 4),
    ]

    def test_put_many_matches_scalar_puts(self, tmp_path):
        scalar, bulk = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        for key, params, value in self.ENTRIES:
            scalar.put("s", key, params, value)
        assert bulk.put_many("s", self.ENTRIES) == len(self.ENTRIES)
        # Entry sizes can differ by a byte (timestamp width), so compare
        # the indexed key sets, not the byte column.
        assert sorted(scalar.manifest("s")) == sorted(bulk.manifest("s"))
        for key, _, value in self.ENTRIES:
            got, hit = bulk.get("s", key)
            assert hit and got == value

    def test_put_many_one_append_one_fsync_per_shard(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        appends = []
        original = ResultCache._append_lines

        def counting(self, path, lines, fsync=False):
            appends.append((path.name, path.parent.name, fsync))
            return original(self, path, lines, fsync)

        monkeypatch.setattr(ResultCache, "_append_lines", counting)
        cache.put_many("s", self.ENTRIES, batch=True)
        # 5 entries across 2 shards: exactly 2 journal writes, fsynced.
        assert sorted(appends) == [
            ("MANIFEST.jsonl", "ab", True),
            ("MANIFEST.jsonl", "cd", True),
        ]
        assert sorted(cache.manifest_keys("s")) == sorted(
            k for k, _, _ in self.ENTRIES
        )

    def test_put_many_stamps_batch_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_many("s", self.ENTRIES, batch=True)
        assert cache.stats().batch_entries == len(self.ENTRIES)

    def test_get_many_returns_hits_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_many("s", self.ENTRIES)
        keys = [k for k, _, _ in self.ENTRIES]
        hits = cache.get_many("s", keys + ["ab9999", "ee0000"])
        assert hits == {k: v for k, _, v in self.ENTRIES}

    def test_stats_fold_is_memoized_on_snapshot(self, tmp_path, monkeypatch):
        """Repeated index reads of an unchanged journal cost one stat,
        not a re-read+re-fold (the code_version() trick)."""
        import repro.runner.cache as cache_mod

        cache = ResultCache(tmp_path)
        cache.put_many("s", self.ENTRIES)
        first = cache.stats()

        reads = []
        original = Path.read_text

        def counting(self, *a, **k):
            reads.append(self.name)
            return original(self, *a, **k)

        monkeypatch.setattr(cache_mod.Path, "read_text", counting)
        assert cache.stats() == first
        assert "MANIFEST.jsonl" not in reads  # folds served from memo
        monkeypatch.undo()

        # Any write invalidates: the next read refolds and sees it.
        cache.put("s", "ab0077", {}, 7)
        assert cache.stats().entries == first.entries + 1


def _flatten_to_legacy(cache, sweep):
    """Rewrite a sharded sweep directory into the pre-sharding flat
    layout (entries at the top level, one legacy MANIFEST.jsonl) —
    the shape ``cache migrate`` exists to consume."""
    root = cache.root / sweep
    lines = []
    for manifest in sorted(root.glob("*/MANIFEST.jsonl")):
        lines.append(manifest.read_text())
        manifest.unlink()
    for entry in sorted(root.glob("*/*.json")):
        os.replace(entry, root / entry.name)
    for shard in [c for c in root.iterdir() if c.is_dir()]:
        shard.rmdir()
    (root / "MANIFEST.jsonl").write_text("".join(lines))


class TestMigrate:
    """cache migrate: flat legacy sweeps move wholesale into shards."""

    def _legacy(self, tmp_path, n=5):
        cache = ResultCache(tmp_path)
        for i in range(n):
            cache.put("s", f"{i:02d}beef", {"i": i}, i)
        _flatten_to_legacy(cache, "s")
        return ResultCache(tmp_path)  # fresh handle: no stale memos

    def test_migrate_moves_entries_and_retires_manifest(self, tmp_path):
        cache = self._legacy(tmp_path)
        before = cache.manifest("s")
        assert cache.migrate("s") == {"s": 5}
        assert not list((tmp_path / "s").glob("*.json"))  # no flat entries
        assert not cache.manifest_path("s").exists()  # legacy journal gone
        fresh = ResultCache(tmp_path)
        assert fresh.manifest("s") == before
        for i in range(5):
            value, hit = fresh.get("s", f"{i:02d}beef")
            assert hit and value == i
            assert fresh.path_for("s", f"{i:02d}beef").is_file()

    def test_migrate_is_idempotent(self, tmp_path):
        cache = self._legacy(tmp_path)
        assert cache.migrate("s") == {"s": 5}
        assert ResultCache(tmp_path).migrate("s") == {}  # nothing flat left
        assert len(ResultCache(tmp_path).manifest("s")) == 5

    def test_migrate_preserves_quarantine_and_batch_stamps(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "aa0001", {"i": 1}, 1, batch=True)
        cache.put("s", "bb0002", {"i": 2}, 2)
        cache.quarantine("s", "cc0003", {"i": 3}, "permanent failure")
        _flatten_to_legacy(cache, "s")
        cache = ResultCache(tmp_path)
        assert cache.migrate("s") == {"s": 2}  # quarantine re-homes, moves 0
        fresh = ResultCache(tmp_path)
        assert set(fresh.quarantined("s")) == {"cc0003"}
        stats = fresh.stats()
        assert stats.entries == 2 and stats.quarantined == 1
        assert stats.batch_entries == 1  # provenance stamp survived

    def test_migrate_tolerates_sharded_rewrite_of_same_key(self, tmp_path):
        """A crashed migration followed by new writes: the sharded copy
        wins, the stale flat duplicate is dropped, not resurrected."""
        cache = self._legacy(tmp_path)
        cache = ResultCache(tmp_path)
        cache.put("s", "00beef", {"i": 0}, "newer")  # shards + retires flat
        _seed_flat(cache, "s", "00beef", "stale")  # simulate the crash relic
        ResultCache(tmp_path).migrate("s")
        value, hit = ResultCache(tmp_path).get("s", "00beef")
        assert hit and value == "newer"

    def test_quarantine_then_migrate_then_resume(self, tmp_path):
        """The ISSUE regression: a legacy flat sweep with quarantine
        records is migrated, and a --resume run still skips the
        quarantined point and recomputes nothing."""
        from repro.runner import RetryPolicy

        sweep = _counting_sweep(tmp_path)
        bad = dict(sweep.points[2])
        bad["boom"] = True
        points = (*sweep.points[:2], bad, *sweep.points[3:])
        sweep = Sweep(name=sweep.name, run_fn=_flaky_point, points=points)
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(
            sweep, cache=cache, code="v", on_error="keep",
            retry=RetryPolicy(retries=1, backoff=0.0),
        )
        assert first.errors == 1
        assert len(cache.quarantined(sweep.name)) == 1
        calls = _calls(tmp_path / "calls.txt")

        _flatten_to_legacy(cache, sweep.name)
        legacy = ResultCache(tmp_path / "cache")
        assert len(legacy.quarantined(sweep.name)) == 1  # readable flat
        assert legacy.migrate(sweep.name) == {sweep.name: 3}

        resumed = run_sweep(
            sweep, cache=ResultCache(tmp_path / "cache"), code="v",
            resume=True, on_error="keep",
        )
        assert resumed.hits == 3 and resumed.quarantined == 1
        assert resumed.misses == 0
        assert _calls(tmp_path / "calls.txt") == calls  # nothing recomputed


def _flaky_point(params):
    """Counting point that fails permanently when stamped ``boom``."""
    with open(params["counter"], "a") as fh:
        fh.write("x")
    if params.get("boom"):
        raise RuntimeError("permanent failure")
    return {"x": params["x"], "square": params["x"] ** 2}
