"""Tests for the discrete-event simulation kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_clock_custom_start(self):
        assert Environment(5.0).now == 5.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(3.5)

        env.process(proc(env))
        env.run()
        assert env.now == 3.5

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time_stops_clock_there(self):
        env = Environment()

        def proc(env):
            yield env.timeout(10.0)

        env.process(proc(env))
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self):
        env = Environment()

        def proc(env):
            yield env.timeout(10.0)

        env.process(proc(env))
        env.run(until=8.0)
        with pytest.raises(SimulationError):
            env.run(until=2.0)

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestProcesses:
    def test_return_value_via_run_until(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return 42

        p = env.process(proc(env))
        assert env.run(until=p) == 42

    def test_process_is_event_with_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"
        assert p.ok

    def test_process_waits_for_process(self):
        env = Environment()
        order = []

        def child(env):
            yield env.timeout(2.0)
            order.append("child")
            return 7

        def parent(env):
            value = yield env.process(child(env))
            order.append("parent")
            return value + 1

        p = env.process(parent(env))
        env.run()
        assert order == ["child", "parent"]
        assert p.value == 8

    def test_sequential_timeouts_accumulate(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            yield env.timeout(3.0)

        env.process(proc(env))
        env.run()
        assert env.now == 6.0

    def test_exception_in_process_propagates_to_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        def waiter(env):
            with pytest.raises(ValueError, match="boom"):
                yield env.process(bad(env))
            return "caught"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught"

    def test_unhandled_process_exception_surfaces(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise RuntimeError("unseen")

        env.process(bad(env))
        with pytest.raises(RuntimeError, match="unseen"):
            env.run()

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_is_alive_lifecycle(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestDeterminism:
    def test_same_time_events_fire_in_scheduling_order(self):
        env = Environment()
        order = []

        def make(tag):
            def proc(env):
                yield env.timeout(1.0)
                order.append(tag)

            return proc

        for tag in "abcde":
            env.process(make(tag)(env))
        env.run()
        assert order == list("abcde")

    def test_two_runs_identical(self):
        def build():
            env = Environment()
            log = []

            def worker(env, tag, delay):
                yield env.timeout(delay)
                log.append((env.now, tag))
                yield env.timeout(delay)
                log.append((env.now, tag))

            for i, d in enumerate([1.0, 1.0, 0.5, 2.0]):
                env.process(worker(env, i, d))
            env.run()
            return log

        assert build() == build()


class TestEvents:
    def test_manual_succeed(self):
        env = Environment()
        ev = env.event()

        def trigger(env):
            yield env.timeout(2.0)
            ev.succeed("payload")

        def waiter(env):
            value = yield ev
            return (env.now, value)

        env.process(trigger(env))
        p = env.process(waiter(env))
        env.run()
        assert p.value == (2.0, "payload")

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_needs_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_all_of_collects_values(self):
        env = Environment()

        def proc(env, delay, val):
            yield env.timeout(delay)
            return val

        ps = [env.process(proc(env, d, d * 10)) for d in (3.0, 1.0, 2.0)]

        def waiter(env):
            values = yield env.all_of(ps)
            return (env.now, values)

        w = env.process(waiter(env))
        env.run()
        assert w.value == (3.0, [30.0, 10.0, 20.0])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()

        def waiter(env):
            yield env.all_of([])
            return env.now

        w = env.process(waiter(env))
        env.run()
        assert w.value == 0.0


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                return ("interrupted", exc.cause, env.now)

        def attacker(env, target):
            yield env.timeout(5.0)
            target.interrupt("stop")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == ("interrupted", "stop", 5.0)

    def test_interrupt_dead_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        def late(env, target):
            yield env.timeout(5.0)
            with pytest.raises(SimulationError):
                target.interrupt()

        q = env.process(quick(env))
        env.process(late(env, q))
        env.run()

    def test_interrupted_process_can_continue(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            return env.now

        def attacker(env, target):
            yield env.timeout(2.0)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == 3.0
