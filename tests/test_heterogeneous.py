"""Tests for Section 6 — steady state and incremental selection."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heterogeneous import (
    bandwidth_centric_steady_state,
    chunk_sizes,
    global_selection,
    local_selection,
    lookahead_selection,
    simulate_bandwidth_centric_feasibility,
    steady_state_linprog,
)
from repro.platform import Platform, table1_platform, table2_platform

BIG = (10**6, 10**7, 10**6)  # (r, s, t) horizon for asymptotic ratios


@st.composite
def small_platforms(draw):
    p = draw(st.integers(1, 5))
    c = [draw(st.floats(0.5, 8.0)) for _ in range(p)]
    w = [draw(st.floats(0.5, 8.0)) for _ in range(p)]
    m = [draw(st.integers(5, 400)) for _ in range(p)]
    return Platform.heterogeneous(c, w, m)


class TestSteadyState:
    def test_table2_throughput_is_25_over_18(self):
        ss = bandwidth_centric_steady_state(table2_platform())
        assert ss.throughput == pytest.approx(25.0 / 18.0)

    def test_table2_enrolls_everyone_p3_partially(self):
        ss = bandwidth_centric_steady_state(table2_platform())
        assert ss.enrolled == (1, 2, 3)
        assert ss.saturated_worker == 3
        assert ss.x[0] == pytest.approx(0.5)  # 1/w1
        assert ss.x[1] == pytest.approx(1.0 / 3.0)
        assert ss.x[2] == pytest.approx(5.0 / 9.0)  # bandwidth-limited

    def test_port_constraint_tight_when_saturated(self):
        plat = table2_platform()
        ss = bandwidth_centric_steady_state(plat)
        assert ss.port_utilisation(plat) == pytest.approx(1.0)

    def test_table1_enrolls_both_fully(self):
        ss = bandwidth_centric_steady_state(table1_platform())
        # 2c/(mu w) = 1/2 each: both fit exactly.
        assert ss.throughput == pytest.approx(0.5 + 0.025)
        assert ss.enrolled == (1, 2)

    @given(small_platforms())
    @settings(max_examples=60, deadline=None)
    def test_closed_form_matches_linprog(self, platform):
        greedy = bandwidth_centric_steady_state(platform)
        lp = steady_state_linprog(platform)
        assert greedy.throughput == pytest.approx(lp.throughput, rel=1e-6)

    @given(small_platforms())
    @settings(max_examples=60, deadline=None)
    def test_constraints_respected(self, platform):
        ss = bandwidth_centric_steady_state(platform)
        for xi, wk in zip(ss.x, platform.workers):
            assert xi <= 1.0 / wk.w + 1e-9
            assert xi >= 0.0
        assert ss.port_utilisation(platform) <= 1.0 + 1e-9

    def test_mu_length_validated(self):
        with pytest.raises(ValueError):
            bandwidth_centric_steady_state(table2_platform(), mu=[1, 2])


class TestFeasibility:
    def test_table1_p1_infeasible(self):
        """The Table 1 phenomenon: P1 cannot buffer enough."""
        rows = simulate_bandwidth_centric_feasibility(table1_platform())
        p1, p2 = rows
        assert not p1.feasible
        assert p2.feasible
        # P1 must cover the 80s service of P2's chunk: 2*80/(2*2) = 40.
        assert p1.needed_blocks == pytest.approx(40.0)
        assert p1.available_blocks == 8  # m=12, mu^2=4

    def test_unenrolled_workers_trivially_feasible(self):
        plat = Platform.heterogeneous(
            [1.0, 100.0], [1.0, 100.0], [60, 60]
        )
        rows = simulate_bandwidth_centric_feasibility(plat)
        slow = rows[1]
        if slow.needed_blocks == 0:
            assert slow.feasible


class TestGlobalSelection:
    def test_first_selection_is_p2(self):
        """Worked example: ratios 1.5 / 3 / 1 -> select P2 first."""
        sel = global_selection(table2_platform(), *BIG, max_steps=1)
        assert sel.sequence[0] == 2

    def test_paper_walkthrough_first_three(self):
        sel = global_selection(table2_platform(), *BIG, max_steps=3)
        assert sel.sequence == (2, 1, 3)

    def test_thirteen_step_cycle_then_p2(self):
        """Figure 7: 13 communications (P2 then 12 alternating P1/P3),
        and the 14th goes to P2 again."""
        sel = global_selection(table2_platform(), *BIG, max_steps=14)
        assert sel.sequence[0] == 2
        assert sel.sequence[1:13] == (1, 3) * 6
        assert sel.sequence[13] == 2

    def test_asymptotic_ratio_1_17(self):
        sel = global_selection(table2_platform(), *BIG, max_steps=2000)
        assert sel.ratio == pytest.approx(1.17, abs=0.01)

    def test_walkthrough_timings(self):
        """Step-by-step variables of the Section 6.2.1 example."""
        sel = global_selection(table2_platform(), *BIG, max_steps=2)
        # First comm to P2: [0, 108]; compute [108, 1080].
        assert sel.comm_intervals[0] == (2, 0.0, 108.0)
        assert sel.compute_intervals[0] == (2, 108.0, 1080.0)
        # Second comm to P1: [108, 132]; compute [132, 204].
        assert sel.comm_intervals[1] == (1, 108.0, 132.0)
        assert sel.compute_intervals[1] == (1, 132.0, 204.0)

    def test_ratio_below_steady_state_bound(self):
        plat = table2_platform()
        sel = global_selection(plat, *BIG, max_steps=1500)
        bound = bandwidth_centric_steady_state(plat).throughput
        assert sel.ratio <= bound + 1e-9

    def test_terminates_on_small_problem(self):
        plat = table2_platform()
        sel = global_selection(plat, r=20, s=40, t=3)
        assert sum(sel.columns_per_worker) >= 40

    def test_chunks_counted(self):
        sel = global_selection(table2_platform(), *BIG, max_steps=100)
        assert sum(sel.chunks_per_worker) == 100
        assert len(sel.sequence) == 100


class TestLocalSelection:
    def test_same_first_13_decisions_as_global(self):
        plat = table2_platform()
        g = global_selection(plat, *BIG, max_steps=13)
        l = local_selection(plat, *BIG, max_steps=13)
        assert g.sequence == l.sequence

    def test_divergence_at_14th(self):
        """Paper: global picks P2 for the 14th, local picks P1 then P2."""
        plat = table2_platform()
        g = global_selection(plat, *BIG, max_steps=15)
        l = local_selection(plat, *BIG, max_steps=15)
        assert g.sequence[13] == 2
        assert l.sequence[13] == 1
        assert l.sequence[14] == 2

    def test_asymptotic_ratio_1_21(self):
        sel = local_selection(table2_platform(), *BIG, max_steps=2000)
        assert sel.ratio == pytest.approx(1.21, abs=0.01)


class TestLookahead:
    def test_depth2_ratio_1_30(self):
        sel = lookahead_selection(
            table2_platform(), *BIG, depth=2, max_steps=1200
        )
        assert sel.ratio == pytest.approx(1.30, abs=0.015)

    def test_depth1_equals_global(self):
        plat = table2_platform()
        g = global_selection(plat, *BIG, max_steps=60)
        la = lookahead_selection(plat, *BIG, depth=1, max_steps=60)
        assert g.sequence == la.sequence

    def test_deeper_is_at_least_as_good_here(self):
        plat = table2_platform()
        r1 = lookahead_selection(plat, *BIG, depth=1, max_steps=600).ratio
        r2 = lookahead_selection(plat, *BIG, depth=2, max_steps=600).ratio
        assert r2 >= r1 - 1e-6

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            lookahead_selection(table2_platform(), 10, 10, 10, depth=0)

    def test_invalid_commit(self):
        with pytest.raises(ValueError):
            lookahead_selection(table2_platform(), 10, 10, 10, depth=2, commit=3)


class TestSelectionInvariants:
    @given(small_platforms())
    @settings(max_examples=30, deadline=None)
    def test_comm_intervals_never_overlap(self, platform):
        sel = global_selection(platform, 1000, 10000, 1000, max_steps=60)
        ordered = sorted(sel.comm_intervals, key=lambda iv: iv[1])
        for (w1, s1, e1), (w2, s2, e2) in zip(ordered, ordered[1:]):
            assert s2 >= e1 - 1e-9

    @given(small_platforms())
    @settings(max_examples=30, deadline=None)
    def test_compute_follows_delivery(self, platform):
        sel = local_selection(platform, 1000, 10000, 1000, max_steps=60)
        for (cw, cs, ce), (kw, ks, ke) in zip(
            sel.comm_intervals, sel.compute_intervals
        ):
            assert cw == kw
            assert ks >= ce - 1e-9

    @given(small_platforms())
    @settings(max_examples=30, deadline=None)
    def test_ratio_bounded_by_steady_state(self, platform):
        """Paper: 'the steady-state solution can be seen as an upper
        bound of the performance that can be achieved'."""
        sel = global_selection(platform, 10**5, 10**6, 10**5, max_steps=400)
        bound = bandwidth_centric_steady_state(platform).throughput
        # The ratio's denominator is the *last communication* end, so each
        # worker's final in-flight chunk contributes its full µ_i² work
        # without its compute span.  Allow exactly that boundary slack —
        # one chunk per enrolled worker relative to the total work — plus
        # the 2-comm start-up, alongside the older per-step form (which
        # is looser when chunk sides are balanced but misses platforms
        # where one huge-µ worker receives a single chunk).
        mu = chunk_sizes(platform)
        steps = len(sel.sequence)
        per_step = (2.0 + 2.0 * max(mu)) / steps
        in_flight = (
            sum(
                mu[i] ** 2
                for i, n in enumerate(sel.chunks_per_worker)
                if n
            )
            / sel.total_work
        )
        tail = max(per_step, 2.0 / steps + in_flight)
        assert sel.ratio <= bound * (1 + tail) + 1e-9
