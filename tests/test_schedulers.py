"""Tests for the Section 8 scheduling algorithms (repro.schedulers)."""

import pytest

from repro.blocks import ProblemShape
from repro.core.layout import mu_no_overlap, mu_overlap, toledo_split
from repro.engine import run_scheduler
from repro.platform import Platform, ut_cluster_platform
from repro.schedulers import (
    BMM,
    DDOML,
    HoLM,
    OBMM,
    ODDOML,
    OMMOML,
    ORROML,
    all_section8_schedulers,
)

UT8 = ut_cluster_platform(p=8)
# The first Figure 10 workload at full scale (r=t=100, s=800): the
# cost-only simulation is fast, and the paper's claims are stated at
# this scale (smaller matrices flip into the small-matrix regime).
SHAPE = ProblemShape.from_elements(8000, 8000, 64000, q=80)


class TestRegistry:
    def test_seven_algorithms_in_paper_order(self):
        names = [s.name for s in all_section8_schedulers()]
        assert names == [
            "HoLM", "ORROML", "OMMOML", "ODDOML", "DDOML", "BMM", "OBMM",
        ]

    def test_fresh_instances(self):
        a, b = all_section8_schedulers(), all_section8_schedulers()
        assert all(x is not y for x, y in zip(a, b))


class TestResourceSelection:
    def test_holm_enrolls_paper_count(self):
        """On the UT cluster HoLM enrolls 4 of 8 workers."""
        tr = run_scheduler(HoLM(), UT8, SHAPE)
        assert len(tr.enrolled_workers) == 4

    def test_orroml_enrolls_everyone(self):
        tr = run_scheduler(ORROML(), UT8, SHAPE)
        assert len(tr.enrolled_workers) == 8

    def test_holm_matches_orroml_speed_with_fewer_workers(self):
        """The paper's headline Fig 10/13 observation."""
        t_holm = run_scheduler(HoLM(), UT8, SHAPE).makespan
        t_orr = run_scheduler(ORROML(), UT8, SHAPE).makespan
        assert t_holm <= t_orr * 1.06  # within the Fig 11 noise band

    def test_low_memory_enrolls_two(self):
        plat = ut_cluster_platform(p=8, memory_mb=132)
        tr = run_scheduler(HoLM(), plat, SHAPE)
        assert len(tr.enrolled_workers) == 2


class TestLayoutParameters:
    def test_chunk_params_match_layout_formulas(self):
        m = 10000
        assert HoLM().chunk_param(m) == mu_overlap(m)
        assert ORROML().chunk_param(m) == mu_overlap(m)
        assert OMMOML().chunk_param(m) == mu_overlap(m)
        assert ODDOML().chunk_param(m) == mu_overlap(m)
        assert DDOML().chunk_param(m) == mu_no_overlap(m)
        assert BMM().chunk_param(m) == toledo_split(m)
        assert OBMM().chunk_param(m) == (toledo_split(3 * (m // 5)))

    def test_ddoml_has_larger_mu_than_oddoml(self):
        m = 10000
        assert DDOML().chunk_param(m) >= ODDOML().chunk_param(m)


class TestCommunicationVolume:
    def test_optimized_layout_moves_fewer_blocks_than_bmm(self):
        """The paper's core experimental claim: the µ-layout reduces
        communication volume per update vs Toledo's thirds."""
        tr_holm = run_scheduler(HoLM(), UT8, SHAPE)
        tr_bmm = run_scheduler(BMM(), UT8, SHAPE)
        assert tr_holm.ccr < tr_bmm.ccr

    def test_bmm_slower_than_optimized_group(self):
        t_bmm = run_scheduler(BMM(), UT8, SHAPE).makespan
        for sched in (HoLM(), ORROML(), ODDOML()):
            assert run_scheduler(sched, UT8, SHAPE).makespan < t_bmm

    def test_ccr_close_to_formula(self):
        """HoLM's measured CCR ~= 2/t + 2/mu (plus ragged-tile slack)."""
        tr = run_scheduler(HoLM(), UT8, SHAPE)
        mu = mu_overlap(10000)
        t = SHAPE.t
        formula = 2.0 / t + 2.0 / mu
        # mu=98 does not divide r=100: the ragged 2-row edge tiles have a
        # much worse local CCR, inflating the measured value above the
        # divisible-case formula.
        assert formula < tr.ccr < 1.5 * formula


class TestOMMOML:
    def test_static_assignment_covers_all_chunks(self):
        tr = run_scheduler(OMMOML(), UT8, SHAPE)
        assert tr.total_updates == SHAPE.total_updates

    def test_uses_fewer_workers_than_orroml(self):
        """Paper: 'it uses only two workers' (some resource selection)."""
        w_omm = len(run_scheduler(OMMOML(), UT8, SHAPE).enrolled_workers)
        w_orr = len(run_scheduler(ORROML(), UT8, SHAPE).enrolled_workers)
        assert w_omm < w_orr

    def test_slower_than_holm(self):
        """Paper: 'Only OMMOML needs more time to complete'."""
        t_omm = run_scheduler(OMMOML(), UT8, SHAPE).makespan
        t_holm = run_scheduler(HoLM(), UT8, SHAPE).makespan
        assert t_omm > t_holm


class TestDemandDriven:
    def test_oddoml_work_spreads_over_all_workers(self):
        tr = run_scheduler(ODDOML(), UT8, SHAPE)
        assert len(tr.enrolled_workers) == 8

    def test_ddoml_no_receive_compute_overlap(self):
        """With gap=1 every phase send starts after the previous
        compute finished: per worker, AB sends and computes alternate."""
        plat = Platform.homogeneous(1, c=1.0, w=2.0, m=24)
        shape = ProblemShape(r=4, s=4, t=3, q=2)
        tr = run_scheduler(DDOML(), plat, shape)
        sends = [c for c in tr.comms if c.label.startswith("AB")]
        computes = sorted(tr.computes, key=lambda k: k.start)
        for send, prev_compute in zip(sends[1:], computes):
            assert send.start >= prev_compute.end - 1e-9

    def test_oddoml_beats_or_matches_ddoml_when_memory_ample(self):
        plat = Platform.homogeneous(2, c=0.2, w=0.2, m=360)
        shape = ProblemShape(r=24, s=24, t=8, q=2)
        t_over = run_scheduler(ODDOML(), plat, shape).makespan
        t_flat = run_scheduler(DDOML(), plat, shape).makespan
        assert t_over <= t_flat + 1e-9


class TestMasterProgramOrder:
    def test_holm_round_robin_service(self):
        """Algorithm 1: C tiles go out to the P workers in turn before
        the phase streams interleave."""
        plat = Platform.homogeneous(4, c=1.0, w=8.0, m=60)
        shape = ProblemShape(r=5, s=25, t=2, q=2)
        tr = run_scheduler(HoLM(), plat, shape)
        first_sends = [c.worker for c in tr.comms[:2] if c.direction == "send"]
        assert first_sends == [1, 2]
