"""Tests for Resource and Store (repro.sim.resources)."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_exclusive_access_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, tag, hold):
            with res.request() as req:
                yield req
                log.append((tag, "in", env.now))
                yield env.timeout(hold)
                log.append((tag, "out", env.now))

        env.process(user(env, "a", 2.0))
        env.process(user(env, "b", 3.0))
        env.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 5.0),
        ]

    def test_fifo_ordering(self):
        env = Environment()
        res = Resource(env, capacity=1)
        grants = []

        def user(env, tag):
            with res.request() as req:
                yield req
                grants.append(tag)
                yield env.timeout(1.0)

        for tag in range(6):
            env.process(user(env, tag))
        env.run()
        assert grants == list(range(6))

    def test_capacity_two_allows_concurrency(self):
        env = Environment()
        res = Resource(env, capacity=2)
        active = []
        peak = []

        def user(env):
            with res.request() as req:
                yield req
                active.append(1)
                peak.append(len(active))
                yield env.timeout(1.0)
                active.pop()

        for _ in range(5):
            env.process(user(env))
        env.run()
        assert max(peak) == 2

    def test_count_tracks_users(self):
        env = Environment()
        res = Resource(env, capacity=3)

        def user(env):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)

        for _ in range(2):
            env.process(user(env))

        def checker(env):
            yield env.timeout(0.5)
            return res.count

        c = env.process(checker(env))
        env.run()
        assert c.value == 2

    def test_busy_time_accumulates(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def user(env, hold):
            with res.request() as req:
                yield req
                yield env.timeout(hold)

        env.process(user(env, 2.0))
        env.process(user(env, 3.0))
        env.run()
        assert res.busy_time == pytest.approx(5.0)

    def test_release_never_granted_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)  # queued-then-cancelled is fine the first time
        with pytest.raises(SimulationError):
            res.release(req)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield store.put("x")

        def consumer(env):
            item = yield store.get()
            return item

        env.process(producer(env))
        c = env.process(consumer(env))
        env.run()
        assert c.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(4.0)
            yield store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == (4.0, "late")

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(5):
                yield store.put(i)

        def consumer(env):
            for _ in range(5):
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("a")
            times.append(("a", env.now))
            yield store.put("b")
            times.append(("b", env.now))

        def consumer(env):
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [("a", 0.0), ("b", 3.0)]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_len_counts_items(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield store.put(1)
            yield store.put(2)

        env.process(producer(env))
        env.run()
        assert len(store) == 2
