"""Unit tests for the scenario subsystem (model, presets, robustness).

Engine *parity* under scenarios is covered by ``test_fast_parity.py``;
these tests pin the scenario model's semantics, the preset families'
determinism, and the robustness experiment's wiring through the sweep
runner, cache keys and CLI.
"""

import pytest

from repro.blocks import ProblemShape
from repro.engine import run_scheduler
from repro.platform import Platform
from repro.runner.hashing import point_key
from repro.scenarios import (
    SCENARIO_KINDS,
    BackgroundEvent,
    Scenario,
    StepTimeline,
    build_scenario,
    parse_scenario_arg,
    scenario_spec,
)
from repro.schedulers import DDOML, HoLM


class TestStepTimeline:
    def test_value_at_steps(self):
        tl = StepTimeline((0.0, 10.0, 20.0), (1.0, 2.0, 0.5))
        assert tl.value_at(0.0) == 1.0
        assert tl.value_at(9.999) == 1.0
        assert tl.value_at(10.0) == 2.0  # a step applies AT its instant
        assert tl.value_at(15.0) == 2.0
        assert tl.value_at(1e9) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="t=0"):
            StepTimeline((1.0,), (1.0,))
        with pytest.raises(ValueError, match="strictly increase"):
            StepTimeline((0.0, 5.0, 5.0), (1.0, 2.0, 3.0))
        with pytest.raises(ValueError, match="positive finite"):
            StepTimeline((0.0,), (0.0,))
        with pytest.raises(ValueError, match="positive finite"):
            StepTimeline((0.0,), (float("inf"),))
        with pytest.raises(ValueError, match="equal-length"):
            StepTimeline((0.0, 1.0), (1.0,))

    def test_scaled_from_composes(self):
        tl = StepTimeline.constant(1.0).scaled_from(10.0, 2.0).scaled_from(20.0, 3.0)
        assert tl.value_at(5.0) == 1.0
        assert tl.value_at(10.0) == 2.0
        assert tl.value_at(25.0) == 6.0  # slowdowns compound

    def test_scaled_from_existing_breakpoint(self):
        tl = StepTimeline((0.0, 10.0), (1.0, 2.0)).scaled_from(10.0, 2.0)
        assert tl.value_at(9.0) == 1.0
        assert tl.value_at(10.0) == 4.0

    def test_set_from_truncates(self):
        tl = StepTimeline((0.0, 10.0, 20.0), (1.0, 2.0, 3.0)).set_from(15.0, 9.0)
        assert tl.value_at(10.0) == 2.0
        assert tl.value_at(15.0) == 9.0
        assert tl.value_at(25.0) == 9.0  # the t=20 step was discarded

    def test_identity_detection(self):
        assert StepTimeline.constant(1.0).is_identity
        assert not StepTimeline.constant(2.0).is_identity
        assert not StepTimeline((0.0, 1.0), (1.0, 1.0)).is_identity


class TestScenarioModel:
    @pytest.fixture
    def platform(self):
        return Platform.heterogeneous([1.0, 2.0], [0.5, 0.25], [21, 21])

    def test_stationary_flags(self, platform):
        sc = Scenario.stationary(platform)
        assert sc.is_stationary
        assert not sc.has_rate_variation
        assert "stationary" in sc.describe()

    def test_effective_rates(self, platform):
        sc = Scenario.stationary(platform).with_slowdown(2, 10.0, 3.0)
        assert sc.c_rate(1, 5.0) == 2.0
        assert sc.c_rate(1, 10.0) == 6.0
        assert sc.w_rate(1, 10.0) == 0.75
        assert sc.c_rate(0, 10.0) == 1.0  # other worker untouched
        assert sc.has_rate_variation and not sc.is_stationary

    def test_with_rates_absolute(self, platform):
        sc = (
            Scenario.stationary(platform)
            .with_slowdown(1, 5.0, 4.0)
            .with_rates(1, 10.0, c_factor=2.0)
        )
        assert sc.c_rate(0, 7.0) == 4.0
        assert sc.c_rate(0, 10.0) == 2.0   # absolute, not 8.0
        assert sc.w_rate(0, 10.0) == 2.0   # w untouched by c_factor ⇒ still 4×0.5

    def test_bandwidth_step_hits_everyone(self, platform):
        sc = Scenario.stationary(platform).with_bandwidth_step(3.0, 2.0)
        assert sc.c_rate(0, 3.0) == 2.0 and sc.c_rate(1, 3.0) == 4.0
        assert sc.w_rate(0, 3.0) == 0.5  # compute rates untouched

    def test_worker_bounds(self, platform):
        sc = Scenario.stationary(platform)
        with pytest.raises(ValueError, match="out of range"):
            sc.with_slowdown(0, 1.0, 2.0)
        with pytest.raises(ValueError, match="out of range"):
            sc.with_dropout(3, 1.0)

    def test_background_sorted_and_distinct(self, platform):
        sc = (
            Scenario.stationary(platform)
            .with_background(5.0, 1.0)
            .with_background(2.0, 1.0)
        )
        assert [ev.time for ev in sc.background] == [2.0, 5.0]
        with pytest.raises(ValueError, match="distinct"):
            sc.with_background(5.0, 2.0)
        with pytest.raises(ValueError, match="positive"):
            BackgroundEvent(1.0, 0.0)

    def test_factor_count_must_match_platform(self, platform):
        with pytest.raises(ValueError, match="cover all"):
            Scenario(platform, c_factors=(StepTimeline.constant(),))

    def test_slowdown_slows_the_simulation(self, platform):
        shape = ProblemShape(r=4, s=4, t=3, q=2)
        base = run_scheduler(HoLM(), platform, shape).makespan
        slowed = run_scheduler(
            HoLM(), platform, shape,
            scenario=Scenario.stationary(platform).with_bandwidth_step(0.0, 3.0),
        ).makespan
        assert slowed > base

    def test_work_makespan_ignores_background_tail(self, platform):
        """A background hold outlasting the real work extends makespan
        but not work_makespan — the degradation metric's foundation."""
        shape = ProblemShape(r=4, s=4, t=3, q=2)
        base = run_scheduler(HoLM(), platform, shape)
        assert base.work_makespan == base.makespan  # no background: equal
        tail = (
            Scenario.stationary(platform)
            .with_background(base.makespan * 0.99, base.makespan)
        )
        trace = run_scheduler(HoLM(), platform, shape, scenario=tail)
        assert trace.makespan > base.makespan * 1.5   # the hold's own end
        assert trace.work_makespan < base.makespan * 1.5  # work barely moved

    def test_dropout_terminates_with_finite_makespan(self, platform):
        import math

        shape = ProblemShape(r=4, s=4, t=3, q=2)
        trace = run_scheduler(
            DDOML(), platform, shape,
            scenario=Scenario.stationary(platform).with_dropout(1, 2.0),
        )
        assert math.isfinite(trace.makespan)
        assert trace.total_updates == shape.total_updates


class TestPresets:
    @pytest.fixture
    def platform(self):
        return Platform.homogeneous(4, c=1.0, w=0.5, m=21)

    def test_spec_roundtrip_and_validation(self):
        spec = scenario_spec("dropout", 0.5, horizon=100.0, seed=3)
        assert spec["scenario_kind"] == "dropout"
        with pytest.raises(ValueError, match="unknown scenario kind"):
            scenario_spec("meteor", 0.5, 1.0)
        with pytest.raises(ValueError, match="severity"):
            scenario_spec("drift", 1.5, 1.0)

    def test_build_is_deterministic(self, platform):
        for kind in SCENARIO_KINDS:
            spec = scenario_spec(kind, 0.7, horizon=50.0, seed=9)
            a = build_scenario(platform, spec)
            b = build_scenario(platform, spec)
            assert a.c_factors == b.c_factors
            assert a.w_factors == b.w_factors
            assert a.background == b.background

    def test_zero_severity_is_stationary(self, platform):
        for kind in SCENARIO_KINDS:
            sc = build_scenario(platform, scenario_spec(kind, 0.0, 10.0))
            assert sc.is_stationary, kind

    def test_families_have_their_signature(self, platform):
        horizon = 40.0
        drift = build_scenario(platform, scenario_spec("drift", 1.0, horizon))
        assert drift.has_rate_variation and not drift.background
        # adverse drift: factors never speed a worker up
        assert all(v >= 1.0 for tl in drift.c_factors for v in tl.values)
        dropout = build_scenario(platform, scenario_spec("dropout", 1.0, horizon))
        assert dropout.has_rate_variation
        congestion = build_scenario(
            platform, scenario_spec("congestion", 1.0, horizon)
        )
        assert congestion.background and not congestion.has_rate_variation
        brownout = build_scenario(platform, scenario_spec("brownout", 1.0, horizon))
        assert any(len(tl.times) == 3 for tl in brownout.c_factors)

    def test_randomwalk_is_adverse_and_bounded(self, platform):
        for severity in (0.25, 0.5, 1.0):
            walk = build_scenario(
                platform, scenario_spec("randomwalk", severity, 40.0, seed=3)
            )
            assert walk.has_rate_variation and not walk.background
            ceiling = 1.0 + 9.0 * severity
            for tl in (*walk.c_factors, *walk.w_factors):
                assert all(1.0 <= v <= ceiling for v in tl.values)
            # every worker's rates are re-pinned over the horizon
            assert all(len(tl.times) > 1 for tl in walk.c_factors)

    def test_randomwalk_severity_widens_the_walk(self, platform):
        spread = {}
        for severity in (0.25, 1.0):
            walk = build_scenario(
                platform, scenario_spec("randomwalk", severity, 40.0, seed=3)
            )
            spread[severity] = max(
                v for tl in walk.c_factors for v in tl.values
            )
        assert spread[1.0] > spread[0.25]

    def test_multidrop_is_a_correlated_cascade(self, platform):
        multi = build_scenario(
            platform, scenario_spec("multidrop", 1.0, 40.0, seed=3)
        )
        assert multi.has_rate_variation and not multi.background
        # a contiguous victim block starting at worker 1, others untouched
        degraded = [
            i for i, tl in enumerate(multi.c_factors) if not tl.is_identity
        ]
        assert degraded == list(range(len(degraded)))
        assert len(degraded) >= 2  # multi-worker by construction
        # correlated onsets: all victims drop within the small lag window
        onsets = [multi.c_factors[i].times[-1] for i in degraded]
        assert max(onsets) - min(onsets) <= 0.06 * 40.0
        # bounded factors keep degradation ratios finite
        assert all(
            v <= 25.0 for i in degraded for v in multi.c_factors[i].values
        )

    @pytest.mark.parametrize("kind", ["randomwalk", "multidrop"])
    def test_new_kinds_fast_des_parity(self, kind):
        """The new families ride the shared StepTimeline tables, so the
        fast engine must replay the DES oracle byte-for-byte."""
        from repro.analysis.metrics import summarize_trace
        from repro.engine import run_scheduler
        from repro.platform.named import ut_cluster_platform
        from repro.schedulers import section8_scheduler
        from repro.workloads import ProblemShape

        platform = ut_cluster_platform(p=8, memory_mb=512.0, q=80)
        shape = ProblemShape(r=6, s=6, t=50, q=80)
        spec = scenario_spec(kind, 1.0, horizon=3.3, seed=3)
        makespans = {}
        for engine in ("fast", "des"):
            trace = run_scheduler(
                section8_scheduler("DDOML"),
                build_scenario(platform, spec),
                shape,
                engine=engine,
            )
            makespans[engine] = summarize_trace(trace).makespan
        assert makespans["fast"] == makespans["des"]
        # and the family actually disturbs the run
        stationary = run_scheduler(
            section8_scheduler("DDOML"), platform, shape, engine="fast"
        )
        assert makespans["fast"] > summarize_trace(stationary).makespan

    def test_new_kinds_model_envelope(self):
        """Loose envelope: the analytic model tracks the fast engine on
        the new families (demand-driven tolerance, cf.
        tests/test_model_envelope.py)."""
        from repro.analysis.metrics import summarize_trace
        from repro.engine import run_scheduler
        from repro.platform.named import ut_cluster_platform
        from repro.schedulers import section8_scheduler
        from repro.workloads import ProblemShape

        platform = ut_cluster_platform(p=8, memory_mb=512.0, q=80)
        shape = ProblemShape(r=6, s=6, t=50, q=80)
        for kind in ("randomwalk", "multidrop"):
            spec = scenario_spec(kind, 0.5, horizon=3.3, seed=3)
            oracle = summarize_trace(
                run_scheduler(
                    section8_scheduler("DDOML"),
                    build_scenario(platform, spec),
                    shape,
                    engine="fast",
                )
            ).makespan
            estimate = run_scheduler(
                section8_scheduler("DDOML"),
                build_scenario(platform, spec),
                shape,
                engine="model",
            ).makespan
            assert abs(estimate - oracle) / oracle <= 0.40, kind

    def test_bad_horizon_rejected(self, platform):
        with pytest.raises(ValueError, match="horizon"):
            build_scenario(
                platform,
                {"scenario_kind": "drift", "scenario_severity": 0.5,
                 "scenario_horizon": 0.0},
            )

    def test_parse_scenario_arg(self):
        assert parse_scenario_arg("dropout") == ("dropout", None)
        assert parse_scenario_arg("drift:0.5") == ("drift", 0.5)
        with pytest.raises(ValueError, match="unknown scenario kind"):
            parse_scenario_arg("bogus")
        with pytest.raises(ValueError, match="severity"):
            parse_scenario_arg("drift:2.0")


class TestRobustnessExperiment:
    def test_rows_smoke(self):
        from repro.experiments import robustness

        rows = robustness.run(scale=8, kinds=("dropout",), severities=(1.0,))
        assert len(rows) == len(robustness.ALGORITHMS)
        for row in rows:
            assert row["base_makespan_s"] > 0
            assert row["degradation"] == pytest.approx(
                row["makespan_s"] / row["base_makespan_s"]
            )
        # dropping out half the cluster at full severity must bite
        assert max(r["degradation"] for r in rows) > 1.5

    def test_scenario_params_enter_cache_key(self):
        from repro.experiments import robustness

        sweep = robustness.sweep(scale=8)
        points = sweep.points
        assert all("scenario_kind" in p and "severity" in p for p in points)
        keys = {point_key(sweep.name, p, code="c0") for p in points}
        assert len(keys) == len(points)  # kind/severity/algorithm all keyed

    def test_campaign_scenario_filter(self):
        from repro.experiments import campaign_for, robustness

        campaign = campaign_for("robustness", scale=8, scenario="dropout:0.5")
        (sweep,) = campaign.sweeps
        kinds = {p["scenario_kind"] for p in sweep.points}
        sevs = {p["severity"] for p in sweep.points}
        assert kinds == {"dropout"} and sevs == {0.5}
        with pytest.raises(ValueError, match="baseline"):
            robustness.campaign(scenario="stationary")

    def test_cli_rejects_bad_scenario(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "robustness", "--scenario", "bogus"]) == 2
        assert "bad --scenario" in capsys.readouterr().out
        # 'stationary' parses but the robustness campaign refuses it:
        # still a clean exit 2, never a traceback mid-run.
        assert main(["sweep", "robustness", "--scenario", "stationary"]) == 2
        assert "bad arguments" in capsys.readouterr().out

    def test_cli_sweep_runs_and_warms(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "sweep", "robustness", "--scale", "8", "--quiet",
            "--scenario", "brownout:1.0", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "robustness" in cold and "0 cached" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 computed" in warm
